//! Incremental TAG maintenance: inserting and deleting tuples touches only
//! the affected vertices and their incident edges — no index reorganization
//! (paper Section 3).
//!
//! Run with: `cargo run --release --example incremental_maintenance`

use std::sync::Arc;
use vcsql::tag::{MaterializePolicy, TagBuilder};
use vcsql::workload::tpch;
use vcsql::{Session, SessionConfig};

fn main() {
    let db = tpch::generate(0.01, 42);

    // Build incrementally, tuple by tuple, through the mutable builder.
    let mut builder = TagBuilder::new(MaterializePolicy::default());
    for rel in db.relations() {
        builder.add_schema(rel.schema.clone());
    }
    let mut order_vertices = Vec::new();
    for rel in db.relations() {
        for t in &rel.tuples {
            let v = builder.insert_tuple(rel.name(), t.clone()).unwrap();
            if rel.name() == "orders" {
                order_vertices.push(v);
            }
        }
    }

    // Delete a batch of orders — local edge removals only.
    for &v in order_vertices.iter().take(50) {
        builder.delete_tuple(v).unwrap();
    }

    let tag = Arc::new(builder.build());
    let stats = tag.stats();
    println!(
        "after incremental build + 50 deletions: {} tuple vertices, {} attribute vertices",
        stats.tuple_vertices, stats.attr_vertices
    );

    // The graph still answers queries through a session.
    let mut session = Session::open(&tag, SessionConfig::default()).expect("session opens");
    let (out, _) = session.run_sql("SELECT COUNT(*) AS orders FROM orders o").expect("count runs");
    println!("orders remaining: {}", out.relation.tuples[0]);

    // Round-trip: the decoded database matches the graph's contents.
    let decoded = tag.decode();
    println!(
        "decoded database: {} orders, {} lineitems",
        decoded.get("orders").unwrap().len(),
        decoded.get("lineitem").unwrap().len()
    );
}
