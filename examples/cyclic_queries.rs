//! Cyclic queries: worst-case-optimal triangle counting with the heavy/light
//! split of paper Section 6.1.2, including the θ sweep.
//!
//! Run with: `cargo run --release --example cyclic_queries`

use vcsql::bsp::EngineConfig;
use vcsql::core::cyclic::{brute_force_cycles, count_cycles};
use vcsql::tag::TagGraph;
use vcsql::workload::synthetic::cycle_db;

fn main() {
    // A skewed 3-relation instance: E0(x0,x1) ⋈ E1(x1,x2) ⋈ E2(x2,x0).
    let db = cycle_db(3, 2000, 300, 7);
    let tag = TagGraph::build(&db);
    let names = ["e0", "e1", "e2"];
    let expected = brute_force_cycles(&db, &names).unwrap();
    println!("triangles (brute force oracle): {expected}\n");

    let (count, stats) = count_cycles(&tag, &names, None, EngineConfig::default()).unwrap();
    assert_eq!(count, expected);
    println!("vanilla       : {count:>8} triangles, {:>9} messages", stats.total_messages());

    let in_size = (3 * 2000) as f64;
    for theta in [4usize, 16, in_size.sqrt() as usize, 500] {
        let (count, stats) =
            count_cycles(&tag, &names, Some(theta), EngineConfig::default()).unwrap();
        assert_eq!(count, expected);
        let marker = if theta == in_size.sqrt() as usize { "  <- θ = √IN (paper)" } else { "" };
        println!(
            "heavy/light θ={theta:<4}: {count:>8} triangles, {:>9} messages{marker}",
            stats.total_messages()
        );
    }

    // Five-way cycles, too (Section 6.2).
    let db5 = cycle_db(5, 400, 80, 9);
    let tag5 = TagGraph::build(&db5);
    let names5 = ["e0", "e1", "e2", "e3", "e4"];
    let expected5 = brute_force_cycles(&db5, &names5).unwrap();
    let (count5, stats5) = count_cycles(&tag5, &names5, Some(20), EngineConfig::default()).unwrap();
    assert_eq!(count5, expected5);
    println!(
        "\n5-cycles: {count5} (oracle {expected5}), {} messages, {} supersteps",
        stats5.total_messages(),
        stats5.supersteps
    );
}
