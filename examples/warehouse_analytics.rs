//! Data-warehouse analytics: run TPC-H-shaped queries on the vertex-centric
//! executor and compare against the relational baseline — the paper's
//! "comfort zone" experiment in miniature (Section 8.3).
//!
//! Run with: `cargo run --release --example warehouse_analytics`

use vcsql::baseline::{execute as baseline, ExecConfig};
use vcsql::bsp::EngineConfig;
use vcsql::core::TagJoinExecutor;
use vcsql::query::{analyze::analyze, parse};
use vcsql::tag::TagGraph;
use vcsql::workload::tpch;

fn main() {
    let db = tpch::generate(0.02, 42);
    println!("TPC-H-style database: {} tuples total", db.total_tuples());
    let tag = TagGraph::build(&db);
    let exec = TagJoinExecutor::new(&tag, EngineConfig::default());

    for q in tpch::queries() {
        let analyzed = analyze(&parse(q.sql).unwrap(), tag.schemas()).unwrap();
        let t0 = std::time::Instant::now();
        let out = exec.execute(&analyzed).expect("tag-join runs");
        let tag_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let oracle = baseline(&analyzed, &db, ExecConfig::default()).expect("baseline runs");
        let base_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert!(out.relation.same_bag_approx(&oracle, 1e-9), "{}: engines disagree!", q.id);
        println!(
            "{:>4} ({:<42}) rows={:<5} supersteps={:<3} msgs={:<8} tag={:>7.2}ms row={:>7.2}ms",
            q.id,
            q.paper_ref,
            out.relation.len(),
            out.stats.supersteps,
            out.stats.total_messages(),
            tag_ms,
            base_ms,
        );
    }
}
