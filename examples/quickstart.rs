//! Quickstart: build a tiny database, encode it as a TAG graph, open a
//! session, and run SQL on the vertex-centric executor — prepared once,
//! executed as often as you like.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use vcsql::relation::schema::{Column, Schema};
use vcsql::relation::{DataType, Database, Relation, Tuple, Value};
use vcsql::tag::TagGraph;
use vcsql::{Session, SessionConfig};

fn main() {
    // 1. A relational database: nations and the customers living in them.
    let mut db = Database::new();
    let nation = Schema::new(
        "nation",
        vec![Column::new("n_nationkey", DataType::Int), Column::new("n_name", DataType::Str)],
    )
    .with_primary_key(&["n_nationkey"]);
    let mut n = Relation::empty(nation);
    for (k, name) in [(1, "FRANCE"), (2, "GERMANY"), (3, "JAPAN")] {
        n.push(Tuple::new(vec![Value::Int(k), Value::str(name)])).unwrap();
    }
    db.add(n);

    let customer = Schema::new(
        "customer",
        vec![
            Column::new("c_custkey", DataType::Int),
            Column::new("c_nationkey", DataType::Int),
            Column::new("c_acctbal", DataType::Float),
        ],
    )
    .with_primary_key(&["c_custkey"])
    .with_foreign_key(&["c_nationkey"], "nation", &["n_nationkey"]);
    let mut c = Relation::empty(customer);
    for (ck, nk, bal) in [(10, 1, 100.0), (11, 1, 250.0), (12, 2, 30.0), (13, 3, -5.0)] {
        c.push(Tuple::new(vec![Value::Int(ck), Value::Int(nk), Value::Float(bal)])).unwrap();
    }
    db.add(c);

    // 2. Encode once, query-independently, as a Tuple-Attribute Graph.
    let tag = Arc::new(TagGraph::build(&db));
    let stats = tag.stats();
    println!(
        "TAG graph: {} tuple vertices, {} attribute vertices, {} undirected edges",
        stats.tuple_vertices,
        stats.attr_vertices,
        stats.edges / 2
    );

    // 3. Open a session: the long-lived query entry point. Preparing a
    //    statement runs parse → analyze → GYO → TAG plan once and caches the
    //    plan (keyed by SQL) behind a bounded LRU cache.
    let mut session = Session::open(&tag, SessionConfig::default()).expect("session opens");
    let sql = "SELECT n.n_name, COUNT(*) AS customers, SUM(c.c_acctbal) AS balance \
               FROM nation n, customer c \
               WHERE n.n_nationkey = c.c_nationkey AND c.c_acctbal > 0 \
               GROUP BY n.n_name";
    let prepared = session.prepare(sql).expect("statement prepares");

    // 4. Execute the prepared statement as a vertex-centric BSP program —
    //    any number of times, planning paid once.
    let (out, _net) = session.execute(&prepared).expect("query runs");
    println!("\nresult ({} rows):", out.relation.len());
    for t in &out.relation.tuples {
        println!("  {t}");
    }
    println!(
        "\ncost: {} supersteps, {} messages, {} message bytes",
        out.stats.supersteps,
        out.stats.total_messages(),
        out.stats.total_bytes()
    );

    // Re-preparing the same SQL is a cache hit; `run_sql` is the one-line
    // prepare-and-execute convenience for ad-hoc statements.
    let again = session.prepare(sql).expect("cached");
    session.execute(&again).expect("query runs again");
    let cache = session.plan_cache();
    println!(
        "\nplan cache: {} plan(s), {} hit(s), {} miss(es) over {} queries",
        cache.len(),
        cache.hits(),
        cache.misses(),
        session.stats().queries
    );
}
