//! Distributed-cluster simulation: TAG-join vs a Spark-like shuffle-join
//! network model on 6 simulated machines (paper Section 8.6 / Fig 16).
//!
//! Run with: `cargo run --release --example distributed_cluster`

use vcsql::bsp::EngineConfig;
use vcsql::dist::{tag_distributed, SparkModel};
use vcsql::query::{analyze::analyze, parse};
use vcsql::tag::TagGraph;
use vcsql::workload::tpch;

fn main() {
    let db = tpch::generate(0.05, 42);
    let tag = TagGraph::build(&db);
    let spark = SparkModel { machines: 6, broadcast_threshold: 0 };

    println!("{:<6} {:>14} {:>16} {:>7}", "query", "tag net bytes", "spark net bytes", "ratio");
    let (mut tag_total, mut spark_total) = (0u64, 0u64);
    for q in tpch::queries() {
        let a = analyze(&parse(q.sql).unwrap(), tag.schemas()).unwrap();
        let (_, net) = tag_distributed(&tag, &a, 6, EngineConfig::default()).unwrap();
        let shuffle = spark.run(&a, &db).unwrap();
        tag_total += net.network_bytes;
        spark_total += shuffle.network_bytes;
        println!(
            "{:<6} {:>14} {:>16} {:>6.1}x",
            q.id,
            net.network_bytes,
            shuffle.network_bytes,
            shuffle.network_bytes as f64 / net.network_bytes.max(1) as f64
        );
    }
    println!(
        "\ntotal: tag {} vs spark {} — spark ships {:.1}x more data \
         (the paper reports 9x on TPC-H)",
        tag_total,
        spark_total,
        spark_total as f64 / tag_total.max(1) as f64
    );
}
