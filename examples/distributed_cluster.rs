//! Distributed-cluster simulation: TAG-join vs a Spark-like shuffle-join
//! network model on 6 simulated machines (paper Section 8.6 / Fig 16),
//! under each TAG placement strategy — the hash baseline the paper ran,
//! the locality-aware co-location and label-propagation refinement that
//! close most of the reproduced traffic gap from graph shape alone, and the
//! workload-aware placement that re-weights them with per-edge-label
//! traffic observed during a hash-placed calibration run.
//!
//! Run with: `cargo run --release --example distributed_cluster`

use vcsql::bsp::{EngineConfig, PartitionStrategy};
use vcsql::dist::{tag_calibrate, tag_distributed_under, tag_partitioning, SparkModel};
use vcsql::query::{analyze::analyze, parse};
use vcsql::tag::TagGraph;
use vcsql::workload::tpch;

fn main() {
    let db = tpch::generate(0.05, 42);
    let tag = TagGraph::build(&db);
    let spark = SparkModel { machines: 6, broadcast_threshold: 0 };

    let queries: Vec<_> = tpch::queries()
        .iter()
        .map(|q| (q.id, analyze(&parse(q.sql).unwrap(), tag.schemas()).unwrap()))
        .collect();

    // Phase 1 of the workload strategy: a hash-placed calibration run
    // observes how much traffic each edge label (`R.A` column) carries.
    let analyzed: Vec<_> = queries.iter().map(|(_, a)| a.clone()).collect();
    let profile = tag_calibrate(&tag, &analyzed, 6, EngineConfig::default()).unwrap();
    println!("calibrated traffic profile: {} edge labels (text form feeds later runs)\n", {
        profile.len()
    });

    // Build each partitioning once; reuse it for the whole workload.
    let mut strategies = PartitionStrategy::ALL.to_vec();
    strategies.push(PartitionStrategy::Workload(profile));
    let parts: Vec<_> = strategies.iter().map(|s| (s, tag_partitioning(&tag, 6, s))).collect();

    println!(
        "{:<6} {:>12} {:>14} {:>13} {:>14} {:>11}",
        "query", "hash bytes", "colocate bytes", "refined bytes", "workload bytes", "spark bytes"
    );
    let mut tag_totals = [0u64; 4];
    let mut spark_total = 0u64;
    for (id, a) in &queries {
        let mut nets = Vec::new();
        for (i, (_, p)) in parts.iter().enumerate() {
            let (_, net) =
                tag_distributed_under(&tag, a, p.clone(), EngineConfig::default()).unwrap();
            tag_totals[i] += net.network_bytes;
            nets.push(net.network_bytes);
        }
        let shuffle = spark.run(a, &db).unwrap();
        spark_total += shuffle.network_bytes;
        println!(
            "{:<6} {:>12} {:>14} {:>13} {:>14} {:>11}",
            id, nets[0], nets[1], nets[2], nets[3], shuffle.network_bytes
        );
    }

    println!("\nspark ships, relative to TAG-join under each placement strategy:");
    for (i, (s, p)) in parts.iter().enumerate() {
        let d = p.diagnostics(tag.graph());
        println!(
            "  {:>8}: {:>4.1}x more data | TAG edge cut {:4.1}% | load imbalance {:.2}",
            s.name(),
            spark_total as f64 / tag_totals[i].max(1) as f64,
            100.0 * d.edge_cut_fraction,
            d.load_imbalance,
        );
    }
    println!(
        "\n(the paper reports 9x on a real 6-machine cluster; the hash baseline \
         reproduces ~1.9x, locality-aware placement recovers most of the rest, \
         and profiling the workload's own traffic recovers the most)"
    );
}
