//! Distributed-cluster simulation: TAG-join vs a Spark-like shuffle-join
//! network model on 6 simulated machines (paper Section 8.6 / Fig 16),
//! under each TAG placement strategy — the hash baseline the paper ran,
//! the locality-aware co-location and label-propagation refinement that
//! close most of the reproduced traffic gap from graph shape alone, and the
//! workload-aware placement that re-weights them with per-edge-label
//! traffic observed during a hash-placed calibration run.
//!
//! Everything runs through the session API: one [`Cluster`] describes the
//! simulated machines, each strategy gets a [`Session`] (static placement
//! here, so strategies stay comparable; see the `repro distributed
//! --sessions` drift replay for the online-repartitioning loop), and every
//! query is prepared once and served from the session's plan cache.
//!
//! Run with: `cargo run --release --example distributed_cluster`

use std::sync::Arc;
use vcsql::bsp::PartitionStrategy;
use vcsql::dist::SparkModel;
use vcsql::tag::TagGraph;
use vcsql::workload::tpch;
use vcsql::Cluster;

fn main() {
    let db = tpch::generate(0.05, 42);
    let tag = Arc::new(TagGraph::build(&db));
    let spark = SparkModel { machines: 6, broadcast_threshold: 0 };
    let cluster = Cluster::new(6).static_placement();

    let queries: Vec<_> = tpch::queries().iter().map(|q| (q.id, q.sql)).collect();

    // Phase 1 of the workload strategy: a hash-placed calibration run
    // observes how much traffic each edge label (`R.A` column) carries.
    let analyzed: Vec<_> = queries
        .iter()
        .map(|(_, sql)| {
            vcsql::query::analyze::analyze(&vcsql::query::parse(sql).unwrap(), tag.schemas())
                .unwrap()
        })
        .collect();
    let profile = cluster.calibrate(&tag, &analyzed).unwrap();
    println!("calibrated traffic profile: {} edge labels (text form feeds later runs)\n", {
        profile.len()
    });

    // One session per strategy; each builds its placement once and reuses it
    // (and its cached plans) for the whole workload.
    let mut strategies = PartitionStrategy::ALL.to_vec();
    strategies.push(PartitionStrategy::Workload(profile));
    let mut sessions: Vec<_> = strategies
        .iter()
        .map(|s| cluster.clone().strategy(s.clone()).session(&tag).unwrap())
        .collect();

    println!(
        "{:<6} {:>12} {:>14} {:>13} {:>14} {:>11}",
        "query", "hash bytes", "colocate bytes", "refined bytes", "workload bytes", "spark bytes"
    );
    let mut tag_totals = [0u64; 4];
    let mut spark_total = 0u64;
    for ((id, sql), a) in queries.iter().zip(&analyzed) {
        let mut nets = Vec::new();
        for (i, session) in sessions.iter_mut().enumerate() {
            let (_, net) = session.run_sql(sql).unwrap();
            tag_totals[i] += net.network_bytes;
            nets.push(net.network_bytes);
        }
        let shuffle = spark.run(a, &db).unwrap();
        spark_total += shuffle.network_bytes;
        println!(
            "{:<6} {:>12} {:>14} {:>13} {:>14} {:>11}",
            id, nets[0], nets[1], nets[2], nets[3], shuffle.network_bytes
        );
    }

    println!("\nspark ships, relative to TAG-join under each placement strategy:");
    for (i, (s, session)) in strategies.iter().zip(&sessions).enumerate() {
        let d = session.partitioning().unwrap().diagnostics(tag.graph());
        println!(
            "  {:>8}: {:>4.1}x more data | TAG edge cut {:4.1}% | load imbalance {:.2}",
            s.name(),
            spark_total as f64 / tag_totals[i].max(1) as f64,
            100.0 * d.edge_cut_fraction,
            d.load_imbalance,
        );
    }
    let cache = sessions[0].plan_cache();
    println!(
        "\n(each session planned its {} statements once and serves repeats from the plan \
         cache — the one-shot API re-planned every call)",
        cache.misses(),
    );
    println!(
        "\n(the paper reports 9x on a real 6-machine cluster; the hash baseline \
         reproduces ~1.9x, locality-aware placement recovers most of the rest, \
         and profiling the workload's own traffic recovers the most)"
    );
}
