//! # vcsql-tag — the Tuple-Attribute Graph encoding (paper Section 3)
//!
//! Encodes a relational [`Database`](vcsql_relation::Database) as a bipartite
//! graph:
//!
//! * one **tuple vertex** per tuple occurrence, labelled with its relation
//!   name, storing the tuple in its state;
//! * one **attribute vertex** per *distinct* value in the active domain,
//!   labelled by type (`@int`, `@str`, ...), shared across relations and
//!   attribute names;
//! * one undirected edge labelled `R.A` per occurrence of value `a` in
//!   attribute `A` of an `R`-tuple.
//!
//! Attribute vertices are the implicit index: the tuples joining through a
//! value are exactly the neighbours of its attribute vertex, partitioned by
//! edge label. The encoding is query-independent and linear in the database
//! size.
//!
//! The paper's materialization policy (Section 3) is honoured: columns whose
//! values are "tricky" to join on (floats) or unlikely join keys (long text)
//! can skip attribute vertices and live only in the tuple state; see
//! [`MaterializePolicy`].
//!
//! [`TagBuilder`] is the mutable form supporting the paper's cheap local
//! maintenance (insert/delete of tuples touches only the affected vertices
//! and their incident edges); building yields the immutable CSR graph the BSP
//! engine executes over.

pub mod build;

pub use build::{MaterializePolicy, Payload, TagBuilder, TagGraph, TagStats};
