//! TAG construction and maintenance.

use vcsql_bsp::{Graph, GraphBuilder, LabelId, VertexId};
use vcsql_relation::{fx, Database, FxHashMap, RelError, Relation, Schema, Tuple, Value};

/// What a vertex stands for.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A tuple vertex: the relation's tuple, stored in vertex state
    /// (step (1) of the encoding).
    Tuple(Tuple),
    /// An attribute vertex: one distinct value of the active domain
    /// (step (2) of the encoding).
    Attr(Value),
}

impl Payload {
    /// The tuple, if this is a tuple vertex.
    pub fn tuple(&self) -> Option<&Tuple> {
        match self {
            Payload::Tuple(t) => Some(t),
            Payload::Attr(_) => None,
        }
    }

    /// The value, if this is an attribute vertex.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Payload::Attr(v) => Some(v),
            Payload::Tuple(_) => None,
        }
    }

    /// Approximate footprint in bytes.
    pub fn deep_size(&self) -> usize {
        match self {
            Payload::Tuple(t) => t.deep_size(),
            Payload::Attr(v) => v.deep_size(),
        }
    }
}

/// Decides which columns receive attribute vertices (paper Section 3).
#[derive(Debug, Clone)]
pub struct MaterializePolicy {
    /// Materialize strings only up to this length (long descriptions and
    /// comments are unlikely join keys). `None` = no limit.
    pub max_string_len: Option<usize>,
    /// Extra `(relation, column)` pairs to skip on top of the schema's
    /// per-column `materialize` flags.
    pub skip: Vec<(String, String)>,
}

impl Default for MaterializePolicy {
    fn default() -> Self {
        MaterializePolicy { max_string_len: Some(64), skip: Vec::new() }
    }
}

impl MaterializePolicy {
    /// Materialize everything the schema allows, regardless of length.
    pub fn all() -> Self {
        MaterializePolicy { max_string_len: None, skip: Vec::new() }
    }

    fn column_allowed(&self, schema: &Schema, col: usize) -> bool {
        let c = &schema.columns[col];
        c.materialize && !self.skip.iter().any(|(r, n)| r == &schema.name && n == &c.name)
    }

    fn value_allowed(&self, v: &Value) -> bool {
        match v {
            Value::Null => false, // NULL never joins; no vertex for it
            Value::Str(s) => self.max_string_len.is_none_or(|m| s.len() <= m),
            _ => true,
        }
    }
}

/// Attribute-vertex label per value type.
fn attr_label_name(v: &Value) -> &'static str {
    match v {
        Value::Bool(_) => "@bool",
        Value::Int(_) => "@int",
        Value::Float(_) => "@float",
        Value::Str(_) => "@str",
        Value::Date(_) => "@date",
        Value::Null => unreachable!("NULL has no attribute vertex"),
    }
}

/// Mutable TAG under construction / maintenance.
///
/// Adjacency is per-vertex `Vec`s so inserting or deleting a tuple touches
/// only that tuple's vertex, its attribute vertices, and their incident
/// edges — the paper's "no reorganization" maintenance claim. Freezing into
/// the CSR [`Graph`] used by the engine is a linear pass.
pub struct TagBuilder {
    policy: MaterializePolicy,
    schemas: Vec<Schema>,
    payloads: Vec<Payload>,
    vertex_label_of: Vec<String>,
    adjacency: Vec<Vec<(String, VertexId)>>,
    attr_index: FxHashMap<Value, VertexId>,
    deleted: Vec<bool>,
}

impl TagBuilder {
    /// Empty builder with the given policy.
    pub fn new(policy: MaterializePolicy) -> TagBuilder {
        TagBuilder {
            policy,
            schemas: Vec::new(),
            payloads: Vec::new(),
            vertex_label_of: Vec::new(),
            adjacency: Vec::new(),
            attr_index: fx::map_with_capacity(1024),
            deleted: Vec::new(),
        }
    }

    /// Register a relation's schema (needed before inserting its tuples).
    pub fn add_schema(&mut self, schema: Schema) {
        if !self.schemas.iter().any(|s| s.name == schema.name) {
            self.schemas.push(schema);
        }
    }

    /// Insert one tuple of relation `rel`: creates its tuple vertex, creates
    /// any missing attribute vertices, and links them (steps (1)–(3) of the
    /// encoding). Cost is local: O(arity) plus hash lookups.
    pub fn insert_tuple(&mut self, rel: &str, tuple: Tuple) -> Result<VertexId, RelError> {
        let schema = self
            .schemas
            .iter()
            .position(|s| s.name == rel)
            .ok_or_else(|| RelError::UnknownRelation(rel.to_string()))?;
        let schema = self.schemas[schema].clone();
        if tuple.arity() != schema.arity() {
            return Err(RelError::ArityMismatch { expected: schema.arity(), found: tuple.arity() });
        }
        let tv = self.fresh_vertex(rel.to_string(), Payload::Tuple(tuple.clone()));
        for (c, v) in tuple.values().enumerate() {
            if !self.policy.column_allowed(&schema, c) || !self.policy.value_allowed(v) {
                continue;
            }
            let av = self.attr_vertex_for(v);
            let label = format!("{}.{}", rel, schema.columns[c].name);
            self.adjacency[tv as usize].push((label.clone(), av));
            self.adjacency[av as usize].push((label, tv));
        }
        Ok(tv)
    }

    /// Delete a tuple vertex and its incident edges. The attribute vertices
    /// stay (they may serve other tuples; an isolated attribute vertex is
    /// harmless and is dropped at freeze time).
    pub fn delete_tuple(&mut self, tv: VertexId) -> Result<(), RelError> {
        if self.payloads.get(tv as usize).and_then(Payload::tuple).is_none()
            || self.deleted[tv as usize]
        {
            return Err(RelError::Other(format!("vertex {tv} is not a live tuple vertex")));
        }
        self.deleted[tv as usize] = true;
        let edges = std::mem::take(&mut self.adjacency[tv as usize]);
        for (_, av) in edges {
            self.adjacency[av as usize].retain(|&(_, t)| t != tv);
        }
        Ok(())
    }

    fn fresh_vertex(&mut self, label: String, payload: Payload) -> VertexId {
        let id = self.payloads.len() as VertexId;
        self.payloads.push(payload);
        self.vertex_label_of.push(label);
        self.adjacency.push(Vec::new());
        self.deleted.push(false);
        id
    }

    fn attr_vertex_for(&mut self, v: &Value) -> VertexId {
        if let Some(&id) = self.attr_index.get(v) {
            return id;
        }
        let id = self.fresh_vertex(attr_label_name(v).to_string(), Payload::Attr(v.clone()));
        self.attr_index.insert(v.clone(), id);
        id
    }

    /// Freeze into the immutable, executable [`TagGraph`]. Deleted and
    /// isolated-attribute vertices are dropped and ids are compacted.
    pub fn build(self) -> TagGraph {
        let TagBuilder {
            policy: _, schemas, payloads, vertex_label_of, adjacency, deleted, ..
        } = self;

        // Keep live tuple vertices and attribute vertices with >= 1 edge.
        let keep: Vec<bool> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| match p {
                Payload::Tuple(_) => !deleted[i],
                Payload::Attr(_) => !adjacency[i].is_empty(),
            })
            .collect();
        let mut remap = vec![u32::MAX; payloads.len()];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = next;
                next += 1;
            }
        }

        let mut gb = GraphBuilder::new();
        // Pre-intern every relation's vertex label and every materializable
        // column's edge label so empty relations still resolve (queries over
        // them return empty results instead of "unknown label" errors).
        for s in &schemas {
            gb.vertex_label(&s.name);
            for c in &s.columns {
                if c.materialize {
                    gb.edge_label(&format!("{}.{}", s.name, c.name));
                }
            }
        }
        let mut new_payloads = Vec::with_capacity(next as usize);
        for (i, p) in payloads.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let label = gb.vertex_label(&vertex_label_of[i]);
            let v = gb.add_vertex(label);
            debug_assert_eq!(v, remap[i]);
            new_payloads.push(p.clone());
        }
        for (i, adj) in adjacency.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            for (label, t) in adj {
                debug_assert!(keep[*t as usize], "edge to dropped vertex");
                let l = gb.edge_label(label);
                gb.add_edge(remap[i], remap[*t as usize], l);
            }
        }
        let graph = gb.finish();

        // Rebuild the value -> attribute-vertex index over compacted ids.
        let mut attr_index = fx::map_with_capacity(new_payloads.len() / 2);
        for (v, p) in new_payloads.iter().enumerate() {
            if let Payload::Attr(val) = p {
                attr_index.insert(val.clone(), v as VertexId);
            }
        }

        // Per relation: LabelId of each column's edge label (None when not
        // materialized / label absent because no value ever produced an edge).
        let mut col_labels: FxHashMap<String, Vec<Option<LabelId>>> = FxHashMap::default();
        for s in &schemas {
            let labels = s
                .columns
                .iter()
                .map(|c| graph.edge_label_id(&format!("{}.{}", s.name, c.name)))
                .collect();
            col_labels.insert(s.name.clone(), labels);
        }

        TagGraph { graph, payloads: new_payloads, attr_index, schemas, col_labels }
    }
}

/// Size statistics for the loading experiments (Fig 14 shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagStats {
    pub tuple_vertices: usize,
    pub attr_vertices: usize,
    /// Directed edge count (2x the undirected TAG edges).
    pub edges: usize,
    /// Approximate loaded size in bytes (topology + payloads + value index).
    pub bytes: usize,
}

/// The frozen, executable TAG: CSR graph + per-vertex payloads + value index
/// + the source schemas.
pub struct TagGraph {
    graph: Graph,
    payloads: Vec<Payload>,
    attr_index: FxHashMap<Value, VertexId>,
    schemas: Vec<Schema>,
    col_labels: FxHashMap<String, Vec<Option<LabelId>>>,
}

impl TagGraph {
    /// Encode a whole database with the default policy.
    pub fn build(db: &Database) -> TagGraph {
        TagGraph::build_with_policy(db, MaterializePolicy::default())
    }

    /// Encode a whole database with an explicit materialization policy.
    pub fn build_with_policy(db: &Database, policy: MaterializePolicy) -> TagGraph {
        let mut b = TagBuilder::new(policy);
        for rel in db.relations() {
            b.add_schema(rel.schema.clone());
        }
        for rel in db.relations() {
            for t in &rel.tuples {
                b.insert_tuple(rel.name(), t.clone()).expect("schema registered above");
            }
        }
        b.build()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Payload of a vertex.
    #[inline]
    pub fn payload(&self, v: VertexId) -> &Payload {
        &self.payloads[v as usize]
    }

    /// The tuple stored at a tuple vertex.
    #[inline]
    pub fn tuple(&self, v: VertexId) -> Option<&Tuple> {
        self.payloads[v as usize].tuple()
    }

    /// The value of an attribute vertex.
    #[inline]
    pub fn attr_value(&self, v: VertexId) -> Option<&Value> {
        self.payloads[v as usize].value()
    }

    /// True iff `v` is a tuple vertex.
    pub fn is_tuple_vertex(&self, v: VertexId) -> bool {
        matches!(self.payloads[v as usize], Payload::Tuple(_))
    }

    /// The attribute vertex representing `value`, if materialized.
    pub fn attr_vertex(&self, value: &Value) -> Option<VertexId> {
        self.attr_index.get(value).copied()
    }

    /// Vertex label of a relation's tuple vertices.
    pub fn relation_label(&self, rel: &str) -> Option<LabelId> {
        self.graph.vertex_label_id(rel)
    }

    /// The edge label for `rel.column` (None if the column is not
    /// materialized or produced no edges).
    pub fn column_label(&self, rel: &str, col: usize) -> Option<LabelId> {
        self.col_labels.get(rel).and_then(|v| v.get(col).copied().flatten())
    }

    /// The edge label for `rel.column` by column name.
    pub fn column_label_by_name(&self, rel: &str, col: &str) -> Option<LabelId> {
        let schema = self.schema(rel)?;
        let idx = schema.column_index(col).ok()?;
        self.column_label(rel, idx)
    }

    /// Schema of a relation.
    pub fn schema(&self, rel: &str) -> Option<&Schema> {
        self.schemas.iter().find(|s| s.name == rel)
    }

    /// All registered schemas.
    pub fn schemas(&self) -> &[Schema] {
        &self.schemas
    }

    /// Size statistics for the loading/size experiments.
    pub fn stats(&self) -> TagStats {
        let mut tuple_vertices = 0;
        let mut attr_vertices = 0;
        let mut payload_bytes = 0;
        for p in &self.payloads {
            match p {
                Payload::Tuple(_) => tuple_vertices += 1,
                Payload::Attr(_) => attr_vertices += 1,
            }
            payload_bytes += p.deep_size();
        }
        let index_bytes = self.attr_index.len() * (std::mem::size_of::<(Value, VertexId)>() + 16);
        TagStats {
            tuple_vertices,
            attr_vertices,
            edges: self.graph.edge_count(),
            bytes: self.graph.deep_size() + payload_bytes + index_bytes,
        }
    }

    /// Decode the TAG back into a relational database (exact inverse of the
    /// encoding — used as a round-trip correctness check).
    pub fn decode(&self) -> Database {
        let mut db = Database::new();
        for s in &self.schemas {
            let mut rel = Relation::empty(s.clone());
            if let Some(label) = self.relation_label(&s.name) {
                for &v in self.graph.vertices_with_label(label) {
                    let t = self.tuple(v).expect("tuple vertex has tuple payload").clone();
                    rel.push(t).expect("stored tuple matches schema");
                }
            }
            db.add(rel);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::Column;
    use vcsql_relation::{DataType, Date};

    /// The paper's Figure 1 mini-instance: NATION(nationkey, name),
    /// CUSTOMER(custkey, nationkey), ORDER(orderkey, custkey, date).
    fn figure1_db() -> Database {
        let nation = Relation::from_tuples(
            Schema::new(
                "NATION",
                vec![Column::new("nationkey", DataType::Int), Column::new("name", DataType::Str)],
            )
            .with_primary_key(&["nationkey"]),
            vec![
                Tuple::new(vec![Value::Int(1), Value::str("USA")]),
                Tuple::new(vec![Value::Int(2), Value::str("FRANCE")]),
            ],
        )
        .unwrap();
        let customer = Relation::from_tuples(
            Schema::new(
                "CUSTOMER",
                vec![
                    Column::new("custkey", DataType::Int),
                    Column::new("nationkey", DataType::Int),
                ],
            )
            .with_primary_key(&["custkey"]),
            vec![
                Tuple::new(vec![Value::Int(10), Value::Int(1)]),
                Tuple::new(vec![Value::Int(2), Value::Int(2)]),
            ],
        )
        .unwrap();
        let orders = Relation::from_tuples(
            Schema::new(
                "ORDER",
                vec![
                    Column::new("orderkey", DataType::Int),
                    Column::new("custkey", DataType::Int),
                    Column::new("odate", DataType::Date),
                ],
            )
            .with_primary_key(&["orderkey"]),
            vec![
                Tuple::new(vec![
                    Value::Int(100),
                    Value::Int(10),
                    Value::Date(Date::from_ymd(2020, 1, 1)),
                ]),
                Tuple::new(vec![
                    Value::Int(2),
                    Value::Int(2),
                    Value::Date(Date::from_ymd(2020, 1, 1)),
                ]),
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add(nation);
        db.add(customer);
        db.add(orders);
        db
    }

    #[test]
    fn attribute_vertices_are_shared_across_relations_and_columns() {
        let db = figure1_db();
        let tag = TagGraph::build(&db);
        // Value 2 appears as: NATION.nationkey, CUSTOMER.custkey,
        // CUSTOMER.nationkey, ORDER.orderkey, ORDER.custkey — one vertex,
        // five (undirected) edges.
        let v2 = tag.attr_vertex(&Value::Int(2)).expect("vertex for value 2");
        assert_eq!(tag.graph().degree(v2), 5);
        let labels: Vec<&str> = tag
            .graph()
            .out_edges(v2)
            .iter()
            .map(|e| tag.graph().edge_label_name(e.label))
            .collect();
        assert!(labels.contains(&"NATION.nationkey"));
        assert!(labels.contains(&"CUSTOMER.custkey"));
        assert!(labels.contains(&"CUSTOMER.nationkey"));
        assert!(labels.contains(&"ORDER.orderkey"));
        assert!(labels.contains(&"ORDER.custkey"));
    }

    #[test]
    fn graph_is_bipartite() {
        let db = figure1_db();
        let tag = TagGraph::build(&db);
        for v in tag.graph().vertices() {
            let v_is_tuple = tag.is_tuple_vertex(v);
            for e in tag.graph().out_edges(v) {
                assert_ne!(
                    v_is_tuple,
                    tag.is_tuple_vertex(e.target),
                    "edge between same-kind vertices"
                );
            }
        }
    }

    #[test]
    fn shared_date_connects_two_orders() {
        let db = figure1_db();
        let tag = TagGraph::build(&db);
        let d = Value::Date(Date::from_ymd(2020, 1, 1));
        let dv = tag.attr_vertex(&d).expect("date vertex");
        assert_eq!(tag.graph().degree(dv), 2);
    }

    #[test]
    fn size_is_linear_and_counts_match() {
        let db = figure1_db();
        let tag = TagGraph::build(&db);
        let stats = tag.stats();
        assert_eq!(stats.tuple_vertices, 6);
        // Distinct values: 1, 2, 10, 100, "USA", "FRANCE", the date = 7.
        assert_eq!(stats.attr_vertices, 7);
        // Undirected edges = total non-null fields = 2*2 + 2*2 + 2*3 = 14;
        // directed = 28.
        assert_eq!(stats.edges, 28);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn roundtrip_decode() {
        let db = figure1_db();
        let tag = TagGraph::build(&db);
        let back = tag.decode();
        for rel in db.relations() {
            assert!(back.get(rel.name()).unwrap().same_bag(rel), "{} differs", rel.name());
        }
    }

    #[test]
    fn policy_skips_floats_nulls_and_long_strings() {
        let schema = Schema::new(
            "R",
            vec![
                Column::new("k", DataType::Int),
                Column::new("price", DataType::Float), // unmaterialized by default
                Column::new("comment", DataType::Str),
            ],
        );
        let long = "x".repeat(100);
        let rel = Relation::from_tuples(
            schema,
            vec![
                Tuple::new(vec![Value::Int(1), Value::Float(9.99), Value::str(&long)]),
                Tuple::new(vec![Value::Int(2), Value::Null, Value::str("short")]),
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add(rel);
        let tag = TagGraph::build(&db);
        assert!(tag.attr_vertex(&Value::Float(9.99)).is_none(), "float materialized");
        assert!(tag.attr_vertex(&Value::str(&long)).is_none(), "long string materialized");
        assert!(tag.attr_vertex(&Value::str("short")).is_some());
        assert!(tag.attr_vertex(&Value::Null).is_none());
        // Tuple payloads still carry the full values.
        let rl = tag.relation_label("R").unwrap();
        let tv = tag.graph().vertices_with_label(rl)[0];
        assert_eq!(tag.tuple(tv).unwrap().get(1), &Value::Float(9.99));
    }

    #[test]
    fn incremental_insert_equals_bulk_build() {
        let db = figure1_db();
        let bulk = TagGraph::build(&db);

        let mut b = TagBuilder::new(MaterializePolicy::default());
        for rel in db.relations() {
            b.add_schema(rel.schema.clone());
        }
        for rel in db.relations() {
            for t in &rel.tuples {
                b.insert_tuple(rel.name(), t.clone()).unwrap();
            }
        }
        let inc = b.build();
        let (s1, s2) = (bulk.stats(), inc.stats());
        assert_eq!(s1, s2);
        for rel in db.relations() {
            assert!(inc.decode().get(rel.name()).unwrap().same_bag(rel));
        }
    }

    #[test]
    fn delete_removes_tuple_and_its_edges() {
        let db = figure1_db();
        let mut b = TagBuilder::new(MaterializePolicy::default());
        for rel in db.relations() {
            b.add_schema(rel.schema.clone());
        }
        let mut order_vertices = Vec::new();
        for rel in db.relations() {
            for t in &rel.tuples {
                let v = b.insert_tuple(rel.name(), t.clone()).unwrap();
                if rel.name() == "ORDER" {
                    order_vertices.push(v);
                }
            }
        }
        b.delete_tuple(order_vertices[0]).unwrap();
        // Double delete is an error.
        assert!(b.delete_tuple(order_vertices[0]).is_err());
        let tag = b.build();
        let decoded = tag.decode();
        assert_eq!(decoded.get("ORDER").unwrap().len(), 1);
        assert_eq!(decoded.get("NATION").unwrap().len(), 2);
        // Value 100 only occurred in the deleted tuple: vertex dropped.
        assert!(tag.attr_vertex(&Value::Int(100)).is_none());
        // Value 10 still serves CUSTOMER_10.
        assert!(tag.attr_vertex(&Value::Int(10)).is_some());
    }

    #[test]
    fn insert_rejects_unknown_relation_and_bad_arity() {
        let mut b = TagBuilder::new(MaterializePolicy::default());
        b.add_schema(Schema::new("R", vec![Column::new("a", DataType::Int)]));
        assert!(b.insert_tuple("S", Tuple::new(vec![Value::Int(1)])).is_err());
        assert!(b.insert_tuple("R", Tuple::new(vec![Value::Int(1), Value::Int(2)])).is_err());
    }
}
