//! String interning for vertex and edge labels.
//!
//! TAG graphs have millions of edges but only tens of distinct edge labels
//! (`R.A` per schema attribute), so labels are interned once and compared as
//! `u32`s on the hot path.

use std::fmt;
use vcsql_relation::FxHashMap;

/// An interned label (vertex label or edge label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub u32);

impl LabelId {
    /// Reserved sentinel for "no label": the bucket that label-less sends
    /// are attributed to in per-label traffic statistics. Never produced by
    /// an [`Interner`] (ids are dense from 0).
    pub const NONE: LabelId = LabelId(u32::MAX);
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A bidirectional string ↔ [`LabelId`] map.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    ids: FxHashMap<String, u32>,
}

impl Interner {
    /// Empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.ids.get(name) {
            return LabelId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        LabelId(id)
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.ids.get(name).map(|&id| LabelId(id))
    }

    /// The string for an id. Panics on a foreign id.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (LabelId(i as u32), n.as_str()))
    }

    /// Approximate footprint in bytes.
    pub fn deep_size(&self) -> usize {
        self.names.iter().map(|n| n.capacity() + std::mem::size_of::<String>()).sum::<usize>()
            + self.ids.len() * (std::mem::size_of::<(String, u32)>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("R.A");
        let b = i.intern("R.B");
        assert_ne!(a, b);
        assert_eq!(i.intern("R.A"), a);
        assert_eq!(i.name(a), "R.A");
        assert_eq!(i.get("R.B"), Some(b));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn iteration_in_id_order() {
        let mut i = Interner::new();
        i.intern("z");
        i.intern("a");
        let names: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["z", "a"]);
    }
}
