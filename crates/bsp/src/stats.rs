//! Execution statistics: the paper's communication/computation cost measure.
//!
//! The paper's Section 2 cost model counts every message sent over all
//! supersteps (communication) and every unit of vertex work (computation).
//! These counters let the benches check the analytic bounds (e.g.
//! `min(IN, OUT)` for two-way joins, the AGM bound for cycles) against the
//! implementation, and feed the distributed-simulation network figures.

/// Statistics for one superstep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Vertices that executed this superstep.
    pub active_vertices: u64,
    /// Messages sent this superstep.
    pub messages: u64,
    /// Sum of message payload sizes in bytes.
    pub message_bytes: u64,
    /// Messages whose source and target live on different simulated machines
    /// (zero when no partitioning is configured).
    pub network_messages: u64,
    /// Bytes crossing simulated machine boundaries.
    pub network_bytes: u64,
}

impl StepStats {
    fn add(&mut self, other: &StepStats) {
        self.active_vertices += other.active_vertices;
        self.messages += other.messages;
        self.message_bytes += other.message_bytes;
        self.network_messages += other.network_messages;
        self.network_bytes += other.network_bytes;
    }
}

/// Accumulated statistics for a whole computation.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    pub supersteps: u64,
    pub totals: StepStats,
    /// Per-superstep breakdown, in execution order.
    pub steps: Vec<StepStats>,
}

impl RunStats {
    /// Record a completed superstep.
    pub fn record(&mut self, step: StepStats) {
        self.supersteps += 1;
        self.totals.add(&step);
        self.steps.push(step);
    }

    /// Total messages over all supersteps (the paper's communication cost).
    pub fn total_messages(&self) -> u64 {
        self.totals.messages
    }

    /// Total message bytes over all supersteps.
    pub fn total_bytes(&self) -> u64 {
        self.totals.message_bytes
    }

    /// Fold another run's statistics into this one (used when a query runs
    /// several vertex programs, e.g. per-bag subqueries then the glue join).
    pub fn absorb(&mut self, other: &RunStats) {
        self.supersteps += other.supersteps;
        self.totals.add(&other.totals);
        self.steps.extend_from_slice(&other.steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut r = RunStats::default();
        r.record(StepStats {
            active_vertices: 3,
            messages: 5,
            message_bytes: 40,
            ..Default::default()
        });
        r.record(StepStats {
            active_vertices: 2,
            messages: 1,
            message_bytes: 8,
            ..Default::default()
        });
        assert_eq!(r.supersteps, 2);
        assert_eq!(r.total_messages(), 6);
        assert_eq!(r.total_bytes(), 48);
        assert_eq!(r.steps.len(), 2);

        let mut s = RunStats::default();
        s.absorb(&r);
        s.absorb(&r);
        assert_eq!(s.supersteps, 4);
        assert_eq!(s.total_messages(), 12);
    }
}
