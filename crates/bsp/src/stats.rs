//! Execution statistics: the paper's communication/computation cost measure.
//!
//! The paper's Section 2 cost model counts every message sent over all
//! supersteps (communication) and every unit of vertex work (computation).
//! These counters let the benches check the analytic bounds (e.g.
//! `min(IN, OUT)` for two-way joins, the AGM bound for cycles) against the
//! implementation, and feed the distributed-simulation network figures.
//!
//! Beyond the per-superstep totals, a [`RunStats`] keeps a **per-edge-label
//! breakdown** of the traffic: every send is attributed to the edge label it
//! travelled along ([`crate::engine::VertexCtx::send_along`]), or to the
//! reserved [`LabelId::NONE`] bucket for label-less sends. Summed over all
//! labels the breakdown always equals the totals. A breakdown resolved to
//! label *names* is a [`TrafficProfile`]: the observed per-label traffic of a
//! calibration run, serializable to a small text format so one process can
//! profile a workload and a later one can partition for it (the
//! `PartitionStrategy::Workload` placement in [`crate::partition`]).

use crate::graph::Graph;
use crate::interner::LabelId;
use std::collections::BTreeMap;
use vcsql_relation::FxHashMap;

/// Statistics for one superstep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Vertices that executed this superstep.
    pub active_vertices: u64,
    /// Messages sent this superstep.
    pub messages: u64,
    /// Sum of message payload sizes in bytes.
    pub message_bytes: u64,
    /// Messages whose source and target live on different simulated machines
    /// (zero when no partitioning is configured).
    pub network_messages: u64,
    /// Bytes crossing simulated machine boundaries.
    pub network_bytes: u64,
}

impl StepStats {
    fn add(&mut self, other: &StepStats) {
        self.active_vertices += other.active_vertices;
        self.messages += other.messages;
        self.message_bytes += other.message_bytes;
        self.network_messages += other.network_messages;
        self.network_bytes += other.network_bytes;
    }
}

/// Traffic attributed to one edge label (or to [`LabelId::NONE`]): the
/// message/byte counters of [`StepStats`] without the vertex-activity ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelTraffic {
    pub messages: u64,
    pub bytes: u64,
    pub network_messages: u64,
    pub network_bytes: u64,
}

impl LabelTraffic {
    /// Fold another label's (or run's) traffic into this one.
    pub fn add(&mut self, other: &LabelTraffic) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.network_messages += other.network_messages;
        self.network_bytes += other.network_bytes;
    }

    fn of_step(step: &StepStats) -> LabelTraffic {
        LabelTraffic {
            messages: step.messages,
            bytes: step.message_bytes,
            network_messages: step.network_messages,
            network_bytes: step.network_bytes,
        }
    }
}

/// Byte/round costs of fault tolerance, kept **separate** from the BSP
/// traffic counters: checkpoint writes go to (simulated) stable storage, not
/// the network, and recovery replays are an overhead of the failure — mixing
/// either into `totals` would corrupt the paper's communication-cost measure
/// and the byte-golden baselines. The distributed layer decides which of
/// these to also bill as network traffic (see `vcsql-dist`'s `NetStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTraffic {
    /// Bytes written to checkpoints (vertex state + pending inboxes + the
    /// active set) over the run.
    pub checkpoint_bytes: u64,
    /// Number of checkpoints taken.
    pub checkpoints: u64,
    /// Bytes re-shipped to restore crashed partitions from checkpoints.
    pub recovery_bytes: u64,
    /// Vertices whose state was restored during recoveries.
    pub recovered_vertices: u64,
    /// Supersteps replayed after rollbacks (checkpoint superstep → crash
    /// superstep, summed over recoveries).
    pub recovered_rounds: u64,
    /// Machine crashes absorbed by checkpoint recovery (crashes without a
    /// checkpoint abort the run instead and are not counted here).
    pub crashes_recovered: u64,
}

impl FaultTraffic {
    /// Fold another run's fault costs into this one.
    pub fn add(&mut self, other: &FaultTraffic) {
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.checkpoints += other.checkpoints;
        self.recovery_bytes += other.recovery_bytes;
        self.recovered_vertices += other.recovered_vertices;
        self.recovered_rounds += other.recovered_rounds;
        self.crashes_recovered += other.crashes_recovered;
    }
}

/// Accumulated statistics for a whole computation.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    pub supersteps: u64,
    pub totals: StepStats,
    /// Per-superstep breakdown, in execution order.
    pub steps: Vec<StepStats>,
    /// Per-edge-label breakdown of all traffic in `totals` (label-less sends
    /// under [`LabelId::NONE`]). Invariant: the per-label counters sum to the
    /// corresponding `totals` fields.
    pub per_label: FxHashMap<LabelId, LabelTraffic>,
    /// Checkpoint/recovery costs, itemized outside `totals` (all zero on a
    /// fault-free run without checkpointing).
    pub faults: FaultTraffic,
}

impl RunStats {
    /// Record a completed superstep whose traffic carries no label detail
    /// (it all lands in the [`LabelId::NONE`] bucket).
    pub fn record(&mut self, step: StepStats) {
        let all = LabelTraffic::of_step(&step);
        self.record_step(step, &[(LabelId::NONE, all)]);
    }

    /// Record a completed superstep together with its per-label traffic
    /// breakdown (the engine's path; `labels` must sum to `step`'s traffic).
    pub fn record_step(&mut self, step: StepStats, labels: &[(LabelId, LabelTraffic)]) {
        self.supersteps += 1;
        self.totals.add(&step);
        self.steps.push(step);
        for (label, t) in labels {
            self.per_label.entry(*label).or_default().add(t);
        }
    }

    /// Record traffic that belongs to no superstep (host-side shipping such
    /// as the Algorithm-B Cartesian hand-off): totals grow, `supersteps` and
    /// the per-step list do not — so round counts stay those of the actual
    /// BSP execution.
    pub fn record_traffic(&mut self, traffic: LabelTraffic) {
        self.totals.messages += traffic.messages;
        self.totals.message_bytes += traffic.bytes;
        self.totals.network_messages += traffic.network_messages;
        self.totals.network_bytes += traffic.network_bytes;
        self.per_label.entry(LabelId::NONE).or_default().add(&traffic);
    }

    /// Total messages over all supersteps (the paper's communication cost).
    pub fn total_messages(&self) -> u64 {
        self.totals.messages
    }

    /// Total message bytes over all supersteps.
    pub fn total_bytes(&self) -> u64 {
        self.totals.message_bytes
    }

    /// Traffic attributed to one label (zero if the label never sent).
    pub fn label_traffic(&self, label: LabelId) -> LabelTraffic {
        self.per_label.get(&label).copied().unwrap_or_default()
    }

    /// Fold another run's statistics into this one (used when a query runs
    /// several vertex programs, e.g. per-bag subqueries then the glue join).
    pub fn absorb(&mut self, other: &RunStats) {
        self.supersteps += other.supersteps;
        self.totals.add(&other.totals);
        self.steps.extend_from_slice(&other.steps);
        for (label, t) in &other.per_label {
            self.per_label.entry(*label).or_default().add(t);
        }
        self.faults.add(&other.faults);
    }
}

/// Magic first line of the profile text format.
const PROFILE_HEADER: &str = "vcsql-traffic-profile v1";

/// Observed per-edge-label traffic of one or more runs, keyed by label
/// *name* so it survives across processes and graphs (label ids are
/// graph-local). This is the hand-off between a calibration run and a
/// later `PartitionStrategy::Workload` placement: serialize with
/// [`TrafficProfile::to_text`], load with [`TrafficProfile::from_text`].
///
/// The [`LabelId::NONE`] bucket is deliberately excluded — label-less
/// traffic names no edge and cannot guide placement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficProfile {
    entries: BTreeMap<String, LabelTraffic>,
}

impl TrafficProfile {
    /// Empty profile (every label is "unseen"; the `Workload` placement then
    /// falls back to its static weights everywhere).
    pub fn new() -> TrafficProfile {
        TrafficProfile::default()
    }

    /// Resolve a run's per-label breakdown against the graph it ran over.
    pub fn from_run(stats: &RunStats, graph: &Graph) -> TrafficProfile {
        let mut p = TrafficProfile::new();
        for (&label, t) in &stats.per_label {
            if label == LabelId::NONE {
                continue;
            }
            p.entries.entry(graph.edge_label_name(label).to_string()).or_default().add(t);
        }
        p
    }

    /// Fold another profile into this one (e.g. per-query profiles of a
    /// whole calibration workload).
    pub fn absorb(&mut self, other: &TrafficProfile) {
        for (name, t) in &other.entries {
            self.entries.entry(name.clone()).or_default().add(t);
        }
    }

    /// Insert an explicit zero entry for every edge label of `graph` that
    /// the profile has not observed. A calibration run does this so that
    /// "this label carried nothing" (weight 0) is distinguishable from
    /// "this label was never profiled" (static-weight fallback).
    pub fn cover_graph(&mut self, graph: &Graph) {
        for (_, name) in graph.edge_labels().iter() {
            self.entries.entry(name.to_string()).or_default();
        }
    }

    /// Record traffic for a label by name (mainly for tests and tooling).
    pub fn record(&mut self, name: &str, traffic: LabelTraffic) {
        self.entries.entry(name.to_string()).or_default().add(&traffic);
    }

    /// The observed traffic for a label name, if the label was profiled
    /// (a `Some` of zeros means "seen, carried nothing").
    pub fn get(&self, name: &str) -> Option<LabelTraffic> {
        self.entries.get(name).copied()
    }

    /// Iterate `(name, traffic)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &LabelTraffic)> {
        self.entries.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Number of profiled labels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total bytes over all profiled labels.
    pub fn total_bytes(&self) -> u64 {
        self.entries.values().map(|t| t.bytes).sum()
    }

    /// Byte-weighted drift between this profile and the `baseline` it is
    /// compared against, as the total-variation distance between the two
    /// per-label *byte share* distributions:
    ///
    /// ```text
    /// drift = ½ · Σ_label | bytes_self(l)/total_self − bytes_base(l)/total_base |
    /// ```
    ///
    /// The result is in `[0, 1]`: 0 means the traffic is spread over the
    /// labels in exactly the baseline's proportions (placement derived from
    /// the baseline still fits), 1 means the workloads are label-disjoint.
    /// Two traffic-free profiles have drift 0; traffic against an empty
    /// baseline (e.g. a placement that was never profiled) drifts maximally.
    /// This is the trigger metric for online repartitioning (`vcsql-session`).
    pub fn byte_drift(&self, baseline: &TrafficProfile) -> f64 {
        let (ta, tb) = (self.total_bytes() as f64, baseline.total_bytes() as f64);
        if ta == 0.0 && tb == 0.0 {
            return 0.0;
        }
        if ta == 0.0 || tb == 0.0 {
            return 1.0;
        }
        let mut dist = 0.0;
        for (name, t) in &self.entries {
            let base = baseline.get(name).map(|b| b.bytes).unwrap_or(0);
            dist += (t.bytes as f64 / ta - base as f64 / tb).abs();
        }
        for (name, t) in &baseline.entries {
            if !self.entries.contains_key(name) {
                dist += t.bytes as f64 / tb;
            }
        }
        dist / 2.0
    }

    /// True iff no label has been profiled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exponentially decay every counter by `factor` in `[0, 1]` (floored to
    /// whole counts). Applied once per observation period, a factor of
    /// `0.5^(1/h)` gives the profile a half-life of `h` periods: old traffic
    /// fades instead of pinning the placement to a workload that stopped
    /// running. Labels stay present even when their counters reach zero —
    /// "seen, now quiet" still differs from "never profiled" for the
    /// `Workload` placement fallback.
    pub fn decay(&mut self, factor: f64) {
        assert!((0.0..=1.0).contains(&factor), "decay factor {factor} outside [0, 1]");
        let scale = |n: u64| (n as f64 * factor).floor() as u64;
        for t in self.entries.values_mut() {
            t.messages = scale(t.messages);
            t.bytes = scale(t.bytes);
            t.network_messages = scale(t.network_messages);
            t.network_bytes = scale(t.network_bytes);
        }
    }

    /// Serialize to the line-oriented text format:
    ///
    /// ```text
    /// vcsql-traffic-profile v1
    /// <label-name> <messages> <bytes> <network_messages> <network_bytes>
    /// ```
    ///
    /// Label names follow the TAG `R.A` convention and must not contain
    /// whitespace.
    pub fn to_text(&self) -> String {
        let mut out = String::from(PROFILE_HEADER);
        out.push('\n');
        for (name, t) in &self.entries {
            debug_assert!(!name.contains(char::is_whitespace), "label name with whitespace");
            out.push_str(&format!(
                "{name} {} {} {} {}\n",
                t.messages, t.bytes, t.network_messages, t.network_bytes
            ));
        }
        out
    }

    /// Parse the [`TrafficProfile::to_text`] format. Duplicate label lines
    /// accumulate; blank lines and `#` comments are skipped (before the
    /// header line too, so a saved profile may carry a leading banner).
    pub fn from_text(text: &str) -> Result<TrafficProfile, String> {
        let mut lines =
            text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some(PROFILE_HEADER) => {}
            other => {
                return Err(format!("bad profile header: {other:?} (want {PROFILE_HEADER:?})"))
            }
        }
        let mut p = TrafficProfile::new();
        for line in lines {
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 5 {
                return Err(format!("bad profile line (want 5 fields): `{line}`"));
            }
            let num =
                |s: &str| s.parse::<u64>().map_err(|_| format!("bad count `{s}` in `{line}`"));
            p.record(
                fields[0],
                LabelTraffic {
                    messages: num(fields[1])?,
                    bytes: num(fields[2])?,
                    network_messages: num(fields[3])?,
                    network_bytes: num(fields[4])?,
                },
            );
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn record_accumulates() {
        let mut r = RunStats::default();
        r.record(StepStats {
            active_vertices: 3,
            messages: 5,
            message_bytes: 40,
            ..Default::default()
        });
        r.record(StepStats {
            active_vertices: 2,
            messages: 1,
            message_bytes: 8,
            ..Default::default()
        });
        assert_eq!(r.supersteps, 2);
        assert_eq!(r.total_messages(), 6);
        assert_eq!(r.total_bytes(), 48);
        assert_eq!(r.steps.len(), 2);
        // Label-less records land in the NONE bucket, keeping the sum
        // invariant.
        assert_eq!(r.label_traffic(LabelId::NONE).messages, 6);

        let mut s = RunStats::default();
        s.absorb(&r);
        s.absorb(&r);
        assert_eq!(s.supersteps, 4);
        assert_eq!(s.total_messages(), 12);
        assert_eq!(s.label_traffic(LabelId::NONE).bytes, 96);
    }

    #[test]
    fn record_step_tracks_labels() {
        let mut r = RunStats::default();
        let l0 = LabelId(0);
        let l1 = LabelId(1);
        r.record_step(
            StepStats { active_vertices: 2, messages: 3, message_bytes: 24, ..Default::default() },
            &[
                (l0, LabelTraffic { messages: 2, bytes: 16, ..Default::default() }),
                (l1, LabelTraffic { messages: 1, bytes: 8, ..Default::default() }),
            ],
        );
        assert_eq!(r.label_traffic(l0).messages, 2);
        assert_eq!(r.label_traffic(l1).bytes, 8);
        let sum: u64 = r.per_label.values().map(|t| t.messages).sum();
        assert_eq!(sum, r.total_messages());
    }

    #[test]
    fn record_traffic_skips_rounds() {
        let mut r = RunStats::default();
        r.record(StepStats { messages: 1, message_bytes: 8, ..Default::default() });
        r.record_traffic(LabelTraffic {
            messages: 10,
            bytes: 100,
            network_messages: 4,
            network_bytes: 40,
        });
        assert_eq!(r.supersteps, 1, "non-round traffic must not add a superstep");
        assert_eq!(r.steps.len(), 1);
        assert_eq!(r.total_messages(), 11);
        assert_eq!(r.total_bytes(), 108);
        assert_eq!(r.totals.network_bytes, 40);
    }

    #[test]
    fn profile_roundtrips_through_text() {
        let mut p = TrafficProfile::new();
        p.record(
            "lineitem.l_orderkey",
            LabelTraffic { messages: 10, bytes: 800, network_messages: 5, network_bytes: 400 },
        );
        p.record("orders.o_custkey", LabelTraffic { messages: 3, bytes: 24, ..Default::default() });
        let text = p.to_text();
        let q = TrafficProfile::from_text(&text).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.get("lineitem.l_orderkey").unwrap().bytes, 800);
        assert_eq!(q.get("missing"), None);
    }

    #[test]
    fn profile_rejects_malformed_text() {
        assert!(TrafficProfile::from_text("").is_err());
        assert!(TrafficProfile::from_text("not-a-profile\n").is_err());
        assert!(TrafficProfile::from_text("vcsql-traffic-profile v1\nr.a 1 2\n").is_err());
        assert!(TrafficProfile::from_text("vcsql-traffic-profile v1\nr.a 1 2 3 x\n").is_err());
        // Comments and blank lines are fine, including before the header.
        let ok = TrafficProfile::from_text("vcsql-traffic-profile v1\n\n# hi\nr.a 1 2 3 4\n");
        assert_eq!(ok.unwrap().get("r.a").unwrap().network_bytes, 4);
        let banner = TrafficProfile::from_text("# banner\nvcsql-traffic-profile v1\nr.a 1 2 3 4\n");
        assert_eq!(banner.unwrap().get("r.a").unwrap().messages, 1);
    }

    #[test]
    fn decay_scales_counters_and_keeps_labels() {
        let mut p = TrafficProfile::new();
        p.record(
            "r.a",
            LabelTraffic { messages: 100, bytes: 1000, network_messages: 10, network_bytes: 101 },
        );
        p.record("r.b", LabelTraffic { messages: 1, bytes: 1, ..Default::default() });
        p.decay(0.5);
        assert_eq!(
            p.get("r.a").unwrap(),
            LabelTraffic { messages: 50, bytes: 500, network_messages: 5, network_bytes: 50 }
        );
        // Floored to zero, but the label stays profiled.
        assert_eq!(p.get("r.b"), Some(LabelTraffic::default()));
        p.decay(0.0);
        assert_eq!(p.get("r.a"), Some(LabelTraffic::default()));
        assert_eq!(p.len(), 2);
        // Identity decay is a no-op.
        let mut q = TrafficProfile::new();
        q.record("r.a", LabelTraffic { messages: 7, bytes: 9, ..Default::default() });
        let before = q.clone();
        q.decay(1.0);
        assert_eq!(q, before);
    }

    #[test]
    #[should_panic]
    fn decay_rejects_out_of_range_factor() {
        TrafficProfile::new().decay(1.5);
    }

    #[test]
    fn byte_drift_is_a_bounded_distance() {
        let mut a = TrafficProfile::new();
        a.record("r.x", LabelTraffic { messages: 1, bytes: 100, ..Default::default() });
        a.record("r.y", LabelTraffic { messages: 1, bytes: 100, ..Default::default() });
        // Identical shares (scale-free): zero drift.
        let mut a2 = TrafficProfile::new();
        a2.record("r.x", LabelTraffic { messages: 9, bytes: 700, ..Default::default() });
        a2.record("r.y", LabelTraffic { messages: 9, bytes: 700, ..Default::default() });
        assert!(a.byte_drift(&a).abs() < 1e-12);
        assert!(a.byte_drift(&a2).abs() < 1e-12);
        // Label-disjoint traffic: maximal drift, symmetric.
        let mut b = TrafficProfile::new();
        b.record("s.z", LabelTraffic { messages: 1, bytes: 50, ..Default::default() });
        assert!((a.byte_drift(&b) - 1.0).abs() < 1e-12);
        assert!((b.byte_drift(&a) - 1.0).abs() < 1e-12);
        // Half the bytes moved to a new label: drift 0.5.
        let mut c = TrafficProfile::new();
        c.record("r.x", LabelTraffic { messages: 1, bytes: 100, ..Default::default() });
        c.record("s.z", LabelTraffic { messages: 1, bytes: 100, ..Default::default() });
        assert!((a.byte_drift(&c) - 0.5).abs() < 1e-12);
        // Empty cases.
        let empty = TrafficProfile::new();
        assert_eq!(empty.byte_drift(&empty), 0.0);
        assert_eq!(a.byte_drift(&empty), 1.0);
        assert_eq!(empty.byte_drift(&a), 1.0);
        // Zero-byte entries count as no traffic.
        let mut zeros = TrafficProfile::new();
        zeros.record("r.x", LabelTraffic::default());
        assert_eq!(a.byte_drift(&zeros), 1.0);
        assert_eq!(a.total_bytes(), 200);
    }

    #[test]
    fn profile_from_run_resolves_names_and_covers_graph() {
        let mut b = GraphBuilder::new();
        let vl = b.vertex_label("v");
        let ea = b.edge_label("r.a");
        let _eb = b.edge_label("r.b");
        b.add_vertex(vl);
        let g = b.finish();

        let mut stats = RunStats::default();
        stats.record_step(
            StepStats { messages: 2, message_bytes: 16, ..Default::default() },
            &[(ea, LabelTraffic { messages: 2, bytes: 16, ..Default::default() })],
        );
        stats.record_traffic(LabelTraffic { messages: 1, bytes: 8, ..Default::default() });

        let mut p = TrafficProfile::from_run(&stats, &g);
        assert_eq!(p.get("r.a").unwrap().messages, 2);
        assert_eq!(p.get("r.b"), None, "unobserved label absent before cover_graph");
        assert_eq!(p.len(), 1, "NONE bucket excluded");
        p.cover_graph(&g);
        assert_eq!(p.get("r.b"), Some(LabelTraffic::default()));
        assert_eq!(p.get("r.a").unwrap().messages, 2, "cover_graph must not clobber");
    }
}
