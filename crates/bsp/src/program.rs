//! The classic Pregel program abstraction, built on top of the superstep API.
//!
//! [`VertexProgram`] captures a complete vertex-centric computation: which
//! vertices start active, what a vertex does each superstep, and a global
//! aggregator. [`run_program`] loops supersteps until no vertex is active —
//! the paper's termination condition ("the computation terminates when there
//! are no active vertices").

use crate::engine::{Computation, EngineConfig, VertexCtx};
use crate::graph::{Graph, VertexId};
use crate::stats::RunStats;

/// Messages exchanged between vertices.
///
/// `byte_size` feeds the communication-cost statistics; override it for
/// messages with heap payloads (intermediate result tables, value lists).
pub trait Message: Send + Sync + Clone {
    /// Payload size in bytes, for communication accounting.
    fn byte_size(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

impl Message for () {}
impl Message for u8 {}
impl Message for u16 {}
impl Message for u32 {}
impl Message for u64 {}
impl Message for i32 {}
impl Message for i64 {}
impl Message for f64 {}
impl<A: Message, B: Message> Message for (A, B) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}
impl<T: Message> Message for Vec<T> {
    fn byte_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.iter().map(Message::byte_size).sum::<usize>()
    }
}

/// A mergeable per-superstep global value (Pregel aggregator).
pub trait Aggregator: Default + Send + Sync {
    /// Fold another worker's partial aggregate into this one.
    fn merge(&mut self, other: Self);
}

impl Aggregator for () {
    fn merge(&mut self, _: Self) {}
}

impl Aggregator for u64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

impl<T: Send + Sync> Aggregator for Vec<T> {
    fn merge(&mut self, mut other: Self) {
        self.append(&mut other);
    }
}

/// A complete vertex-centric computation.
pub trait VertexProgram: Sync {
    /// Per-vertex mutable state.
    type State: Send;
    /// Message type.
    type Msg: Message;
    /// Global aggregator merged every superstep.
    type Global: Aggregator;

    /// Initial state for every vertex.
    fn init_state(&self, graph: &Graph, v: VertexId) -> Self::State;

    /// Vertices active in superstep 0.
    fn initial_active(&self, graph: &Graph) -> Vec<VertexId>;

    /// Per-vertex work for superstep `step`. `global` is the merged
    /// aggregate of the *previous* superstep.
    fn compute(
        &self,
        step: u64,
        ctx: &mut VertexCtx<'_, '_, Self::State, Self::Msg>,
        global: &Self::Global,
        agg: &mut Self::Global,
    );

    /// Optional superstep cap (safety net against non-terminating programs).
    fn max_supersteps(&self) -> u64 {
        10_000
    }
}

/// Run a [`VertexProgram`] to completion; returns final states, the final
/// global aggregate, and run statistics.
pub fn run_program<P: VertexProgram>(
    graph: &Graph,
    config: EngineConfig,
    program: &P,
) -> (Vec<P::State>, P::Global, RunStats) {
    let mut comp: Computation<'_, P::State, P::Msg> =
        Computation::new(graph, config, |v| program.init_state(graph, v));
    comp.activate(program.initial_active(graph));
    let mut global = P::Global::default();
    let mut step = 0u64;
    while !comp.halted() {
        assert!(
            step < program.max_supersteps(),
            "vertex program exceeded {} supersteps",
            program.max_supersteps()
        );
        let g_prev = &global;
        let (_, g) = comp.superstep(|ctx, agg| program.compute(step, ctx, g_prev, agg));
        global = g;
        step += 1;
    }
    let (states, stats) = comp.finish();
    (states, global, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Connected components by min-label propagation — a classic Pregel
    /// program exercising init/active/halting and the aggregator.
    struct MinLabel;

    impl VertexProgram for MinLabel {
        type State = u32;
        type Msg = u32;
        type Global = u64; // counts label changes per superstep

        fn init_state(&self, _g: &Graph, v: VertexId) -> u32 {
            v
        }

        fn initial_active(&self, g: &Graph) -> Vec<VertexId> {
            g.vertices().collect()
        }

        fn compute(
            &self,
            step: u64,
            ctx: &mut VertexCtx<'_, '_, u32, u32>,
            _global: &u64,
            agg: &mut u64,
        ) {
            let best = ctx.messages().iter().copied().min().unwrap_or(u32::MAX);
            let changed = best < *ctx.state;
            if changed {
                *ctx.state = best;
                *agg += 1;
            }
            if step == 0 || changed {
                let label = *ctx.state;
                let targets: Vec<VertexId> = ctx.edges().iter().map(|e| e.target).collect();
                for t in targets {
                    ctx.send(t, label);
                }
            }
        }
    }

    #[test]
    fn connected_components() {
        // Two components: {0,1,2} and {3,4}.
        let mut b = GraphBuilder::new();
        let vl = b.vertex_label("v");
        let el = b.edge_label("e");
        for _ in 0..5 {
            b.add_vertex(vl);
        }
        b.add_undirected_edge(0, 1, el);
        b.add_undirected_edge(1, 2, el);
        b.add_undirected_edge(3, 4, el);
        let g = b.finish();

        let (states, _, stats) = run_program(&g, EngineConfig::with_threads(2), &MinLabel);
        assert_eq!(states, vec![0, 0, 0, 3, 3]);
        assert!(stats.supersteps >= 3);
        assert!(stats.total_messages() > 0);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn runaway_program_is_stopped() {
        struct PingPong;
        impl VertexProgram for PingPong {
            type State = ();
            type Msg = ();
            type Global = ();
            fn init_state(&self, _: &Graph, _: VertexId) {}
            fn initial_active(&self, _: &Graph) -> Vec<VertexId> {
                vec![0, 1]
            }
            fn compute(&self, _s: u64, ctx: &mut VertexCtx<'_, '_, (), ()>, _g: &(), _a: &mut ()) {
                let other = 1 - ctx.id();
                ctx.send(other, ());
            }
            fn max_supersteps(&self) -> u64 {
                50
            }
        }
        let mut b = GraphBuilder::new();
        let vl = b.vertex_label("v");
        b.add_vertex(vl);
        b.add_vertex(vl);
        let g = b.finish();
        run_program(&g, EngineConfig::sequential(), &PingPong);
    }
}
