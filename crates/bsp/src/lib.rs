//! # vcsql-bsp — a vertex-centric bulk-synchronous-parallel engine
//!
//! A from-scratch, shared-memory Pregel-style engine (the substrate the paper
//! assumes in Section 2): vertices execute a user program in supersteps,
//! communicate only by messages, and synchronize at a barrier between
//! supersteps. The engine provides
//!
//! * a labelled, immutable [`Graph`] (CSR adjacency, interned labels),
//! * per-vertex user state and double-buffered message inboxes,
//! * thread parallelism over shards of the active vertex set, driven by a
//!   persistent [`WorkerPool`] (workers park between supersteps; small
//!   supersteps fall back to sequential execution automatically),
//! * global aggregators (the paper's "aggregation vertex" mechanism),
//! * per-superstep and total statistics: messages, bytes, active vertices —
//!   the paper's *communication cost* measure, and
//! * optional machine [`Partitioning`] so a distributed cluster can be
//!   simulated by counting cross-machine traffic (used by `vcsql-dist`),
//!   with pluggable placement strategies ([`PartitionStrategy`]: hash
//!   baseline, anchor co-location, label-propagation refinement) and
//!   edge-cut/balance [`PartitionDiagnostics`].
//!
//! Two levels of API:
//!
//! * [`Computation`] — a driver-controlled superstep loop. Each call to
//!   [`Computation::superstep`] runs one BSP superstep; the host decides what
//!   each superstep does (exactly how the paper's Algorithm 2 is "driven by"
//!   a stack of edge labels, and how TigerGraph queries are sequences of
//!   one-hop traversals).
//! * [`VertexProgram`] + [`run_program`] — the classic Pregel loop: run until
//!   no vertex is active.

pub mod engine;
pub mod fault;
pub mod graph;
pub mod interner;
pub mod partition;
pub mod pool;
pub mod program;
pub mod stats;
pub mod sync;

pub use engine::{Computation, EngineConfig, Outbox, VertexCtx, DEFAULT_PARALLEL_THRESHOLD};
pub use fault::{Fault, FaultError, FaultInjector, FaultPlan};
pub use graph::{Edge, Graph, GraphBuilder, VertexId};
pub use interner::{Interner, LabelId};
pub use partition::{
    balance_cap, migrate_step, MigrationMove, MigrationStep, PartitionDiagnostics,
    PartitionStrategy, Partitioning, RefineConfig, DEFAULT_BALANCE_SLACK,
};
pub use pool::WorkerPool;
pub use program::{run_program, Aggregator, Message, VertexProgram};
pub use stats::{FaultTraffic, LabelTraffic, RunStats, StepStats, TrafficProfile};
