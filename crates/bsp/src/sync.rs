//! Synchronization-primitive shim for the BSP runtime.
//!
//! Everything in `pool.rs` that parks, wakes, counts, or spawns goes through
//! this module instead of naming `std::sync` / `std::thread` directly. In a
//! normal build the re-exports *are* the std types — zero cost, zero
//! behaviour change. Under `--cfg vcsql_loom` (the model-checking lane, see
//! `RUSTFLAGS="--cfg vcsql_loom"` in CI) they swap for the `loom` compat
//! crate's shadow types, whose deterministic scheduler explores every
//! preemption-bounded interleaving of the pool's hand-off protocol inside
//! `loom::model`. Outside a model the shadow types degrade to std, so the
//! regular test suite runs unchanged in that configuration too.
//!
//! Only the types the pool actually uses are re-exported; adding a primitive
//! here means teaching `crates/compat/loom` to model it first.

#[cfg(not(vcsql_loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(vcsql_loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard};

/// Atomics: std by default, loom shadows under `--cfg vcsql_loom`.
pub mod atomic {
    #[cfg(not(vcsql_loom))]
    pub use std::sync::atomic::{AtomicUsize, Ordering};

    #[cfg(vcsql_loom)]
    pub use loom::sync::atomic::{AtomicUsize, Ordering};
}

/// Thread spawning: std by default, loom-controlled threads under
/// `--cfg vcsql_loom`.
pub mod thread {
    #[cfg(not(vcsql_loom))]
    pub use std::thread::{Builder, JoinHandle};

    #[cfg(vcsql_loom)]
    pub use loom::thread::{Builder, JoinHandle};
}
