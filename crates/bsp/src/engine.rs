//! The superstep execution engine.
//!
//! A [`Computation`] owns per-vertex user state and message inboxes over an
//! immutable [`Graph`]. Each call to [`Computation::superstep`] performs one
//! BSP superstep:
//!
//! 1. **compute** — the user closure runs for every *active* vertex, in
//!    parallel over worker threads. It sees the vertex's state, its incoming
//!    messages from the previous superstep, and its out-edges; it may send
//!    messages to any vertex id it knows (its neighbours, or ids learned from
//!    messages — the Pregel rule).
//! 2. **barrier + delivery** — all outgoing messages are delivered into the
//!    target inboxes.
//! 3. **activation** — exactly the vertices that received at least one
//!    message are active in the next superstep.
//!
//! Parallelism layout: the sorted active list is split into contiguous chunks,
//! one per worker. Each worker writes only to the states/inboxes of its own
//! vertices during compute, and delivery is sharded by `target % shards`, so
//! workers always touch disjoint slots; the `SharedMut` wrapper below
//! documents and encapsulates that invariant. Message delivery concatenates
//! worker outboxes in worker order, which equals source-vertex order — so
//! inbox contents are deterministic and independent of the thread count.
//!
//! Buffer reuse: outbox shard buffers are recycled through a pool on the
//! [`Computation`] instead of being reallocated every superstep, delivery
//! *moves* messages into inboxes (no per-message clone), and inbox `Vec`s
//! live for the whole computation (cleared, not dropped, after compute) —
//! so steady-state supersteps run allocation-free on the message path. The
//! pool is refilled in shard-major, worker-minor order after each delivery,
//! which keeps the whole cycle deterministic.

use crate::graph::{Edge, Graph, VertexId};
use crate::interner::LabelId;
use crate::partition::Partitioning;
use crate::program::{Aggregator, Message};
use crate::stats::{LabelTraffic, RunStats, StepStats};
use std::sync::Arc;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads (also the number of delivery shards).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineConfig { threads: threads.min(16) }
    }
}

impl EngineConfig {
    /// Single-threaded configuration (useful for deterministic debugging).
    pub fn sequential() -> EngineConfig {
        EngineConfig { threads: 1 }
    }

    /// Configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> EngineConfig {
        EngineConfig { threads: threads.max(1) }
    }
}

/// Per-vertex view handed to the compute closure for one superstep.
pub struct VertexCtx<'a, 'p, V, M: Message> {
    vid: VertexId,
    graph: &'a Graph,
    /// The vertex's mutable user state.
    pub state: &'a mut V,
    msgs: &'a [M],
    out: &'a mut Outbox<'p, M>,
}

impl<'a, 'p, V, M: Message> VertexCtx<'a, 'p, V, M> {
    /// This vertex's id.
    #[inline]
    pub fn id(&self) -> VertexId {
        self.vid
    }

    /// This vertex's label.
    #[inline]
    pub fn label(&self) -> LabelId {
        self.graph.label_of(self.vid)
    }

    /// Messages received from the previous superstep.
    #[inline]
    pub fn messages(&self) -> &'a [M] {
        self.msgs
    }

    /// All out-edges.
    #[inline]
    pub fn edges(&self) -> &'a [Edge] {
        self.graph.out_edges(self.vid)
    }

    /// Out-edges with a specific label.
    #[inline]
    pub fn edges_with(&self, label: LabelId) -> &'a [Edge] {
        self.graph.out_edges_with_label(self.vid, label)
    }

    /// Out-degree restricted to a label.
    #[inline]
    pub fn degree_with(&self, label: LabelId) -> usize {
        self.graph.degree_with_label(self.vid, label)
    }

    /// The underlying graph (read-only).
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Send a message to any vertex. Delivered at the next superstep. The
    /// traffic is attributed to the [`LabelId::NONE`] bucket of the
    /// per-label statistics; prefer [`VertexCtx::send_along`] when the send
    /// travels a known edge label.
    #[inline]
    pub fn send(&mut self, target: VertexId, msg: M) {
        self.out.send(self.vid, target, LabelId::NONE, msg);
    }

    /// Send a message along an edge with the given label: identical delivery
    /// semantics to [`VertexCtx::send`], but the traffic is attributed to
    /// `label` in the run's per-label statistics (feeding workload-aware
    /// partitioning's `TrafficProfile`).
    #[inline]
    pub fn send_along(&mut self, label: LabelId, target: VertexId, msg: M) {
        self.out.send(self.vid, target, label, msg);
    }
}

/// Per-worker outgoing message buffer, sharded by target for lock-free
/// delivery.
pub struct Outbox<'p, M: Message> {
    shards: Vec<Vec<(VertexId, M)>>,
    partitioning: Option<&'p Partitioning>,
    messages: u64,
    bytes: u64,
    network_messages: u64,
    network_bytes: u64,
    /// Per-label traffic of this worker's sends. A superstep touches only a
    /// handful of labels (TAG traversals: exactly one), so a linear-scan vec
    /// beats a map on the send hot path.
    per_label: Vec<(LabelId, LabelTraffic)>,
}

impl<'p, M: Message> Outbox<'p, M> {
    /// Build over recycled (empty) shard buffers from the computation's pool.
    fn new(
        shards: Vec<Vec<(VertexId, M)>>,
        partitioning: Option<&'p Partitioning>,
    ) -> Outbox<'p, M> {
        debug_assert!(shards.iter().all(Vec::is_empty), "pooled shard buffer not drained");
        Outbox {
            shards,
            partitioning,
            messages: 0,
            bytes: 0,
            network_messages: 0,
            network_bytes: 0,
            per_label: Vec::new(),
        }
    }

    #[inline]
    fn send(&mut self, source: VertexId, target: VertexId, label: LabelId, msg: M) {
        let size = msg.byte_size() as u64;
        self.messages += 1;
        self.bytes += size;
        let crossing = self.partitioning.is_some_and(|p| p.crosses(source, target));
        if crossing {
            self.network_messages += 1;
            self.network_bytes += size;
        }
        let entry = match self.per_label.iter_mut().find(|(l, _)| *l == label) {
            Some((_, t)) => t,
            None => {
                self.per_label.push((label, LabelTraffic::default()));
                &mut self.per_label.last_mut().expect("just pushed").1
            }
        };
        entry.messages += 1;
        entry.bytes += size;
        if crossing {
            entry.network_messages += 1;
            entry.network_bytes += size;
        }
        let shard = target as usize % self.shards.len();
        self.shards[shard].push((target, msg));
    }
}

/// Pointer wrapper allowing disjoint `&mut` access to a slice from several
/// workers.
///
/// # Safety invariant
/// Every index is written by at most one worker per phase: compute workers own
/// the vertices of their chunk of the (deduplicated) active list; delivery
/// workers own the inboxes of `target % shards == shard`.
struct SharedMut<T>(*mut T);
unsafe impl<T: Send> Send for SharedMut<T> {}
unsafe impl<T: Send> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    /// # Safety
    /// Caller must uphold the disjoint-index invariant described on the type.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    unsafe fn get(&self, index: usize) -> &mut T {
        &mut *self.0.add(index)
    }
}

/// A running vertex-centric computation: graph + states + inboxes + active
/// set + statistics.
pub struct Computation<'g, V, M: Message> {
    graph: &'g Graph,
    config: EngineConfig,
    states: Vec<V>,
    inboxes: Vec<Vec<M>>,
    active: Vec<VertexId>,
    /// True when `active` holds unsorted/duplicated host injections;
    /// normalized lazily at the next superstep (keeps `inject` O(1)).
    active_dirty: bool,
    stats: RunStats,
    partitioning: Option<Arc<Partitioning>>,
    /// Recycled outbox shard buffers (always drained): each superstep takes
    /// `workers x shards` buffers here and returns them after delivery, so
    /// steady-state supersteps reuse capacity instead of reallocating.
    shard_pool: Vec<Vec<(VertexId, M)>>,
}

impl<'g, V: Send, M: Message> Computation<'g, V, M> {
    /// Create a computation with per-vertex state produced by `init`.
    pub fn new(graph: &'g Graph, config: EngineConfig, init: impl Fn(VertexId) -> V) -> Self {
        let n = graph.vertex_count();
        Computation {
            graph,
            config,
            states: (0..n as VertexId).map(init).collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            active: Vec::new(),
            active_dirty: false,
            stats: RunStats::default(),
            partitioning: None,
            shard_pool: Vec::new(),
        }
    }

    /// Attach a machine partitioning: subsequent supersteps will count
    /// cross-machine traffic in their [`StepStats`].
    pub fn set_partitioning(&mut self, p: Partitioning) {
        self.partitioning = Some(Arc::new(p));
    }

    /// [`Computation::set_partitioning`] without copying: callers that hold
    /// a placement across many computations (a session serving a workload)
    /// share one allocation instead of cloning the per-vertex assignment
    /// into every run.
    pub fn set_partitioning_shared(&mut self, p: Arc<Partitioning>) {
        self.partitioning = Some(p);
    }

    /// The graph being computed over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Replace the active set (deduplicated and sorted).
    pub fn activate(&mut self, vertices: impl IntoIterator<Item = VertexId>) {
        self.active = vertices.into_iter().collect();
        self.active.sort_unstable();
        self.active.dedup();
        self.active_dirty = false;
    }

    /// Activate all vertices with the given vertex label.
    pub fn activate_label(&mut self, label: LabelId) {
        self.activate(self.graph.vertices_with_label(label).to_vec());
    }

    /// Inject a message into a vertex's inbox and activate it (host-side
    /// seeding; not counted as engine communication). O(1): duplicates are
    /// deduplicated and the list re-sorted lazily at the next superstep, so
    /// seeding n vertices is O(n log n) total, not O(n²).
    pub fn inject(&mut self, target: VertexId, msg: M) {
        self.inboxes[target as usize].push(msg);
        self.active.push(target);
        self.active_dirty = true;
    }

    /// Batch [`Computation::inject`]: seed many `(target, message)` pairs
    /// with a single sort + dedup of the active list.
    pub fn inject_all(&mut self, msgs: impl IntoIterator<Item = (VertexId, M)>) {
        for (target, msg) in msgs {
            self.inboxes[target as usize].push(msg);
            self.active.push(target);
        }
        self.active_dirty = true;
        self.normalize_active();
    }

    /// Sort + dedup the active list if host injections left it dirty.
    fn normalize_active(&mut self) {
        if self.active_dirty {
            self.active.sort_unstable();
            self.active.dedup();
            self.active_dirty = false;
        }
    }

    /// Currently active vertices (sorted and deduplicated, except between
    /// consecutive [`Computation::inject`] calls — normalized again at the
    /// next superstep or [`Computation::inject_all`]).
    pub fn active(&self) -> &[VertexId] {
        &self.active
    }

    /// True iff no vertex is active (the computation has converged).
    pub fn halted(&self) -> bool {
        self.active.is_empty()
    }

    /// Read a vertex's state.
    pub fn state(&self, v: VertexId) -> &V {
        &self.states[v as usize]
    }

    /// Mutate a vertex's state from the host (between supersteps).
    pub fn state_mut(&mut self, v: VertexId) -> &mut V {
        &mut self.states[v as usize]
    }

    /// All vertex states, indexed by vertex id.
    pub fn states(&self) -> &[V] {
        &self.states
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Consume the computation, returning states and statistics.
    pub fn finish(self) -> (Vec<V>, RunStats) {
        (self.states, self.stats)
    }

    /// Approximate inbox working-set size in bytes (user states excluded —
    /// callers size those with knowledge of `V`).
    pub fn inbox_bytes(&self) -> usize {
        self.inboxes
            .iter()
            .map(|b| {
                b.iter().map(|m| m.byte_size()).sum::<usize>()
                    + b.capacity() * std::mem::size_of::<M>()
            })
            .sum()
    }

    /// Run one superstep with a global aggregator.
    ///
    /// `compute` runs once per active vertex and may fold into its worker's
    /// local aggregate; worker aggregates are merged (in worker order) into
    /// the returned value. This is the engine-level realization of the
    /// paper's aggregation vertex: a value every vertex can contribute to,
    /// visible to the host (and passable back into the next superstep).
    pub fn superstep<G, F>(&mut self, compute: F) -> (StepStats, G)
    where
        G: Aggregator,
        F: for<'x, 'y> Fn(&mut VertexCtx<'x, 'y, V, M>, &mut G) + Sync,
    {
        self.normalize_active();
        let shards = self.config.threads;
        let active = std::mem::take(&mut self.active);
        let workers = self.config.threads.min(active.len()).max(1);
        let chunk = active.len().div_ceil(workers).max(1);

        // Recycled shard buffers: hand each worker `shards` drained buffers
        // from the pool (topped up with fresh ones on the first supersteps).
        let mut pool = std::mem::take(&mut self.shard_pool);
        let take_shard_set = |pool: &mut Vec<Vec<(VertexId, M)>>| {
            let start = pool.len().saturating_sub(shards);
            let mut set: Vec<Vec<(VertexId, M)>> = pool.drain(start..).collect();
            set.resize_with(shards, Vec::new);
            set
        };

        let states = SharedMut(self.states.as_mut_ptr());
        let inboxes = SharedMut(self.inboxes.as_mut_ptr());
        let graph = self.graph;
        let partitioning = self.partitioning.as_deref();

        // --- compute phase -------------------------------------------------
        let mut results: Vec<(Outbox<'_, M>, G)> = Vec::with_capacity(workers);
        if active.is_empty() {
            // Nothing to run, but the superstep is still recorded so the
            // count matches the driver's step sequence.
        } else if workers == 1 {
            let mut out = Outbox::new(take_shard_set(&mut pool), partitioning);
            let mut agg = G::default();
            for &v in &active {
                // SAFETY: single worker — trivially disjoint.
                let state = unsafe { states.get(v as usize) };
                let inbox = unsafe { inboxes.get(v as usize) };
                let mut ctx =
                    VertexCtx { vid: v, graph, state, msgs: inbox.as_slice(), out: &mut out };
                compute(&mut ctx, &mut agg);
                inbox.clear();
            }
            results.push((out, agg));
        } else {
            let compute_ref = &compute;
            let active_ref = &active;
            let states_ref = &states;
            let inboxes_ref = &inboxes;
            let worker_bufs: Vec<Vec<Vec<(VertexId, M)>>> =
                (0..workers).map(|_| take_shard_set(&mut pool)).collect();
            results = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for (w, bufs) in worker_bufs.into_iter().enumerate() {
                    let lo = (w * chunk).min(active_ref.len());
                    let hi = ((w + 1) * chunk).min(active_ref.len());
                    handles.push(scope.spawn(move || {
                        let mut out = Outbox::new(bufs, partitioning);
                        let mut agg = G::default();
                        for &v in &active_ref[lo..hi] {
                            // SAFETY: the active list is deduplicated and
                            // workers take disjoint chunks, so each vertex's
                            // state and inbox is touched by one worker only.
                            let state = unsafe { states_ref.get(v as usize) };
                            let inbox = unsafe { inboxes_ref.get(v as usize) };
                            let mut ctx = VertexCtx {
                                vid: v,
                                graph,
                                state,
                                msgs: inbox.as_slice(),
                                out: &mut out,
                            };
                            compute_ref(&mut ctx, &mut agg);
                            inbox.clear();
                        }
                        (out, agg)
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
        }

        // --- merge aggregates and counters ----------------------------------
        let mut step = StepStats { active_vertices: active.len() as u64, ..Default::default() };
        let mut global = G::default();
        let mut worker_shards: Vec<Vec<Vec<(VertexId, M)>>> = Vec::with_capacity(results.len());
        let mut step_labels: Vec<(LabelId, LabelTraffic)> = Vec::new();
        for (out, agg) in results {
            step.messages += out.messages;
            step.message_bytes += out.bytes;
            step.network_messages += out.network_messages;
            step.network_bytes += out.network_bytes;
            for (label, t) in &out.per_label {
                match step_labels.iter_mut().find(|(l, _)| l == label) {
                    Some((_, acc)) => acc.add(t),
                    None => step_labels.push((*label, *t)),
                }
            }
            global.merge(agg);
            worker_shards.push(out.shards);
        }

        // --- delivery phase ---------------------------------------------------
        // Shard `s` owns inboxes of vertices with `v % shards == s`; shards
        // run in parallel, and within a shard worker outboxes are drained in
        // worker order, which preserves global source order. Messages are
        // *moved* into inboxes (the outbox held the only copy), and drained
        // shard buffers return to the pool — in shard-major, worker-minor
        // order, independent of which delivery thread finished first.
        let mut newly_active: Vec<Vec<VertexId>> = Vec::new();
        if step.messages > 0 {
            let inboxes_ref = &inboxes;
            // Transpose to per-shard groups, preserving worker order within
            // each group (the determinism invariant above).
            let groups: Vec<Vec<Vec<(VertexId, M)>>> = (0..shards)
                .map(|s| worker_shards.iter_mut().map(|ws| std::mem::take(&mut ws[s])).collect())
                .collect();
            let delivered: Vec<(Vec<VertexId>, Vec<Vec<(VertexId, M)>>)> =
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(shards);
                    for mut group in groups {
                        handles.push(scope.spawn(move || {
                            let mut woken = Vec::new();
                            for buf in &mut group {
                                for (v, m) in buf.drain(..) {
                                    // SAFETY: every message in this group
                                    // targets v % shards == s by construction
                                    // of Outbox::send, so only this shard's
                                    // worker touches inboxes[v].
                                    let inbox = unsafe { inboxes_ref.get(v as usize) };
                                    if inbox.is_empty() {
                                        woken.push(v);
                                    }
                                    inbox.push(m);
                                }
                            }
                            (woken, group)
                        }));
                    }
                    handles.into_iter().map(|h| h.join().expect("delivery panicked")).collect()
                });
            for (woken, group) in delivered {
                newly_active.push(woken);
                pool.extend(group);
            }
        } else {
            // No messages this step: the shard buffers are already empty;
            // recycle them (and their capacity) directly.
            for mut ws in worker_shards {
                pool.append(&mut ws);
            }
        }
        self.shard_pool = pool;

        let mut next: Vec<VertexId> = newly_active.into_iter().flatten().collect();
        next.sort_unstable();
        self.active = next;
        self.stats.record_step(step, &step_labels);
        (step, global)
    }

    /// Run one superstep without a global aggregator.
    pub fn superstep_simple<F>(&mut self, compute: F) -> StepStats
    where
        F: for<'x, 'y> Fn(&mut VertexCtx<'x, 'y, V, M>) + Sync,
    {
        self.superstep::<(), _>(|ctx, _| compute(ctx)).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// A line graph 0 - 1 - 2 - ... - (n-1) with one edge label.
    fn line(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let vl = b.vertex_label("v");
        let el = b.edge_label("next");
        for _ in 0..n {
            b.add_vertex(vl);
        }
        for i in 0..n - 1 {
            b.add_undirected_edge(i as VertexId, (i + 1) as VertexId, el);
        }
        b.finish()
    }

    #[test]
    fn wave_propagates_and_halts() {
        let g = line(5);
        // Each vertex stores the wave value; vertex 0 starts a wave that
        // increments as it travels right.
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::sequential(), |_| 0);
        comp.activate([0]);
        let mut step = 0u64;
        while !comp.halted() {
            comp.superstep_simple(|ctx| {
                let incoming = ctx.messages().iter().copied().max().unwrap_or(0);
                *ctx.state = incoming;
                let next = ctx.id() + 1;
                if (next as usize) < ctx.graph().vertex_count() {
                    ctx.send(next, incoming + 1);
                }
            });
            step += 1;
            assert!(step < 20, "did not halt");
        }
        let (states, stats) = comp.finish();
        assert_eq!(states, vec![0, 1, 2, 3, 4]);
        // Vertices 0..4 each send one forwarding message; vertex 4 has no
        // right neighbour. 5 supersteps total (the last sends nothing).
        assert_eq!(stats.total_messages(), 4);
        assert_eq!(stats.supersteps, 5);
    }

    #[test]
    fn results_independent_of_thread_count() {
        let g = line(64);
        let run = |threads: usize| {
            let mut comp: Computation<'_, u64, u64> =
                Computation::new(&g, EngineConfig::with_threads(threads), |_| 0);
            comp.activate(g.vertices());
            // Superstep 1: everyone sends its id to all neighbours.
            // Superstep 2: everyone sums what it received.
            comp.superstep_simple(|ctx| {
                let targets: Vec<VertexId> = ctx.edges().iter().map(|e| e.target).collect();
                for t in targets {
                    let id = ctx.id() as u64;
                    ctx.send(t, id);
                }
            });
            comp.superstep_simple(|ctx| {
                *ctx.state = ctx.messages().iter().sum();
            });
            let (states, stats) = comp.finish();
            (states, stats.total_messages())
        };
        let (s1, m1) = run(1);
        let (s4, m4) = run(4);
        let (s7, m7) = run(7);
        assert_eq!(s1, s4);
        assert_eq!(s1, s7);
        assert_eq!(m1, m4);
        assert_eq!(m1, m7);
    }

    #[test]
    fn aggregator_merges_across_workers() {
        #[derive(Default)]
        struct Sum(u64);
        impl Aggregator for Sum {
            fn merge(&mut self, other: Self) {
                self.0 += other.0;
            }
        }
        let g = line(100);
        let mut comp: Computation<'_, (), u64> =
            Computation::new(&g, EngineConfig::with_threads(4), |_| ());
        comp.activate(g.vertices());
        let (_, total) = comp.superstep(|ctx, agg: &mut Sum| {
            agg.0 += ctx.id() as u64;
        });
        assert_eq!(total.0, (0..100).sum::<u64>());
    }

    #[test]
    fn network_accounting_counts_only_crossings() {
        let g = line(4);
        let mut comp: Computation<'_, (), u64> =
            Computation::new(&g, EngineConfig::sequential(), |_| ());
        // machines: [0,0,1,1] — only the 1-2 edge crosses.
        comp.set_partitioning(Partitioning::from_assignment(vec![0, 0, 1, 1], 2));
        comp.activate(g.vertices());
        let stats = comp.superstep_simple(|ctx| {
            let targets: Vec<VertexId> = ctx.edges().iter().map(|e| e.target).collect();
            for t in targets {
                ctx.send(t, 7);
            }
        });
        assert_eq!(stats.messages, 6); // 2*(n-1) directed sends
        assert_eq!(stats.network_messages, 2); // 1→2 and 2→1
        assert_eq!(stats.network_bytes, 2 * std::mem::size_of::<u64>() as u64);
    }

    #[test]
    fn per_label_traffic_sums_to_totals() {
        let g = line(6);
        let label = g.edge_label_id("next").unwrap();
        let mut comp: Computation<'_, (), u64> =
            Computation::new(&g, EngineConfig::with_threads(3), |_| ());
        comp.set_partitioning(Partitioning::from_assignment(vec![0, 0, 1, 1, 0, 1], 2));
        comp.activate(g.vertices());
        comp.superstep_simple(|ctx| {
            // Labeled sends along real edges, plus one unlabeled send.
            let targets: Vec<VertexId> = ctx.edges().iter().map(|e| e.target).collect();
            for t in targets {
                ctx.send_along(label, t, 1);
            }
            ctx.send(0, 2);
        });
        let stats = comp.stats();
        let labeled = stats.label_traffic(label);
        let unlabeled = stats.label_traffic(crate::LabelId::NONE);
        assert_eq!(labeled.messages, 10); // 2*(n-1) directed sends
        assert_eq!(unlabeled.messages, 6);
        assert_eq!(labeled.messages + unlabeled.messages, stats.total_messages());
        assert_eq!(labeled.bytes + unlabeled.bytes, stats.total_bytes());
        assert_eq!(
            labeled.network_messages + unlabeled.network_messages,
            stats.totals.network_messages
        );
        assert_eq!(labeled.network_bytes + unlabeled.network_bytes, stats.totals.network_bytes);
        assert!(labeled.network_messages > 0, "the 1-2 and 3-4 crossings are labeled");
    }

    #[test]
    fn inject_seeds_messages_without_counting() {
        let g = line(3);
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::sequential(), |_| 0);
        comp.inject(1, 42);
        assert_eq!(comp.active(), &[1]);
        comp.superstep_simple(|ctx| {
            *ctx.state = ctx.messages()[0];
        });
        assert_eq!(*comp.state(1), 42);
        assert_eq!(comp.stats().total_messages(), 0);
    }

    #[test]
    fn inject_duplicates_normalize_before_compute() {
        let g = line(4);
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::with_threads(4), |_| 0);
        // Repeated and unsorted injections: the active list must come out
        // sorted and deduplicated (a duplicate would hand one vertex to two
        // workers), with every message delivered once.
        comp.inject(2, 30);
        comp.inject(2, 12);
        comp.inject_all([(0, 5), (1, 1), (1, 2)]);
        assert_eq!(comp.active(), &[0, 1, 2]);
        comp.superstep_simple(|ctx| {
            *ctx.state = ctx.messages().iter().sum();
        });
        assert_eq!(comp.states(), &[5, 3, 42, 0]);
        assert_eq!(comp.stats().total_messages(), 0);
    }

    #[test]
    fn shard_buffers_are_recycled_across_supersteps() {
        let g = line(32);
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::with_threads(4), |_| 0);
        let ping = |comp: &mut Computation<'_, u64, u64>| {
            comp.activate(g.vertices());
            comp.superstep_simple(|ctx| {
                let targets: Vec<VertexId> = ctx.edges().iter().map(|e| e.target).collect();
                for t in targets {
                    ctx.send(t, 1);
                }
            });
        };
        ping(&mut comp);
        let pooled = comp.shard_pool.len();
        assert!(pooled > 0, "delivery must return shard buffers to the pool");
        assert!(comp.shard_pool.iter().all(Vec::is_empty), "pooled buffers must be drained");
        let capacity: usize = comp.shard_pool.iter().map(Vec::capacity).sum();
        assert!(capacity > 0, "recycled buffers keep their capacity");
        // Steady state: the next superstep takes and returns the same set.
        ping(&mut comp);
        assert_eq!(comp.shard_pool.len(), pooled);
    }

    #[test]
    fn empty_superstep_is_recorded() {
        let g = line(2);
        let mut comp: Computation<'_, (), u64> =
            Computation::new(&g, EngineConfig::sequential(), |_| ());
        let stats = comp.superstep_simple(|_| {});
        assert_eq!(stats.active_vertices, 0);
        assert_eq!(comp.stats().supersteps, 1);
    }
}
