//! The superstep execution engine.
//!
//! A [`Computation`] owns per-vertex user state and message inboxes over an
//! immutable [`Graph`]. Each call to [`Computation::superstep`] performs one
//! BSP superstep:
//!
//! 1. **compute** — the user closure runs for every *active* vertex, in
//!    parallel over worker threads. It sees the vertex's state, its incoming
//!    messages from the previous superstep, and its out-edges; it may send
//!    messages to any vertex id it knows (its neighbours, or ids learned from
//!    messages — the Pregel rule).
//! 2. **barrier + delivery** — all outgoing messages are delivered into the
//!    target inboxes.
//! 3. **activation** — exactly the vertices that received at least one
//!    message are active in the next superstep.
//!
//! Parallelism layout: the sorted active list is split into contiguous chunks,
//! one per worker. Each worker writes only to the states/inboxes of its own
//! vertices during compute, and delivery is sharded by `target % shards`, so
//! workers always touch disjoint slots; the `SharedMut` wrapper below
//! documents and encapsulates that invariant. Message delivery concatenates
//! worker outboxes in worker order, which equals source-vertex order — so
//! inbox contents are deterministic and independent of the thread count.
//!
//! Buffer reuse: outbox shard buffers are recycled through a pool on the
//! [`Computation`] instead of being reallocated every superstep, delivery
//! *moves* messages into inboxes (no per-message clone), and inbox `Vec`s
//! live for the whole computation (cleared, not dropped, after compute) —
//! so steady-state supersteps run allocation-free on the message path. The
//! pool is refilled in shard-major, worker-minor order after each delivery,
//! which keeps the whole cycle deterministic. Recycled buffers whose
//! capacity dwarfs their last use are shrunk on the way back, so the
//! working set decays after a peak superstep instead of tracking it
//! forever.
//!
//! Threading: parallel phases run on a persistent [`WorkerPool`] (attached
//! via [`Computation::set_worker_pool`] or created lazily) — workers park on
//! a condvar between phases instead of being respawned per superstep. A
//! phase only fans out when its work item count reaches
//! [`EngineConfig::parallel_threshold`]; below it the phase runs on the
//! calling thread, so short supersteps pay no synchronization tax at all.

use crate::fault::{FaultError, FaultInjector};
use crate::graph::{Edge, Graph, VertexId};
use crate::interner::LabelId;
use crate::partition::Partitioning;
use crate::pool::WorkerPool;
use crate::program::{Aggregator, Message};
use crate::stats::{LabelTraffic, RunStats, StepStats};
use std::sync::Arc;

/// Default for [`EngineConfig::parallel_threshold`]: phases with fewer work
/// items than this run sequentially. Chosen so the per-phase pool hand-off
/// (a mutex + condvar round-trip, ~microseconds) stays well under 1% of the
/// phase's own work.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 2048;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads (also the number of delivery shards).
    pub threads: usize,
    /// Minimum work items — active vertices for the compute phase, pending
    /// messages for the delivery phase — before the phase fans out to the
    /// worker pool. Below the threshold the phase runs on the calling
    /// thread (the shard layout, and therefore the result, is unchanged).
    /// `0` forces every phase parallel; `usize::MAX` never fans out.
    pub parallel_threshold: usize,
}

impl Default for EngineConfig {
    /// Sizes `threads` from `std::thread::available_parallelism`, so the
    /// default **varies across hosts** (and in CI). Benchmarks, tests, and
    /// anything that must be reproducible should pin an explicit count via
    /// [`EngineConfig::with_threads`].
    fn default() -> EngineConfig {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineConfig { threads: threads.min(16), parallel_threshold: DEFAULT_PARALLEL_THRESHOLD }
    }
}

impl EngineConfig {
    /// Single-threaded configuration (useful for deterministic debugging).
    pub fn sequential() -> EngineConfig {
        EngineConfig { threads: 1, parallel_threshold: DEFAULT_PARALLEL_THRESHOLD }
    }

    /// Configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> EngineConfig {
        EngineConfig { threads: threads.max(1), parallel_threshold: DEFAULT_PARALLEL_THRESHOLD }
    }

    /// Override the sequential-fallback threshold (see
    /// [`EngineConfig::parallel_threshold`]).
    pub fn with_parallel_threshold(mut self, threshold: usize) -> EngineConfig {
        self.parallel_threshold = threshold;
        self
    }
}

/// Per-vertex view handed to the compute closure for one superstep.
pub struct VertexCtx<'a, 'p, V, M: Message> {
    vid: VertexId,
    graph: &'a Graph,
    /// The vertex's mutable user state.
    pub state: &'a mut V,
    msgs: &'a [M],
    out: &'a mut Outbox<'p, M>,
}

impl<'a, 'p, V, M: Message> VertexCtx<'a, 'p, V, M> {
    /// This vertex's id.
    #[inline]
    pub fn id(&self) -> VertexId {
        self.vid
    }

    /// This vertex's label.
    #[inline]
    pub fn label(&self) -> LabelId {
        self.graph.label_of(self.vid)
    }

    /// Messages received from the previous superstep.
    #[inline]
    pub fn messages(&self) -> &'a [M] {
        self.msgs
    }

    /// All out-edges.
    #[inline]
    pub fn edges(&self) -> &'a [Edge] {
        self.graph.out_edges(self.vid)
    }

    /// Out-edges with a specific label.
    #[inline]
    pub fn edges_with(&self, label: LabelId) -> &'a [Edge] {
        self.graph.out_edges_with_label(self.vid, label)
    }

    /// Out-degree restricted to a label.
    #[inline]
    pub fn degree_with(&self, label: LabelId) -> usize {
        self.graph.degree_with_label(self.vid, label)
    }

    /// The underlying graph (read-only).
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Send a message to any vertex. Delivered at the next superstep. The
    /// traffic is attributed to the [`LabelId::NONE`] bucket of the
    /// per-label statistics; prefer [`VertexCtx::send_along`] when the send
    /// travels a known edge label.
    #[inline]
    pub fn send(&mut self, target: VertexId, msg: M) {
        self.out.send(self.vid, target, LabelId::NONE, msg);
    }

    /// Send a message along an edge with the given label: identical delivery
    /// semantics to [`VertexCtx::send`], but the traffic is attributed to
    /// `label` in the run's per-label statistics (feeding workload-aware
    /// partitioning's `TrafficProfile`).
    #[inline]
    pub fn send_along(&mut self, label: LabelId, target: VertexId, msg: M) {
        self.out.send(self.vid, target, label, msg);
    }
}

/// Per-worker outgoing message buffer, sharded by target for lock-free
/// delivery.
pub struct Outbox<'p, M: Message> {
    shards: Vec<Vec<(VertexId, M)>>,
    partitioning: Option<&'p Partitioning>,
    messages: u64,
    bytes: u64,
    network_messages: u64,
    network_bytes: u64,
    /// Per-label traffic of this worker's sends. A superstep touches only a
    /// handful of labels (TAG traversals: exactly one), so a linear-scan vec
    /// beats a map on the send hot path.
    per_label: Vec<(LabelId, LabelTraffic)>,
}

impl<'p, M: Message> Outbox<'p, M> {
    /// Build over recycled (empty) shard buffers from the computation's pool.
    fn new(
        shards: Vec<Vec<(VertexId, M)>>,
        partitioning: Option<&'p Partitioning>,
    ) -> Outbox<'p, M> {
        debug_assert!(shards.iter().all(Vec::is_empty), "pooled shard buffer not drained");
        Outbox {
            shards,
            partitioning,
            messages: 0,
            bytes: 0,
            network_messages: 0,
            network_bytes: 0,
            per_label: Vec::new(),
        }
    }

    #[inline]
    fn send(&mut self, source: VertexId, target: VertexId, label: LabelId, msg: M) {
        let size = msg.byte_size() as u64;
        self.messages += 1;
        self.bytes += size;
        let crossing = self.partitioning.is_some_and(|p| p.crosses(source, target));
        if crossing {
            self.network_messages += 1;
            self.network_bytes += size;
        }
        let entry = match self.per_label.iter_mut().find(|(l, _)| *l == label) {
            Some((_, t)) => t,
            None => {
                self.per_label.push((label, LabelTraffic::default()));
                &mut self.per_label.last_mut().expect("just pushed").1
            }
        };
        entry.messages += 1;
        entry.bytes += size;
        if crossing {
            entry.network_messages += 1;
            entry.network_bytes += size;
        }
        let shard = target as usize % self.shards.len();
        self.shards[shard].push((target, msg));
    }
}

/// Pointer wrapper allowing disjoint `&mut` access to a slice from several
/// workers.
///
/// # Safety invariant
/// Every index is written by at most one worker per phase: compute workers own
/// the vertices of their chunk of the (deduplicated) active list; delivery
/// workers own the inboxes of `target % shards == shard`.
///
/// In debug builds the invariant is also *checked*: every [`SharedMut::get`]
/// records which thread claimed the index, and a second thread claiming the
/// same index panics instead of racing. Phases re-partition ownership behind
/// the pool's epoch barrier, so the engine calls [`SharedMut::reset_claims`]
/// at the phase boundary.
struct SharedMut<T> {
    ptr: *mut T,
    /// Debug-build shadow of the invariant: index -> first claiming thread
    /// since the last phase boundary.
    #[cfg(debug_assertions)]
    claims: std::sync::Mutex<std::collections::HashMap<usize, std::thread::ThreadId>>,
}

// SAFETY: `SharedMut` hands out `&mut T` across threads, which is sound only
// under the type's disjoint-index invariant; given that, it is equivalent to
// partitioning one `&mut [T]` into per-worker sub-slices, so `T: Send`
// suffices for both bounds.
unsafe impl<T: Send> Send for SharedMut<T> {}
// SAFETY: as above — shared handles never produce aliasing `&mut T` because
// each index belongs to exactly one worker per phase.
unsafe impl<T: Send> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    fn new(ptr: *mut T) -> SharedMut<T> {
        SharedMut {
            ptr,
            #[cfg(debug_assertions)]
            claims: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// # Safety
    /// Caller must uphold the disjoint-index invariant described on the type.
    //
    // `&mut` out of `&self` is the point of this type (clippy::mut_from_ref):
    // exclusivity is provided by the disjoint-index protocol — enforced
    // dynamically in debug builds by `record_claim` — not the borrow checker.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    unsafe fn get(&self, index: usize) -> &mut T {
        #[cfg(debug_assertions)]
        self.record_claim(index);
        // SAFETY: forwarded to the caller, who owns `index` this phase; the
        // pointee outlives the wrapper (it borrows the engine's Vec).
        unsafe { &mut *self.ptr.add(index) }
    }

    /// Debug-build disjointness check: the first claim owns the index until
    /// the next [`SharedMut::reset_claims`]; a claim from any other thread is
    /// exactly the data race the `# Safety` contract forbids, caught before
    /// the aliasing `&mut` is created.
    #[cfg(debug_assertions)]
    fn record_claim(&self, index: usize) {
        let me = std::thread::current().id();
        let mut claims = self.claims.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(owner) = claims.insert(index, me) {
            assert!(
                owner == me,
                "SharedMut disjointness violated: index {index} claimed by \
                 {owner:?} and {me:?} in the same phase"
            );
        }
    }

    /// Forget recorded claims at a phase boundary (debug builds only). Sound
    /// because phases are separated by the pool's epoch barrier: no worker
    /// still holds a reference from the previous phase when ownership
    /// re-partitions.
    #[cfg(debug_assertions)]
    fn reset_claims(&self) {
        self.claims.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// One buffer per delivery shard, as handed to a single compute worker's
/// outbox (shard `s` collects the messages this worker sends to targets with
/// `target % shards == s`).
type ShardSet<M> = Vec<Vec<(VertexId, M)>>;

/// Shrink a recycled (drained) shard buffer whose capacity dwarfs its last
/// use, so the buffer pool's memory high-water decays after a peak
/// superstep instead of tracking it for the computation's lifetime. Keeps
/// 2x the last use (hysteresis: only acts past 4x, so a stable workload
/// never thrashes between shrink and regrow) and never shrinks below a
/// small floor.
fn shrink_recycled<T>(buf: &mut Vec<T>, used: usize) {
    const FLOOR: usize = 32;
    debug_assert!(buf.is_empty(), "shrink only applies to drained buffers");
    let keep = used.max(FLOOR);
    if buf.capacity() > 4 * keep {
        buf.shrink_to(2 * keep);
    }
}

/// A superstep checkpoint: everything needed to roll the computation back
/// to the start of superstep `superstep` — per-vertex state, the pending
/// inboxes (messages delivered but not yet consumed), the active set, and
/// the statistics as of that point (so a replay re-records identically).
struct Snapshot<V, M: Message> {
    superstep: u64,
    states: Vec<V>,
    inboxes: Vec<Vec<M>>,
    active: Vec<VertexId>,
    stats: RunStats,
}

/// Fault-tolerance runtime attached via [`Computation::set_fault_injector`]:
/// the armed injector, the last checkpoint, and the driver hand-off fields
/// ([`Computation::take_replay`], [`Computation::take_fault_error`]).
struct FaultRuntime<V, M: Message> {
    injector: Arc<FaultInjector>,
    /// `V::clone`, captured where `V: Clone` is known (the
    /// `set_fault_injector` impl block) so the `V: Send` engine impl can
    /// snapshot without carrying the bound everywhere.
    clone_state: fn(&V) -> V,
    /// Checkpoint size of one vertex's state in bytes. Defaults to
    /// `size_of::<V>()`; hosts with heap-holding state install a real
    /// sizer via [`Computation::set_state_sizer`].
    sizer: Box<dyn Fn(&V) -> u64 + Send + Sync>,
    checkpoint: Option<Snapshot<V, M>>,
    /// Set when a rollback landed before the current driver step: the
    /// driver must resume issuing supersteps from this index.
    pending_replay: Option<u64>,
    /// Set when an injected fault aborted the execution (no checkpoint, or
    /// a transient delivery failure): the driver must surface it.
    error: Option<FaultError>,
}

/// A running vertex-centric computation: graph + states + inboxes + active
/// set + statistics.
pub struct Computation<'g, V, M: Message> {
    graph: &'g Graph,
    config: EngineConfig,
    states: Vec<V>,
    inboxes: Vec<Vec<M>>,
    active: Vec<VertexId>,
    /// True when `active` holds unsorted/duplicated host injections;
    /// normalized lazily at the next superstep (keeps `inject` O(1)).
    active_dirty: bool,
    stats: RunStats,
    partitioning: Option<Arc<Partitioning>>,
    /// Recycled outbox shard buffers (always drained): each superstep takes
    /// `workers x shards` buffers here and returns them after delivery, so
    /// steady-state supersteps reuse capacity instead of reallocating.
    shard_pool: Vec<Vec<(VertexId, M)>>,
    /// Persistent worker runtime for parallel phases. Shared when the host
    /// attached one ([`Computation::set_worker_pool`]); otherwise created
    /// lazily — and its OS threads spawn lazier still, on the first phase
    /// that actually fans out.
    workers: Option<Arc<WorkerPool>>,
    /// Fault-tolerance runtime (`None` = no injection, no checkpoints —
    /// the fault-free path stays byte-identical).
    faults: Option<FaultRuntime<V, M>>,
}

impl<'g, V: Send, M: Message> Computation<'g, V, M> {
    /// Create a computation with per-vertex state produced by `init`.
    pub fn new(graph: &'g Graph, config: EngineConfig, init: impl Fn(VertexId) -> V) -> Self {
        let n = graph.vertex_count();
        Computation {
            graph,
            config,
            states: (0..n as VertexId).map(init).collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            active: Vec::new(),
            active_dirty: false,
            stats: RunStats::default(),
            partitioning: None,
            shard_pool: Vec::new(),
            workers: None,
            faults: None,
        }
    }

    /// Attach a shared persistent [`WorkerPool`] for parallel phases.
    /// Hosts that run many computations (a session re-executing prepared
    /// queries) share one pool so every run reuses the same parked worker
    /// threads. Without this, the computation lazily creates a private pool
    /// on its first parallel superstep. The pool must have at least
    /// [`EngineConfig::threads`] worker slots.
    pub fn set_worker_pool(&mut self, pool: Arc<WorkerPool>) {
        assert!(
            pool.threads() >= self.config.threads,
            "pool has {} worker slots but the engine is configured for {} threads",
            pool.threads(),
            self.config.threads
        );
        self.workers = Some(pool);
    }

    /// The attached worker pool, if any parallel superstep has run (or a
    /// pool was attached explicitly).
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.workers.as_ref()
    }

    /// Attach a machine partitioning: subsequent supersteps will count
    /// cross-machine traffic in their [`StepStats`].
    pub fn set_partitioning(&mut self, p: Partitioning) {
        self.partitioning = Some(Arc::new(p));
    }

    /// [`Computation::set_partitioning`] without copying: callers that hold
    /// a placement across many computations (a session serving a workload)
    /// share one allocation instead of cloning the per-vertex assignment
    /// into every run.
    pub fn set_partitioning_shared(&mut self, p: Arc<Partitioning>) {
        self.partitioning = Some(p);
    }

    /// The graph being computed over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Replace the active set (deduplicated and sorted).
    pub fn activate(&mut self, vertices: impl IntoIterator<Item = VertexId>) {
        self.active = vertices.into_iter().collect();
        self.active.sort_unstable();
        self.active.dedup();
        self.active_dirty = false;
    }

    /// Activate all vertices with the given vertex label.
    pub fn activate_label(&mut self, label: LabelId) {
        self.activate(self.graph.vertices_with_label(label).to_vec());
    }

    /// Inject a message into a vertex's inbox and activate it (host-side
    /// seeding; not counted as engine communication). O(1): duplicates are
    /// deduplicated and the list re-sorted lazily at the next superstep, so
    /// seeding n vertices is O(n log n) total, not O(n²).
    pub fn inject(&mut self, target: VertexId, msg: M) {
        self.inboxes[target as usize].push(msg);
        self.active.push(target);
        self.active_dirty = true;
    }

    /// Batch [`Computation::inject`]: seed many `(target, message)` pairs
    /// with a single sort + dedup of the active list.
    pub fn inject_all(&mut self, msgs: impl IntoIterator<Item = (VertexId, M)>) {
        for (target, msg) in msgs {
            self.inboxes[target as usize].push(msg);
            self.active.push(target);
        }
        self.active_dirty = true;
        self.normalize_active();
    }

    /// Sort + dedup the active list if host injections left it dirty.
    fn normalize_active(&mut self) {
        if self.active_dirty {
            self.active.sort_unstable();
            self.active.dedup();
            self.active_dirty = false;
        }
    }

    /// Currently active vertices (sorted and deduplicated, except between
    /// consecutive [`Computation::inject`] calls — normalized again at the
    /// next superstep or [`Computation::inject_all`]).
    pub fn active(&self) -> &[VertexId] {
        &self.active
    }

    /// True iff no vertex is active (the computation has converged).
    pub fn halted(&self) -> bool {
        self.active.is_empty()
    }

    /// Read a vertex's state.
    pub fn state(&self, v: VertexId) -> &V {
        &self.states[v as usize]
    }

    /// Mutate a vertex's state from the host (between supersteps).
    pub fn state_mut(&mut self, v: VertexId) -> &mut V {
        &mut self.states[v as usize]
    }

    /// All vertex states, indexed by vertex id.
    pub fn states(&self) -> &[V] {
        &self.states
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Consume the computation, returning states and statistics.
    pub fn finish(self) -> (Vec<V>, RunStats) {
        (self.states, self.stats)
    }

    /// Approximate inbox working-set size in bytes (user states excluded —
    /// callers size those with knowledge of `V`).
    pub fn inbox_bytes(&self) -> usize {
        self.inboxes
            .iter()
            .map(|b| {
                b.iter().map(|m| m.byte_size()).sum::<usize>()
                    + b.capacity() * std::mem::size_of::<M>()
            })
            .sum()
    }

    /// If a replay is pending (a crash rolled the computation back past the
    /// driver's current step), take the superstep index the driver must
    /// resume from. Engine state (vertex state, inboxes, active set, stats)
    /// is already rewound; the driver re-issues its supersteps from the
    /// returned index — determinism of the engine makes the replay produce
    /// bit-identical results.
    pub fn take_replay(&mut self) -> Option<u64> {
        self.faults.as_mut().and_then(|rt| rt.pending_replay.take())
    }

    /// If an injected fault aborted execution (machine lost with no
    /// checkpoint, or a transient delivery failure), take the error. The
    /// superstep that hit it was skipped (nothing recorded); the driver
    /// surfaces the error and may retry the whole execution — the injector
    /// fires each fault at most once, so a rerun proceeds past it.
    pub fn take_fault_error(&mut self) -> Option<FaultError> {
        self.faults.as_mut().and_then(|rt| rt.error.take())
    }

    /// The armed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref().map(|rt| &rt.injector)
    }

    /// Force a checkpoint right now (no-op without an injector or with
    /// checkpointing disabled). Drivers call this immediately before a
    /// superstep whose effect escapes the engine the moment it returns — an
    /// aggregator read, a barrier — so a crash there is always recovered
    /// *within* the superstep call (the checkpoint is at the current index)
    /// and never defers a replay past the escaped value.
    pub fn checkpoint_now(&mut self) {
        let armed = self.faults.as_ref().is_some_and(|rt| rt.injector.checkpoint_every() > 0);
        if armed {
            self.normalize_active();
            self.take_checkpoint();
        }
    }

    /// Snapshot the full computation state and charge the checkpoint cost:
    /// the active list (8 bytes per id) plus every vertex's state (via the
    /// sizer) and pending inbox bytes. Charged to the itemized
    /// `stats.faults` — checkpoints model stable-storage writes, not
    /// network traffic.
    fn take_checkpoint(&mut self) {
        debug_assert!(!self.active_dirty, "checkpoint of a dirty active list");
        let Some(rt) = self.faults.as_mut() else { return };
        let mut bytes = self.active.len() as u64 * 8;
        for (v, state) in self.states.iter().enumerate() {
            bytes += (rt.sizer)(state);
            bytes += self.inboxes[v].iter().map(|m| m.byte_size() as u64).sum::<u64>();
        }
        rt.checkpoint = Some(Snapshot {
            superstep: self.stats.supersteps,
            states: self.states.iter().map(rt.clone_state).collect(),
            inboxes: self.inboxes.clone(),
            active: self.active.clone(),
            stats: self.stats.clone(),
        });
        self.stats.faults.checkpoint_bytes += bytes;
        self.stats.faults.checkpoints += 1;
    }

    /// Roll back to the last checkpoint after machine `machine` crashed:
    /// restore state/inboxes/active, rewind the statistics to the snapshot
    /// (so the replayed supersteps re-record identically), and charge the
    /// recovery — re-shipping the crashed machine's partition share of the
    /// checkpoint (the survivors still hold theirs; without a partitioning
    /// the whole snapshot is charged) plus the rolled-back rounds.
    fn restore(&mut self, machine: u32) {
        let crashed_at = self.stats.supersteps;
        // Live fault counters survive the rewind: checkpoints taken and
        // recoveries performed are real costs even though the replayed
        // supersteps' traffic is recorded only once.
        let live = self.stats.faults;
        let rt = self.faults.as_mut().expect("restore requires a fault runtime");
        let snap = rt.checkpoint.as_ref().expect("restore requires a checkpoint");
        let mut vertices = 0u64;
        let mut bytes = 0u64;
        for (v, state) in snap.states.iter().enumerate() {
            let lost = self
                .partitioning
                .as_deref()
                .is_none_or(|p| p.machine_of(v as VertexId) == machine as u16);
            if !lost {
                continue;
            }
            vertices += 1;
            bytes += (rt.sizer)(state);
            bytes += snap.inboxes[v].iter().map(|m| m.byte_size() as u64).sum::<u64>();
        }
        self.states = snap.states.iter().map(rt.clone_state).collect();
        self.inboxes = snap.inboxes.clone();
        self.active = snap.active.clone();
        self.active_dirty = false;
        self.stats = snap.stats.clone();
        self.stats.faults = live;
        self.stats.faults.recovery_bytes += bytes;
        self.stats.faults.recovered_vertices += vertices;
        self.stats.faults.recovered_rounds += crashed_at - snap.superstep;
        self.stats.faults.crashes_recovered += 1;
    }

    /// Fault-injection gate at the top of every superstep. Returns `true`
    /// when the superstep should run. `false` means the superstep is
    /// skipped without recording anything: either a rollback landed before
    /// the driver's current step (`take_replay`) or the execution aborted
    /// on an unabsorbable fault (`take_fault_error`).
    fn fault_hook(&mut self) -> bool {
        if self.faults.is_none() {
            return true;
        }
        let k = self.stats.supersteps;
        let rt = self.faults.as_ref().expect("checked above");
        let every = rt.injector.checkpoint_every();
        let due = every > 0 && rt.checkpoint.as_ref().is_none_or(|c| k - c.superstep >= every);
        if due {
            self.take_checkpoint();
        }
        let injector = Arc::clone(&self.faults.as_ref().expect("checked above").injector);
        if injector.claim_panic(k) {
            panic!("injected compute fault at superstep {k}");
        }
        if let Some((from, to)) = injector.claim_drop(k) {
            let rt = self.faults.as_mut().expect("checked above");
            rt.error = Some(FaultError::DeliveryFailed { from, to, superstep: k });
            return false;
        }
        if let Some(machine) = injector.claim_crash(k) {
            let rt = self.faults.as_mut().expect("checked above");
            let Some(cp) = rt.checkpoint.as_ref().map(|c| c.superstep) else {
                rt.error = Some(FaultError::MachineLost { machine, superstep: k });
                return false;
            };
            self.restore(machine);
            if cp == k {
                // The checkpoint is at this very superstep (the restore was
                // a data no-op charged as recovery): run it now.
                return true;
            }
            // Rolled back past earlier supersteps: hand the replay index to
            // the driver and skip this call.
            self.faults.as_mut().expect("checked above").pending_replay = Some(cp);
            return false;
        }
        true
    }

    /// Run one superstep with a global aggregator.
    ///
    /// `compute` runs once per active vertex and may fold into its worker's
    /// local aggregate; worker aggregates are merged (in worker order) into
    /// the returned value. This is the engine-level realization of the
    /// paper's aggregation vertex: a value every vertex can contribute to,
    /// visible to the host (and passable back into the next superstep).
    ///
    /// With a fault injector attached, the superstep may instead be
    /// *skipped* (returning zeroed stats and a default aggregate, recording
    /// nothing): check [`Computation::take_replay`] and
    /// [`Computation::take_fault_error`] after each superstep.
    pub fn superstep<G, F>(&mut self, compute: F) -> (StepStats, G)
    where
        G: Aggregator,
        F: for<'x, 'y> Fn(&mut VertexCtx<'x, 'y, V, M>, &mut G) + Sync,
    {
        self.normalize_active();
        if !self.fault_hook() {
            return (StepStats::default(), G::default());
        }
        let shards = self.config.threads;
        let threshold = self.config.parallel_threshold;
        let active = std::mem::take(&mut self.active);
        // Adaptive sequential fallback: below the threshold the pool
        // hand-off would cost more than it buys, so the phase runs inline.
        // The shard layout is identical either way, so results (and the
        // documented delivery determinism) don't depend on this choice.
        let workers = if !active.is_empty() && active.len() >= threshold {
            self.config.threads.min(active.len())
        } else {
            1
        };
        let chunk = active.len().div_ceil(workers).max(1);
        // The persistent runtime. Creating the pool is free (OS threads
        // spawn on the first fan-out inside `WorkerPool::run`), so a
        // multi-thread config materializes one here even if every phase
        // ends up taking the sequential fallback.
        if self.config.threads > 1 && self.workers.is_none() {
            self.workers = Some(Arc::new(WorkerPool::new(self.config.threads)));
        }
        let worker_pool = self.workers.clone();

        // Recycled shard buffers: hand each worker `shards` drained buffers
        // from the pool (topped up with fresh ones on the first supersteps).
        let mut buf_pool = std::mem::take(&mut self.shard_pool);
        let take_shard_set = |buf_pool: &mut Vec<Vec<(VertexId, M)>>| {
            let start = buf_pool.len().saturating_sub(shards);
            let mut set: Vec<Vec<(VertexId, M)>> = buf_pool.drain(start..).collect();
            set.resize_with(shards, Vec::new);
            set
        };

        let states = SharedMut::new(self.states.as_mut_ptr());
        let inboxes = SharedMut::new(self.inboxes.as_mut_ptr());
        let graph = self.graph;
        let partitioning = self.partitioning.as_deref();

        // --- compute phase -------------------------------------------------
        let mut results: Vec<(Outbox<'_, M>, G)> = Vec::with_capacity(workers);
        if active.is_empty() {
            // Nothing to run, but the superstep is still recorded so the
            // count matches the driver's step sequence.
        } else if workers == 1 {
            let mut out = Outbox::new(take_shard_set(&mut buf_pool), partitioning);
            let mut agg = G::default();
            for &v in &active {
                // SAFETY: single worker — trivially disjoint.
                let state = unsafe { states.get(v as usize) };
                let inbox = unsafe { inboxes.get(v as usize) };
                let mut ctx =
                    VertexCtx { vid: v, graph, state, msgs: inbox.as_slice(), out: &mut out };
                compute(&mut ctx, &mut agg);
                inbox.clear();
            }
            results.push((out, agg));
        } else {
            let pool_ref =
                worker_pool.as_deref().expect("multi-thread config always carries a pool");
            let compute_ref = &compute;
            let active_ref = &active;
            let states_ref = &states;
            let inboxes_ref = &inboxes;
            // Per-worker input buffers and output slots, written through
            // `SharedMut` — the pool runs every worker index exactly once
            // per epoch, so index `w` is touched by one thread only.
            let mut worker_bufs: Vec<Option<ShardSet<M>>> =
                (0..workers).map(|_| Some(take_shard_set(&mut buf_pool))).collect();
            let mut slots: Vec<Option<(Outbox<'_, M>, G)>> = Vec::new();
            slots.resize_with(workers, || None);
            let bufs_ptr = SharedMut::new(worker_bufs.as_mut_ptr());
            let slots_ptr = SharedMut::new(slots.as_mut_ptr());
            pool_ref.run(workers, &|w| {
                // SAFETY: one epoch runs index `w` once — disjoint slots.
                let bufs = unsafe { bufs_ptr.get(w) }.take().expect("worker buffers set");
                let mut out = Outbox::new(bufs, partitioning);
                let mut agg = G::default();
                let lo = (w * chunk).min(active_ref.len());
                let hi = ((w + 1) * chunk).min(active_ref.len());
                for &v in &active_ref[lo..hi] {
                    // SAFETY: the active list is deduplicated and workers
                    // take disjoint chunks, so each vertex's state and
                    // inbox is touched by one worker only.
                    let state = unsafe { states_ref.get(v as usize) };
                    let inbox = unsafe { inboxes_ref.get(v as usize) };
                    let mut ctx =
                        VertexCtx { vid: v, graph, state, msgs: inbox.as_slice(), out: &mut out };
                    compute_ref(&mut ctx, &mut agg);
                    inbox.clear();
                }
                // SAFETY: as above — slot `w` belongs to this worker.
                *unsafe { slots_ptr.get(w) } = Some((out, agg));
            });
            results = slots.into_iter().map(|s| s.expect("pool ran every worker")).collect();
        }

        // --- merge aggregates and counters ----------------------------------
        let mut step = StepStats { active_vertices: active.len() as u64, ..Default::default() };
        let mut global = G::default();
        let mut worker_shards: Vec<Vec<Vec<(VertexId, M)>>> = Vec::with_capacity(results.len());
        let mut step_labels: Vec<(LabelId, LabelTraffic)> = Vec::new();
        for (out, agg) in results {
            step.messages += out.messages;
            step.message_bytes += out.bytes;
            step.network_messages += out.network_messages;
            step.network_bytes += out.network_bytes;
            for (label, t) in &out.per_label {
                match step_labels.iter_mut().find(|(l, _)| l == label) {
                    Some((_, acc)) => acc.add(t),
                    None => step_labels.push((*label, *t)),
                }
            }
            global.merge(agg);
            worker_shards.push(out.shards);
        }

        // --- delivery phase ---------------------------------------------------
        // Shard `s` owns inboxes of vertices with `v % shards == s`; shards
        // run in parallel (sequentially below the threshold — same order
        // either way), and within a shard worker outboxes are drained in
        // worker order, which preserves global source order. Messages are
        // *moved* into inboxes (the outbox held the only copy), and drained
        // shard buffers return to the pool — in shard-major, worker-minor
        // order, independent of which delivery thread finished first —
        // shrunk first when their capacity dwarfs this step's use.
        let mut newly_active: Vec<Vec<VertexId>> = Vec::new();
        if step.messages > 0 {
            // Phase boundary: inbox ownership switches from active-list
            // chunks (compute) to `v % shards` (delivery) behind the epoch
            // barrier above, so compute-phase claims must not carry over.
            #[cfg(debug_assertions)]
            inboxes.reset_claims();
            let inboxes_ref = &inboxes;
            // Transpose to per-shard groups, preserving worker order within
            // each group (the determinism invariant above).
            let mut groups: Vec<Vec<Vec<(VertexId, M)>>> = (0..shards)
                .map(|s| worker_shards.iter_mut().map(|ws| std::mem::take(&mut ws[s])).collect())
                .collect();
            let mut woken_slots: Vec<Option<Vec<VertexId>>> = Vec::new();
            woken_slots.resize_with(shards, || None);
            let groups_ptr = SharedMut::new(groups.as_mut_ptr());
            let woken_ptr = SharedMut::new(woken_slots.as_mut_ptr());
            let deliver = |s: usize| {
                // SAFETY: one epoch runs shard `s` once — disjoint slots.
                let group = unsafe { groups_ptr.get(s) };
                let mut woken = Vec::new();
                for buf in group.iter_mut() {
                    let used = buf.len();
                    for (v, m) in buf.drain(..) {
                        // SAFETY: every message in this group targets
                        // v % shards == s by construction of Outbox::send,
                        // so only this shard's worker touches inboxes[v].
                        let inbox = unsafe { inboxes_ref.get(v as usize) };
                        if inbox.is_empty() {
                            woken.push(v);
                        }
                        inbox.push(m);
                    }
                    shrink_recycled(buf, used);
                }
                // SAFETY: as above — slot `s` belongs to this shard.
                *unsafe { woken_ptr.get(s) } = Some(woken);
            };
            if shards > 1 && step.messages >= threshold as u64 {
                worker_pool
                    .as_deref()
                    .expect("multi-thread config always carries a pool")
                    .run(shards, &deliver);
            } else {
                for s in 0..shards {
                    deliver(s);
                }
            }
            for (woken, group) in woken_slots.into_iter().zip(groups) {
                newly_active.push(woken.expect("every shard delivered"));
                buf_pool.extend(group);
            }
        } else {
            // No messages this step: the shard buffers are already empty;
            // recycle them (and their capacity) directly.
            for mut ws in worker_shards {
                buf_pool.append(&mut ws);
            }
        }
        self.shard_pool = buf_pool;

        let mut next: Vec<VertexId> = newly_active.into_iter().flatten().collect();
        next.sort_unstable();
        self.active = next;
        self.stats.record_step(step, &step_labels);
        (step, global)
    }

    /// Run one superstep without a global aggregator.
    pub fn superstep_simple<F>(&mut self, compute: F) -> StepStats
    where
        F: for<'x, 'y> Fn(&mut VertexCtx<'x, 'y, V, M>) + Sync,
    {
        self.superstep::<(), _>(|ctx, _| compute(ctx)).0
    }
}

impl<'g, V: Send + Clone, M: Message> Computation<'g, V, M> {
    /// Arm a fault injector: subsequent supersteps consult its plan, and
    /// checkpoints are taken every `injector.checkpoint_every()` supersteps
    /// (`0` disables checkpointing — an injected crash then aborts the run
    /// with [`FaultError::MachineLost`] instead of recovering).
    ///
    /// Lives in a `V: Clone` impl block only to capture the clone fn; the
    /// rest of the fault machinery (`take_replay`, `checkpoint_now`, …)
    /// stays on the base impl.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.faults = Some(FaultRuntime {
            injector,
            clone_state: |v: &V| v.clone(),
            sizer: Box::new(|_| std::mem::size_of::<V>() as u64),
            checkpoint: None,
            pending_replay: None,
            error: None,
        });
    }

    /// Install a checkpoint sizer for vertex state (bytes per vertex).
    /// The default charges `size_of::<V>()`, which undercounts heap-holding
    /// state; hosts that know `V`'s layout install an honest one. No-op
    /// until an injector is armed.
    pub fn set_state_sizer(&mut self, sizer: impl Fn(&V) -> u64 + Send + Sync + 'static) {
        if let Some(rt) = self.faults.as_mut() {
            rt.sizer = Box::new(sizer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// The dynamic checker rejects two threads claiming the same index: the
    /// pool runs both workers through `get(0)`, and whichever claims second
    /// must panic before its `&mut` is created (re-raised by `run`).
    #[cfg(debug_assertions)]
    #[test]
    fn shared_mut_overlapping_claims_panic() {
        let mut data = vec![0usize; 4];
        let shared = SharedMut::new(data.as_mut_ptr());
        let pool = WorkerPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(2, &|_| {
                // SAFETY: deliberately violated — both workers claim index 0
                // so the debug checker must fire (that is the test).
                *unsafe { shared.get(0) } += 1;
            });
        }));
        assert!(r.is_err(), "overlapping SharedMut claims must panic in debug builds");
    }

    /// Disjoint claims pass, and `reset_claims` lets a later phase
    /// re-partition the same indices across different threads.
    #[cfg(debug_assertions)]
    #[test]
    fn shared_mut_disjoint_claims_pass_across_phases() {
        let mut data = vec![0usize; 2];
        let shared = SharedMut::new(data.as_mut_ptr());
        let pool = WorkerPool::new(2);
        // SAFETY: worker `w` touches only index `w` — disjoint.
        pool.run(2, &|w| *unsafe { shared.get(w) } += 1);
        // Phase boundary behind the epoch barrier: ownership swaps.
        shared.reset_claims();
        // SAFETY: worker `w` touches only index `1 - w` — still disjoint.
        pool.run(2, &|w| *unsafe { shared.get(1 - w) } += 1);
        drop(shared);
        assert_eq!(data, vec![2, 2]);
    }

    /// A line graph 0 - 1 - 2 - ... - (n-1) with one edge label.
    fn line(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let vl = b.vertex_label("v");
        let el = b.edge_label("next");
        for _ in 0..n {
            b.add_vertex(vl);
        }
        for i in 0..n - 1 {
            b.add_undirected_edge(i as VertexId, (i + 1) as VertexId, el);
        }
        b.finish()
    }

    #[test]
    fn wave_propagates_and_halts() {
        let g = line(5);
        // Each vertex stores the wave value; vertex 0 starts a wave that
        // increments as it travels right.
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::sequential(), |_| 0);
        comp.activate([0]);
        let mut step = 0u64;
        while !comp.halted() {
            comp.superstep_simple(|ctx| {
                let incoming = ctx.messages().iter().copied().max().unwrap_or(0);
                *ctx.state = incoming;
                let next = ctx.id() + 1;
                if (next as usize) < ctx.graph().vertex_count() {
                    ctx.send(next, incoming + 1);
                }
            });
            step += 1;
            assert!(step < 20, "did not halt");
        }
        let (states, stats) = comp.finish();
        assert_eq!(states, vec![0, 1, 2, 3, 4]);
        // Vertices 0..4 each send one forwarding message; vertex 4 has no
        // right neighbour. 5 supersteps total (the last sends nothing).
        assert_eq!(stats.total_messages(), 4);
        assert_eq!(stats.supersteps, 5);
    }

    #[test]
    fn results_independent_of_thread_count() {
        let g = line(64);
        let run = |threads: usize| {
            // Threshold 0: force the pool even at this tiny scale, so the
            // test covers the parallel phases, not the fallback.
            let mut comp: Computation<'_, u64, u64> = Computation::new(
                &g,
                EngineConfig::with_threads(threads).with_parallel_threshold(0),
                |_| 0,
            );
            comp.activate(g.vertices());
            // Superstep 1: everyone sends its id to all neighbours.
            // Superstep 2: everyone sums what it received.
            comp.superstep_simple(|ctx| {
                let targets: Vec<VertexId> = ctx.edges().iter().map(|e| e.target).collect();
                for t in targets {
                    let id = ctx.id() as u64;
                    ctx.send(t, id);
                }
            });
            comp.superstep_simple(|ctx| {
                *ctx.state = ctx.messages().iter().sum();
            });
            let (states, stats) = comp.finish();
            (states, stats.total_messages())
        };
        let (s1, m1) = run(1);
        let (s4, m4) = run(4);
        let (s7, m7) = run(7);
        assert_eq!(s1, s4);
        assert_eq!(s1, s7);
        assert_eq!(m1, m4);
        assert_eq!(m1, m7);
    }

    #[test]
    fn aggregator_merges_across_workers() {
        #[derive(Default)]
        struct Sum(u64);
        impl Aggregator for Sum {
            fn merge(&mut self, other: Self) {
                self.0 += other.0;
            }
        }
        let g = line(100);
        let mut comp: Computation<'_, (), u64> =
            Computation::new(&g, EngineConfig::with_threads(4).with_parallel_threshold(0), |_| ());
        comp.activate(g.vertices());
        let (_, total) = comp.superstep(|ctx, agg: &mut Sum| {
            agg.0 += ctx.id() as u64;
        });
        assert_eq!(total.0, (0..100).sum::<u64>());
    }

    #[test]
    fn network_accounting_counts_only_crossings() {
        let g = line(4);
        let mut comp: Computation<'_, (), u64> =
            Computation::new(&g, EngineConfig::sequential(), |_| ());
        // machines: [0,0,1,1] — only the 1-2 edge crosses.
        comp.set_partitioning(Partitioning::from_assignment(vec![0, 0, 1, 1], 2));
        comp.activate(g.vertices());
        let stats = comp.superstep_simple(|ctx| {
            let targets: Vec<VertexId> = ctx.edges().iter().map(|e| e.target).collect();
            for t in targets {
                ctx.send(t, 7);
            }
        });
        assert_eq!(stats.messages, 6); // 2*(n-1) directed sends
        assert_eq!(stats.network_messages, 2); // 1→2 and 2→1
        assert_eq!(stats.network_bytes, 2 * std::mem::size_of::<u64>() as u64);
    }

    #[test]
    fn per_label_traffic_sums_to_totals() {
        let g = line(6);
        let label = g.edge_label_id("next").unwrap();
        let mut comp: Computation<'_, (), u64> =
            Computation::new(&g, EngineConfig::with_threads(3).with_parallel_threshold(0), |_| ());
        comp.set_partitioning(Partitioning::from_assignment(vec![0, 0, 1, 1, 0, 1], 2));
        comp.activate(g.vertices());
        comp.superstep_simple(|ctx| {
            // Labeled sends along real edges, plus one unlabeled send.
            let targets: Vec<VertexId> = ctx.edges().iter().map(|e| e.target).collect();
            for t in targets {
                ctx.send_along(label, t, 1);
            }
            ctx.send(0, 2);
        });
        let stats = comp.stats();
        let labeled = stats.label_traffic(label);
        let unlabeled = stats.label_traffic(crate::LabelId::NONE);
        assert_eq!(labeled.messages, 10); // 2*(n-1) directed sends
        assert_eq!(unlabeled.messages, 6);
        assert_eq!(labeled.messages + unlabeled.messages, stats.total_messages());
        assert_eq!(labeled.bytes + unlabeled.bytes, stats.total_bytes());
        assert_eq!(
            labeled.network_messages + unlabeled.network_messages,
            stats.totals.network_messages
        );
        assert_eq!(labeled.network_bytes + unlabeled.network_bytes, stats.totals.network_bytes);
        assert!(labeled.network_messages > 0, "the 1-2 and 3-4 crossings are labeled");
    }

    #[test]
    fn inject_seeds_messages_without_counting() {
        let g = line(3);
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::sequential(), |_| 0);
        comp.inject(1, 42);
        assert_eq!(comp.active(), &[1]);
        comp.superstep_simple(|ctx| {
            *ctx.state = ctx.messages()[0];
        });
        assert_eq!(*comp.state(1), 42);
        assert_eq!(comp.stats().total_messages(), 0);
    }

    #[test]
    fn inject_duplicates_normalize_before_compute() {
        let g = line(4);
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::with_threads(4).with_parallel_threshold(0), |_| 0);
        // Repeated and unsorted injections: the active list must come out
        // sorted and deduplicated (a duplicate would hand one vertex to two
        // workers), with every message delivered once.
        comp.inject(2, 30);
        comp.inject(2, 12);
        comp.inject_all([(0, 5), (1, 1), (1, 2)]);
        assert_eq!(comp.active(), &[0, 1, 2]);
        comp.superstep_simple(|ctx| {
            *ctx.state = ctx.messages().iter().sum();
        });
        assert_eq!(comp.states(), &[5, 3, 42, 0]);
        assert_eq!(comp.stats().total_messages(), 0);
    }

    #[test]
    fn shard_buffers_are_recycled_across_supersteps() {
        let g = line(32);
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::with_threads(4).with_parallel_threshold(0), |_| 0);
        let ping = |comp: &mut Computation<'_, u64, u64>| {
            comp.activate(g.vertices());
            comp.superstep_simple(|ctx| {
                let targets: Vec<VertexId> = ctx.edges().iter().map(|e| e.target).collect();
                for t in targets {
                    ctx.send(t, 1);
                }
            });
        };
        ping(&mut comp);
        let pooled = comp.shard_pool.len();
        assert!(pooled > 0, "delivery must return shard buffers to the pool");
        assert!(comp.shard_pool.iter().all(Vec::is_empty), "pooled buffers must be drained");
        let capacity: usize = comp.shard_pool.iter().map(Vec::capacity).sum();
        assert!(capacity > 0, "recycled buffers keep their capacity");
        // Steady state: the next superstep takes and returns the same set.
        ping(&mut comp);
        assert_eq!(comp.shard_pool.len(), pooled);
    }

    /// All-to-neighbours ping used by the runtime tests below.
    fn ping_all(comp: &mut Computation<'_, u64, u64>, g: &Graph) {
        comp.activate(g.vertices());
        comp.superstep_simple(|ctx| {
            let targets: Vec<VertexId> = ctx.edges().iter().map(|e| e.target).collect();
            for t in targets {
                let id = ctx.id() as u64;
                ctx.send(t, id);
            }
        });
    }

    #[test]
    fn worker_threads_persist_across_supersteps() {
        let g = line(64);
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::with_threads(4).with_parallel_threshold(0), |_| 0);
        for round in 0..10 {
            ping_all(&mut comp, &g);
            let pool = comp.worker_pool().expect("parallel superstep created the pool");
            assert_eq!(pool.spawned_workers(), 3, "round {round}: threads-1 workers, once");
            assert_eq!(pool.live_workers(), 3, "round {round}: workers parked, not respawned");
        }
    }

    #[test]
    fn small_supersteps_skip_thread_spawn() {
        let g = line(32);
        // Default threshold (2048) dwarfs this graph: every phase must take
        // the sequential fallback and never start an OS thread.
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::with_threads(4), |_| 0);
        for _ in 0..3 {
            ping_all(&mut comp, &g);
        }
        let pool = comp.worker_pool().expect("multi-thread config carries a pool");
        assert_eq!(pool.spawned_workers(), 0, "sub-threshold supersteps must not spawn");
        assert_eq!(comp.stats().total_messages(), 3 * 2 * 31);
    }

    #[test]
    fn inject_between_supersteps_with_live_workers() {
        let g = line(64);
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::with_threads(4).with_parallel_threshold(0), |_| 0);
        ping_all(&mut comp, &g);
        assert_eq!(comp.worker_pool().unwrap().live_workers(), 3);
        // Host-side seeding while workers sit parked between supersteps.
        comp.inject(0, 100);
        comp.inject_all([(5, 7), (5, 8), (63, 1)]);
        comp.superstep_simple(|ctx| {
            *ctx.state = ctx.messages().iter().sum();
        });
        assert_eq!(*comp.state(5), 4 + 6 + 7 + 8, "neighbour ids plus both injections");
        assert_eq!(*comp.state(0), 1 + 100);
        assert_eq!(*comp.state(63), 62 + 1);
        assert_eq!(comp.worker_pool().unwrap().live_workers(), 3, "workers survive injection");
    }

    #[test]
    fn shared_pool_outlives_computations() {
        let g = line(64);
        let pool = Arc::new(crate::pool::WorkerPool::new(3));
        for _ in 0..20 {
            let mut comp: Computation<'_, u64, u64> = Computation::new(
                &g,
                EngineConfig::with_threads(3).with_parallel_threshold(0),
                |_| 0,
            );
            comp.set_worker_pool(Arc::clone(&pool));
            ping_all(&mut comp, &g);
            assert_eq!(comp.worker_pool().unwrap().spawned_workers(), 2);
        }
        // Every computation released its handle and the workers still run.
        assert_eq!(Arc::strong_count(&pool), 1);
        assert_eq!(pool.live_workers(), 2);
    }

    #[test]
    fn undersized_shared_pool_is_rejected() {
        let g = line(8);
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::with_threads(4), |_| 0);
        let pool = Arc::new(crate::pool::WorkerPool::new(2));
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| comp.set_worker_pool(pool)));
        assert!(r.is_err(), "a pool smaller than the engine's thread count must be rejected");
    }

    #[test]
    fn shard_pool_capacity_decays_after_peak_superstep() {
        let g = line(256);
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::sequential(), |_| 0);
        // Peak superstep: every vertex messages both neighbours (510 sends).
        ping_all(&mut comp, &g);
        let peak: usize = comp.shard_pool.iter().map(Vec::capacity).sum();
        assert!(peak >= 510, "peak superstep should have grown the buffer, got {peak}");
        // Quiet superstep: a single message. The recycled buffer must shed
        // the peak capacity instead of carrying it forever.
        comp.superstep_simple(|ctx| {
            if ctx.id() == 0 {
                ctx.send(1, 1);
            }
        });
        let after: usize = comp.shard_pool.iter().map(Vec::capacity).sum();
        assert!(after < peak / 4, "high-water must decay: {after} vs peak {peak}");
        // And delivery still works on the shrunk buffer.
        comp.superstep_simple(|ctx| {
            *ctx.state = ctx.messages().iter().sum();
        });
        assert_eq!(*comp.state(1), 1);
    }

    #[test]
    fn empty_superstep_is_recorded() {
        let g = line(2);
        let mut comp: Computation<'_, (), u64> =
            Computation::new(&g, EngineConfig::sequential(), |_| ());
        let stats = comp.superstep_simple(|_| {});
        assert_eq!(stats.active_vertices, 0);
        assert_eq!(comp.stats().supersteps, 1);
    }

    // ----- fault injection / checkpoint recovery ---------------------------

    use crate::fault::{FaultError, FaultInjector, FaultPlan};

    /// Drive the wave program of `wave_propagates_and_halts` to completion,
    /// cooperating with the fault runtime: a pending replay just re-enters
    /// the loop (every superstep runs the same closure), a fault error
    /// aborts. Returns the final states and stats.
    fn run_wave(
        g: &Graph,
        threads: usize,
        injector: Option<Arc<FaultInjector>>,
    ) -> Result<(Vec<u64>, RunStats), FaultError> {
        let mut comp: Computation<'_, u64, u64> = Computation::new(
            g,
            EngineConfig::with_threads(threads).with_parallel_threshold(0),
            |_| 0,
        );
        comp.set_partitioning(Partitioning::from_assignment(
            (0..g.vertex_count()).map(|v| (v % 2) as u16).collect(),
            2,
        ));
        if let Some(inj) = injector {
            comp.set_fault_injector(inj);
        }
        comp.activate([0]);
        let mut guard = 0;
        while !comp.halted() {
            comp.superstep_simple(|ctx| {
                let incoming = ctx.messages().iter().copied().max().unwrap_or(0);
                *ctx.state = incoming;
                let next = ctx.id() + 1;
                if (next as usize) < ctx.graph().vertex_count() {
                    ctx.send(next, incoming + 1);
                }
            });
            if comp.take_replay().is_some() {
                continue; // state rewound; the uniform closure replays as-is
            }
            if let Some(e) = comp.take_fault_error() {
                return Err(e);
            }
            guard += 1;
            assert!(guard < 100, "wave did not halt");
        }
        let (states, stats) = comp.finish();
        Ok((states, stats))
    }

    #[test]
    fn crash_recovers_from_checkpoint_with_identical_results() {
        let g = line(8);
        let (base_states, base) = run_wave(&g, 1, None).unwrap();
        // Crash machine 1 just before superstep 5; checkpoints every 2
        // supersteps put the last one at superstep 4 → one rolled-back round.
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().crash(1, 5), 2));
        let (states, stats) = run_wave(&g, 1, Some(Arc::clone(&inj))).unwrap();
        assert!(inj.any_fired(), "the crash must actually fire");
        assert_eq!(states, base_states, "recovery must not change results");
        // Non-fault statistics replay identically…
        assert_eq!(stats.supersteps, base.supersteps);
        assert_eq!(stats.totals, base.totals);
        assert_eq!(stats.steps, base.steps);
        // …while the fault costs are itemized on the side.
        assert_eq!(stats.faults.crashes_recovered, 1);
        assert_eq!(stats.faults.recovered_rounds, 1, "checkpoint at 4, crash at 5");
        assert!(stats.faults.checkpoints >= 3);
        assert!(stats.faults.checkpoint_bytes > 0);
        assert!(stats.faults.recovery_bytes > 0);
        assert!(
            stats.faults.recovery_bytes < stats.faults.checkpoint_bytes,
            "recovery re-ships only the crashed machine's partition share"
        );
        assert!(stats.faults.recovered_vertices == g.vertex_count() as u64 / 2);
        assert_eq!(base.faults, crate::stats::FaultTraffic::default(), "fault-free run is clean");
    }

    #[test]
    fn recovery_is_identical_across_thread_counts() {
        let g = line(64);
        let (base_states, base) = run_wave(&g, 1, None).unwrap();
        for threads in [1, 4] {
            let inj = Arc::new(FaultInjector::new(FaultPlan::new().crash(0, 3), 1));
            let (states, stats) = run_wave(&g, threads, Some(inj)).unwrap();
            assert_eq!(states, base_states, "threads={threads}");
            assert_eq!(stats.totals, base.totals, "threads={threads}");
        }
    }

    #[test]
    fn crash_at_checkpointed_superstep_recovers_in_call() {
        let g = line(6);
        let (base_states, base) = run_wave(&g, 1, None).unwrap();
        // checkpoint_every=1 and a crash at superstep 2: the checkpoint due
        // at 2 is taken in the same hook call, so the restore is a charged
        // data no-op and the superstep still runs — no replay rounds.
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().crash(0, 2), 1));
        let (states, stats) = run_wave(&g, 1, Some(inj)).unwrap();
        assert_eq!(states, base_states);
        assert_eq!(stats.supersteps, base.supersteps);
        assert_eq!(stats.faults.crashes_recovered, 1);
        assert_eq!(stats.faults.recovered_rounds, 0, "in-call recovery replays nothing");
        assert!(stats.faults.recovery_bytes > 0, "the restore itself is still charged");
    }

    #[test]
    fn crash_without_checkpoint_aborts_then_rerun_succeeds() {
        let g = line(5);
        // checkpoint_every=0: checkpointing disabled.
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().crash(1, 1), 0));
        let err = run_wave(&g, 1, Some(Arc::clone(&inj))).unwrap_err();
        assert_eq!(err, FaultError::MachineLost { machine: 1, superstep: 1 });
        assert!(!err.is_transient());
        // The fault is spent: a rerun sharing the injector goes clean.
        let (states, stats) = run_wave(&g, 1, Some(inj)).unwrap();
        assert_eq!(states, run_wave(&g, 1, None).unwrap().0);
        assert_eq!(stats.faults.checkpoints, 0, "interval 0 takes no checkpoints");
        assert_eq!(stats.faults.crashes_recovered, 0);
    }

    #[test]
    fn transient_drop_aborts_then_rerun_succeeds() {
        let g = line(5);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().drop_link(0, 1, 2), 2));
        let err = run_wave(&g, 1, Some(Arc::clone(&inj))).unwrap_err();
        assert_eq!(err, FaultError::DeliveryFailed { from: 0, to: 1, superstep: 2 });
        assert!(err.is_transient());
        let (states, _) = run_wave(&g, 1, Some(inj)).unwrap();
        assert_eq!(states, run_wave(&g, 1, None).unwrap().0);
    }

    #[test]
    fn injected_panic_unwinds_out_of_superstep() {
        let g = line(4);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().compute_panic(0), 0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_wave(&g, 1, Some(Arc::clone(&inj))).ok();
        }));
        assert!(r.is_err(), "an injected compute panic must unwind to the host");
        assert_eq!(inj.fired_count(), 1);
        // Spent: the rerun completes.
        assert!(run_wave(&g, 1, Some(inj)).is_ok());
    }

    #[test]
    fn forced_checkpoint_covers_aggregator_supersteps() {
        let g = line(4);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().crash(0, 0), 4));
        let mut comp: Computation<'_, u64, u64> =
            Computation::new(&g, EngineConfig::sequential(), |_| 0);
        comp.set_fault_injector(inj);
        comp.activate(g.vertices());
        // A driver about to read an aggregate forces a checkpoint first, so
        // the crash at this superstep is recovered within the call and the
        // aggregate below is valid (no deferred replay).
        comp.checkpoint_now();
        #[derive(Default)]
        struct Count(u64);
        impl Aggregator for Count {
            fn merge(&mut self, other: Self) {
                self.0 += other.0;
            }
        }
        let (_, agg) = comp.superstep(|_, agg: &mut Count| agg.0 += 1);
        assert_eq!(comp.take_replay(), None, "forced checkpoint prevents deferred replay");
        assert_eq!(comp.take_fault_error(), None);
        assert_eq!(agg.0, 4, "aggregate computed after in-call recovery");
        assert_eq!(comp.stats().faults.crashes_recovered, 1);
    }

    #[test]
    fn default_sizer_and_custom_sizer_price_checkpoints() {
        let g = line(3);
        let run = |sizer: Option<fn(&u64) -> u64>| {
            let inj = Arc::new(FaultInjector::new(FaultPlan::new(), 1));
            let mut comp: Computation<'_, u64, u64> =
                Computation::new(&g, EngineConfig::sequential(), |_| 0);
            comp.set_fault_injector(inj);
            if let Some(s) = sizer {
                comp.set_state_sizer(s);
            }
            comp.activate([0]);
            comp.superstep_simple(|_| {});
            comp.stats().faults
        };
        // One checkpoint before the only superstep: 1 active id (8 bytes) +
        // 3 vertex states, no pending inbox bytes.
        let default = run(None);
        assert_eq!(default.checkpoints, 1);
        assert_eq!(default.checkpoint_bytes, 8 + 3 * std::mem::size_of::<u64>() as u64);
        let custom = run(Some(|_| 100));
        assert_eq!(custom.checkpoint_bytes, 8 + 3 * 100);
    }
}
