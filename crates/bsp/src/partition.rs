//! Machine partitioning for distributed-cluster simulation.
//!
//! The engine itself is shared-memory; to study distributed behaviour
//! (Section 8.6 of the paper) we assign every vertex to one of `k` simulated
//! machines and have the engine count messages/bytes that cross machine
//! boundaries. This models the quantity the paper measures with `sar`: total
//! network traffic during query execution.

use crate::graph::{Graph, VertexId};
use std::hash::{Hash, Hasher};
use vcsql_relation::fx::FxHasher;

/// An assignment of vertices to simulated machines.
#[derive(Debug, Clone)]
pub struct Partitioning {
    machine_of: Vec<u16>,
    machines: usize,
}

impl Partitioning {
    /// Hash-partition all vertices of a graph over `machines` machines —
    /// TigerGraph's default automatic partitioning, which the paper uses
    /// untuned ("We used TigerGraph's default automatic partitioning").
    pub fn hash(graph: &Graph, machines: usize) -> Partitioning {
        assert!(machines > 0 && machines <= u16::MAX as usize);
        let machine_of = (0..graph.vertex_count() as VertexId)
            .map(|v| {
                let mut h = FxHasher::default();
                v.hash(&mut h);
                (h.finish() % machines as u64) as u16
            })
            .collect();
        Partitioning { machine_of, machines }
    }

    /// Build from an explicit assignment.
    pub fn from_assignment(machine_of: Vec<u16>, machines: usize) -> Partitioning {
        assert!(machine_of.iter().all(|&m| (m as usize) < machines));
        Partitioning { machine_of, machines }
    }

    /// The machine hosting vertex `v`.
    #[inline]
    pub fn machine_of(&self, v: VertexId) -> u16 {
        self.machine_of[v as usize]
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// True iff `a` and `b` are on different machines (i.e. a message between
    /// them would use the network).
    #[inline]
    pub fn crosses(&self, a: VertexId, b: VertexId) -> bool {
        self.machine_of[a as usize] != self.machine_of[b as usize]
    }

    /// Number of vertices per machine (for balance diagnostics).
    pub fn load(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.machines];
        for &m in &self.machine_of {
            counts[m as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let l = b.vertex_label("v");
        for _ in 0..n {
            b.add_vertex(l);
        }
        b.finish()
    }

    #[test]
    fn hash_partition_is_roughly_balanced() {
        let g = graph(10_000);
        let p = Partitioning::hash(&g, 6);
        let load = p.load();
        assert_eq!(load.iter().sum::<usize>(), 10_000);
        for &l in &load {
            // Within 25% of the ideal 1667 — hash balance, not perfection.
            assert!(l > 1200 && l < 2200, "unbalanced: {load:?}");
        }
    }

    #[test]
    fn crossing_detection() {
        let p = Partitioning::from_assignment(vec![0, 0, 1], 2);
        assert!(!p.crosses(0, 1));
        assert!(p.crosses(0, 2));
        assert_eq!(p.machine_of(2), 1);
    }

    #[test]
    #[should_panic]
    fn bad_assignment_panics() {
        Partitioning::from_assignment(vec![0, 3], 2);
    }
}
