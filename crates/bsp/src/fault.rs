//! Deterministic fault injection for the superstep engine.
//!
//! Real Pregel-descendant engines earn their deployment story with
//! checkpoint-based fault tolerance: every few supersteps each worker
//! persists its partition's vertex state and pending messages, and when a
//! machine is lost the cluster reloads the last checkpoint and replays.
//! This module provides the *fault side* of that story for the simulated
//! cluster: a [`FaultPlan`] is a fixed, seed-derivable list of faults
//! (machine crashes at a given superstep, transient message-delivery
//! failures between machine pairs, injected compute panics), and a
//! [`FaultInjector`] arms a plan against one or more
//! [`Computation`](crate::Computation)s.
//!
//! Determinism contract: a plan is data, not randomness at run time —
//! [`FaultPlan::seeded`] derives its faults from a seed with a splitmix64
//! stream, so the same seed always produces the same faults, and every
//! fault fires **at most once** per injector lifetime (the injector tracks
//! fired faults across computations and retries). Combined with the
//! engine's checkpoint/replay (which restores state, inboxes, the active
//! set, and the statistics to the snapshot before re-running), an injected
//! crash never changes query results — only the itemized recovery cost.

use std::fmt;
use std::sync::{Mutex, PoisonError};

/// One injected fault, pinned to a superstep index of the computation it
/// fires in (superstep indices are per-[`Computation`](crate::Computation):
/// the first superstep a computation runs has index 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Machine `machine` is lost just before superstep `superstep` runs:
    /// its partition's state is gone and must be restored from the last
    /// checkpoint (or the whole execution fails when none exists).
    Crash { machine: u32, superstep: u64 },
    /// Transient delivery failure on the `from → to` link at `superstep`:
    /// the execution aborts with a retryable error (the fault is spent, so
    /// a retry from scratch succeeds). Models a dropped message batch that
    /// a real engine would detect via ack timeout and resolve by rerun.
    DropLink { from: u32, to: u32, superstep: u64 },
    /// The compute phase itself panics at `superstep` (a poisoned UDF, a
    /// bug in a vertex program). Exercises host-side `catch_unwind`
    /// isolation rather than engine-level recovery.
    ComputePanic { superstep: u64 },
}

impl Fault {
    /// The superstep this fault is pinned to.
    pub fn superstep(&self) -> u64 {
        match *self {
            Fault::Crash { superstep, .. }
            | Fault::DropLink { superstep, .. }
            | Fault::ComputePanic { superstep } => superstep,
        }
    }
}

/// A deterministic list of faults to inject. Build explicitly
/// ([`FaultPlan::crash`] etc.) or derive from a seed
/// ([`FaultPlan::seeded`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

/// The splitmix64 step: the standard 64-bit mix used to expand one seed
/// into an arbitrary-length deterministic stream (no OS randomness, no
/// wall clock — replayable by construction).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (injects nothing; useful as a baseline).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a machine crash at `superstep`.
    pub fn crash(mut self, machine: u32, superstep: u64) -> FaultPlan {
        self.faults.push(Fault::Crash { machine, superstep });
        self
    }

    /// Add a transient delivery failure on the `from → to` link.
    pub fn drop_link(mut self, from: u32, to: u32, superstep: u64) -> FaultPlan {
        self.faults.push(Fault::DropLink { from, to, superstep });
        self
    }

    /// Add an injected compute panic at `superstep`.
    pub fn compute_panic(mut self, superstep: u64) -> FaultPlan {
        self.faults.push(Fault::ComputePanic { superstep });
        self
    }

    /// Derive a plan from `seed`: `crashes` machine crashes and `drops`
    /// transient link failures, over `machines` machines and superstep
    /// indices below `horizon`. Identical inputs always yield the identical
    /// plan (splitmix64 stream), so a failing seed reproduces exactly.
    pub fn seeded(
        seed: u64,
        machines: u32,
        horizon: u64,
        crashes: usize,
        drops: usize,
    ) -> FaultPlan {
        let machines = machines.max(1);
        let horizon = horizon.max(1);
        let mut state = seed;
        let mut plan = FaultPlan::new();
        for _ in 0..crashes {
            let machine = (splitmix64(&mut state) % machines as u64) as u32;
            let superstep = splitmix64(&mut state) % horizon;
            plan = plan.crash(machine, superstep);
        }
        for _ in 0..drops {
            let from = (splitmix64(&mut state) % machines as u64) as u32;
            let mut to = (splitmix64(&mut state) % machines as u64) as u32;
            if machines > 1 && to == from {
                to = (to + 1) % machines;
            }
            let superstep = splitmix64(&mut state) % horizon;
            plan = plan.drop_link(from, to, superstep);
        }
        plan
    }

    /// The faults, in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True iff the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// An injected fault the engine could not absorb transparently: the
/// execution is aborted and the host decides (retry, re-place, give up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// A machine crashed with no checkpoint to restore from
    /// (checkpointing disabled, or the crash predates the first
    /// checkpoint). Unrecoverable in-run; a rerun succeeds because the
    /// fault is spent.
    MachineLost { machine: u32, superstep: u64 },
    /// A transient delivery failure. Retryable by design: the injector
    /// fires each fault at most once, so the rerun's delivery succeeds.
    DeliveryFailed { from: u32, to: u32, superstep: u64 },
}

impl FaultError {
    /// True iff a bounded retry of the whole execution is the documented
    /// resolution (transient faults). Machine loss without a checkpoint is
    /// also survivable by rerun, but callers may want to re-place first.
    pub fn is_transient(&self) -> bool {
        matches!(self, FaultError::DeliveryFailed { .. })
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::MachineLost { machine, superstep } => {
                write!(f, "machine {machine} lost at superstep {superstep} with no checkpoint")
            }
            FaultError::DeliveryFailed { from, to, superstep } => {
                write!(f, "transient delivery failure {from} -> {to} at superstep {superstep}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Arms a [`FaultPlan`] against computations: tracks which faults already
/// fired (at most once each, across every computation and retry sharing
/// this injector) and carries the checkpoint cadence. Shared by `Arc`
/// between a driver and the engine.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Checkpoint every this many supersteps; `0` disables checkpointing
    /// entirely (a crash then aborts the run instead of recovering).
    checkpoint_every: u64,
    /// `fired[i]` ⇔ `plan.faults()[i]` has been injected.
    fired: Mutex<Vec<bool>>,
}

impl FaultInjector {
    /// Arm `plan` with the given checkpoint cadence.
    pub fn new(plan: FaultPlan, checkpoint_every: u64) -> FaultInjector {
        let fired = Mutex::new(vec![false; plan.len()]);
        FaultInjector { plan, checkpoint_every, fired }
    }

    /// The checkpoint cadence (`0` = checkpointing disabled).
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Poison-tolerant lock on the fired flags: an injected `ComputePanic`
    /// unwinds through engine code that may hold this lock's neighbours,
    /// and the flags are just bools — always consistent.
    fn fired(&self) -> std::sync::MutexGuard<'_, Vec<bool>> {
        self.fired.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Claim the first unfired fault at `superstep` matching `pick`,
    /// marking it fired. The claim is atomic: concurrent computations
    /// sharing one injector cannot double-fire a fault.
    fn claim<T>(&self, superstep: u64, pick: impl Fn(&Fault) -> Option<T>) -> Option<T> {
        let mut fired = self.fired();
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if fired[i] || fault.superstep() != superstep {
                continue;
            }
            if let Some(t) = pick(fault) {
                fired[i] = true;
                return Some(t);
            }
        }
        None
    }

    /// Claim a crash pinned to `superstep`, returning the lost machine.
    pub(crate) fn claim_crash(&self, superstep: u64) -> Option<u32> {
        self.claim(superstep, |f| match *f {
            Fault::Crash { machine, .. } => Some(machine),
            _ => None,
        })
    }

    /// Claim a transient delivery failure pinned to `superstep`.
    pub(crate) fn claim_drop(&self, superstep: u64) -> Option<(u32, u32)> {
        self.claim(superstep, |f| match *f {
            Fault::DropLink { from, to, .. } => Some((from, to)),
            _ => None,
        })
    }

    /// Claim an injected compute panic pinned to `superstep`.
    pub(crate) fn claim_panic(&self, superstep: u64) -> bool {
        self.claim(superstep, |f| match *f {
            Fault::ComputePanic { .. } => Some(()),
            _ => None,
        })
        .is_some()
    }

    /// True iff at least one fault has fired.
    pub fn any_fired(&self) -> bool {
        self.fired().iter().any(|&f| f)
    }

    /// Number of faults that have fired so far.
    pub fn fired_count(&self) -> usize {
        self.fired().iter().filter(|&&f| f).count()
    }

    /// Re-arm every fault (benchmark sweeps reuse one injector across
    /// configurations; each run of a sweep re-arms before executing).
    pub fn reset(&self) {
        self.fired().iter_mut().for_each(|f| *f = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::seeded(42, 4, 10, 3, 5);
        let b = FaultPlan::seeded(42, 4, 10, 3, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        for f in a.faults() {
            assert!(f.superstep() < 10);
            match *f {
                Fault::Crash { machine, .. } => assert!(machine < 4),
                Fault::DropLink { from, to, .. } => {
                    assert!(from < 4 && to < 4);
                    assert_ne!(from, to, "seeded drops never target the same machine");
                }
                Fault::ComputePanic { .. } => unreachable!("seeded plans inject no panics"),
            }
        }
        // A different seed yields a different plan (overwhelmingly likely;
        // pinned here so a regression in the stream is caught).
        assert_ne!(a, FaultPlan::seeded(43, 4, 10, 3, 5));
    }

    #[test]
    fn faults_fire_at_most_once() {
        let plan = FaultPlan::new().crash(2, 3).drop_link(0, 1, 3);
        let inj = FaultInjector::new(plan, 2);
        assert!(!inj.any_fired());
        assert_eq!(inj.claim_crash(1), None, "no fault pinned to superstep 1");
        assert_eq!(inj.claim_crash(3), Some(2));
        assert_eq!(inj.claim_crash(3), None, "crash already fired");
        assert_eq!(inj.claim_drop(3), Some((0, 1)));
        assert_eq!(inj.claim_drop(3), None);
        assert_eq!(inj.fired_count(), 2);
        inj.reset();
        assert_eq!(inj.claim_crash(3), Some(2), "reset re-arms the plan");
    }

    #[test]
    fn error_display_and_transience() {
        let lost = FaultError::MachineLost { machine: 1, superstep: 4 };
        let drop = FaultError::DeliveryFailed { from: 0, to: 2, superstep: 7 };
        assert!(!lost.is_transient());
        assert!(drop.is_transient());
        assert!(lost.to_string().contains("machine 1"));
        assert!(drop.to_string().contains("0 -> 2"));
    }
}
