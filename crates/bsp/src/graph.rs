//! The immutable, labelled graph the engine computes over.
//!
//! Vertices carry a label (e.g. the relation name for tuple vertices, the
//! type name for attribute vertices). Edges carry a label (`R.A` in TAG
//! graphs) and are stored in CSR form, grouped per source vertex and sorted
//! by label so per-label scans (`out_edges_with_label`) are contiguous.
//!
//! The paper models TAG edges as undirected (footnote 3): an undirected edge
//! is two directed edges, one per endpoint, added by
//! [`GraphBuilder::add_undirected_edge`].

use crate::interner::{Interner, LabelId};

/// Vertex identifier — dense, starting at zero.
pub type VertexId = u32;

/// A directed, labelled edge (source implied by CSR position).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub label: LabelId,
    pub target: VertexId,
}

/// Mutable graph under construction; finalize with [`GraphBuilder::finish`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    vertex_labels: Interner,
    edge_labels: Interner,
    vlabel_of: Vec<LabelId>,
    adjacency: Vec<Vec<Edge>>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// Intern a vertex label without creating a vertex.
    pub fn vertex_label(&mut self, name: &str) -> LabelId {
        self.vertex_labels.intern(name)
    }

    /// Intern an edge label without creating an edge.
    pub fn edge_label(&mut self, name: &str) -> LabelId {
        self.edge_labels.intern(name)
    }

    /// Add a vertex with the given label, returning its id.
    pub fn add_vertex(&mut self, label: LabelId) -> VertexId {
        let id = self.vlabel_of.len() as VertexId;
        self.vlabel_of.push(label);
        self.adjacency.push(Vec::new());
        id
    }

    /// Add a directed edge.
    pub fn add_edge(&mut self, source: VertexId, target: VertexId, label: LabelId) {
        self.adjacency[source as usize].push(Edge { label, target });
    }

    /// Add an undirected edge (two directed edges with the same label).
    pub fn add_undirected_edge(&mut self, a: VertexId, b: VertexId, label: LabelId) {
        self.add_edge(a, b, label);
        self.add_edge(b, a, label);
    }

    /// Current number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vlabel_of.len()
    }

    /// Freeze into a CSR [`Graph`].
    pub fn finish(self) -> Graph {
        let n = self.vlabel_of.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(self.adjacency.iter().map(Vec::len).sum());
        offsets.push(0u64);
        for mut adj in self.adjacency {
            // Sort by label (then target) so per-label ranges are contiguous
            // and iteration order is deterministic.
            adj.sort_unstable_by_key(|e| (e.label, e.target));
            edges.extend_from_slice(&adj);
            offsets.push(edges.len() as u64);
        }
        // Per-vertex-label vertex lists, for `activate_label`-style seeding.
        let mut by_label: Vec<Vec<VertexId>> = vec![Vec::new(); self.vertex_labels.len()];
        for (v, l) in self.vlabel_of.iter().enumerate() {
            by_label[l.0 as usize].push(v as VertexId);
        }
        Graph {
            vertex_labels: self.vertex_labels,
            edge_labels: self.edge_labels,
            vlabel_of: self.vlabel_of,
            offsets,
            edges,
            vertices_by_label: by_label,
        }
    }
}

/// An immutable labelled graph in CSR form.
#[derive(Debug, Clone)]
pub struct Graph {
    vertex_labels: Interner,
    edge_labels: Interner,
    vlabel_of: Vec<LabelId>,
    offsets: Vec<u64>,
    edges: Vec<Edge>,
    vertices_by_label: Vec<Vec<VertexId>>,
}

impl Graph {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vlabel_of.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The label of a vertex.
    #[inline]
    pub fn label_of(&self, v: VertexId) -> LabelId {
        self.vlabel_of[v as usize]
    }

    /// All out-edges of a vertex (sorted by label).
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[Edge] {
        let (lo, hi) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
        &self.edges[lo..hi]
    }

    /// Out-edges of `v` carrying `label` (a contiguous subslice thanks to the
    /// per-vertex label sort).
    pub fn out_edges_with_label(&self, v: VertexId, label: LabelId) -> &[Edge] {
        let all = self.out_edges(v);
        let start = all.partition_point(|e| e.label < label);
        let end = all[start..].partition_point(|e| e.label == label) + start;
        &all[start..end]
    }

    /// Out-degree.
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_edges(v).len()
    }

    /// Out-degree restricted to one edge label. For a TAG attribute vertex
    /// and label `R.A` this is exactly `|σ_{A=a} R|` — the quantity the
    /// heavy/light split of Section 6.1.2 tests against θ.
    pub fn degree_with_label(&self, v: VertexId, label: LabelId) -> usize {
        self.out_edges_with_label(v, label).len()
    }

    /// Resolve a vertex label name.
    pub fn vertex_label_id(&self, name: &str) -> Option<LabelId> {
        self.vertex_labels.get(name)
    }

    /// Resolve an edge label name.
    pub fn edge_label_id(&self, name: &str) -> Option<LabelId> {
        self.edge_labels.get(name)
    }

    /// Name of a vertex label.
    pub fn vertex_label_name(&self, id: LabelId) -> &str {
        self.vertex_labels.name(id)
    }

    /// Name of an edge label.
    pub fn edge_label_name(&self, id: LabelId) -> &str {
        self.edge_labels.name(id)
    }

    /// All vertices carrying the given vertex label.
    pub fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        &self.vertices_by_label[label.0 as usize]
    }

    /// Iterate all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.vertex_count() as VertexId
    }

    /// The vertex-label interner (read access for diagnostics).
    pub fn vertex_labels(&self) -> &Interner {
        &self.vertex_labels
    }

    /// The edge-label interner (read access for diagnostics).
    pub fn edge_labels(&self) -> &Interner {
        &self.edge_labels
    }

    /// Approximate footprint in bytes of the graph topology (not including
    /// user vertex state).
    pub fn deep_size(&self) -> usize {
        self.vlabel_of.len() * std::mem::size_of::<LabelId>()
            + self.offsets.len() * 8
            + self.edges.len() * std::mem::size_of::<Edge>()
            + self.vertices_by_label.iter().map(|v| v.len() * 4 + 24).sum::<usize>()
            + self.vertex_labels.deep_size()
            + self.edge_labels.deep_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        // r0 --ra--> a0, r1 --ra--> a0, a0 --sb--> s0 (directed for the test)
        let mut b = GraphBuilder::new();
        let lr = b.vertex_label("R");
        let la = b.vertex_label("int");
        let ls = b.vertex_label("S");
        let ra = b.edge_label("R.A");
        let sb = b.edge_label("S.B");
        let r0 = b.add_vertex(lr);
        let r1 = b.add_vertex(lr);
        let a0 = b.add_vertex(la);
        let s0 = b.add_vertex(ls);
        b.add_undirected_edge(r0, a0, ra);
        b.add_undirected_edge(r1, a0, ra);
        b.add_undirected_edge(s0, a0, sb);
        b.finish()
    }

    #[test]
    fn csr_layout_and_label_ranges() {
        let g = tiny();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 6);
        let a0 = 2;
        assert_eq!(g.degree(a0), 3);
        let ra = g.edge_label_id("R.A").unwrap();
        let sb = g.edge_label_id("S.B").unwrap();
        assert_eq!(g.degree_with_label(a0, ra), 2);
        assert_eq!(g.degree_with_label(a0, sb), 1);
        let targets: Vec<VertexId> =
            g.out_edges_with_label(a0, ra).iter().map(|e| e.target).collect();
        assert_eq!(targets, vec![0, 1]);
    }

    #[test]
    fn label_lookup() {
        let g = tiny();
        let lr = g.vertex_label_id("R").unwrap();
        assert_eq!(g.vertices_with_label(lr), &[0, 1]);
        assert_eq!(g.vertex_label_name(g.label_of(3)), "S");
        assert!(g.vertex_label_id("missing").is_none());
    }

    #[test]
    fn missing_label_gives_empty_slice() {
        let g = tiny();
        let sb = g.edge_label_id("S.B").unwrap();
        assert!(g.out_edges_with_label(0, sb).is_empty());
    }
}
