//! Anchor-following placement (the ROADMAP's "co-locate tuple vertices with
//! their attribute vertices", upgraded from the originally sketched
//! highest-degree rule to traffic-weighted anchor choice — raw degree picks
//! hot literals, not join keys).
//!
//! Anchors — in TAG terms the attribute vertices — are hash-placed exactly as
//! in [`Partitioning::hash`], so the attribute side of the bipartite graph
//! stays uniformly spread. Every non-anchor vertex (a tuple vertex) then
//! follows the incident anchor with the highest **traffic weight** (the
//! cross-family score of [`refine`](super::refine) module docs): the anchor
//! whose edges continue into a *different relation* — a join value with
//! partners elsewhere — wins, discounted by how widely it is shared. On a
//! TAG this sends a lineitem to its `orderkey` value (which has an
//! `o_orderkey` partner) rather than to a hot `quantity` literal or a date
//! shared only among `lineitem`'s own date columns, which route no
//! traversal anywhere.
//!
//! When no incident anchor has any cross-label edge (a single-relation
//! database — nothing joins), the tuple follows its highest-degree **light**
//! anchor instead: "light" borrows the paper's §6.1.2 heavy/light split — an
//! anchor whose degree exceeds [`HEAVY_ANCHOR_FACTOR`]× the mean anchor
//! degree is a hot literal and clustering on it only piles one relation onto
//! one machine; among the light anchors the most shared value wins, and
//! tuples whose anchors are all heavy follow their lightest anchor.
//!
//! A balance cap ([`DEFAULT_BALANCE_SLACK`] over the ideal load) bounds the
//! skew clustering can introduce: when the preferred machine is full, the
//! vertex falls back to the least-loaded machine, which is always under the
//! cap.

use super::refine::{EdgeImportance, WeightModel};
use super::{balance_cap, hash_machine, Partitioning, DEFAULT_BALANCE_SLACK};
use crate::graph::{Graph, VertexId};

/// An anchor heavier than this multiple of the mean anchor degree is treated
/// as a hot literal rather than a join key.
pub const HEAVY_ANCHOR_FACTOR: usize = 8;

pub(super) fn co_locate(
    graph: &Graph,
    machines: usize,
    is_anchor: &dyn Fn(VertexId) -> bool,
) -> Partitioning {
    co_locate_with(graph, machines, is_anchor, &WeightModel::Static(EdgeImportance::build(graph)))
}

/// [`co_locate`] under an explicit edge-weight model (the `Workload`
/// strategy swaps in observed per-label traffic weights; everything else —
/// anchor hash placement, heavy/light fallback, balance cap — is shared).
pub(super) fn co_locate_with(
    graph: &Graph,
    machines: usize,
    is_anchor: &dyn Fn(VertexId) -> bool,
    weights: &WeightModel,
) -> Partitioning {
    let n = graph.vertex_count();
    let cap = balance_cap(n, machines, DEFAULT_BALANCE_SLACK);
    let mut machine_of = vec![0u16; n];
    let mut load = vec![0usize; machines];

    // Pass 1: anchors hash-place (the attribute side stays spread out),
    // spilling to the least-loaded machine when a hash collision would
    // breach the balance cap — so the cap holds even on anchor-heavy graphs.
    let mut anchor = vec![false; n];
    let (mut anchors, mut anchor_degree_sum) = (0usize, 0usize);
    for v in graph.vertices() {
        if is_anchor(v) {
            anchor[v as usize] = true;
            anchors += 1;
            anchor_degree_sum += graph.degree(v);
            let preferred = hash_machine(v, machines);
            let m = if load[preferred as usize] < cap { preferred } else { least_loaded(&load) };
            machine_of[v as usize] = m;
            load[m as usize] += 1;
        }
    }
    let mean_degree = if anchors == 0 { 0 } else { anchor_degree_sum.div_ceil(anchors) };
    let theta = (HEAVY_ANCHOR_FACTOR * mean_degree).max(1);

    // Pass 2: everyone else follows its best-scoring anchor neighbour (ties
    // break toward the lower vertex id — deterministic): first by traffic
    // score, then — when no anchor has cross-label traffic — the
    // highest-degree light anchor, then the lightest heavy anchor, then hash
    // placement when no anchor neighbour exists at all.
    for v in graph.vertices() {
        if anchor[v as usize] {
            continue;
        }
        let mut scored: Option<(VertexId, f64)> = None; // max traffic score
        let mut light: Option<(VertexId, usize)> = None; // light: max degree
        let mut lightest: Option<(VertexId, usize)> = None; // heavy fallback
        for e in graph.out_edges(v) {
            if !anchor[e.target as usize] {
                continue;
            }
            let w = weights.weight(graph, v, e);
            if w > 0.0 && scored.is_none_or(|(st, sw)| w > sw || (w == sw && e.target < st)) {
                scored = Some((e.target, w));
            }
            let d = graph.degree(e.target);
            if d <= theta {
                if light.is_none_or(|(bt, bd)| d > bd || (d == bd && e.target < bt)) {
                    light = Some((e.target, d));
                }
            } else if lightest.is_none_or(|(lt, ld)| d < ld || (d == ld && e.target < lt)) {
                lightest = Some((e.target, d));
            }
        }
        let preferred =
            match scored.map(|(a, _)| a).or(light.map(|(a, _)| a)).or(lightest.map(|(a, _)| a)) {
                Some(a) => machine_of[a as usize],
                None => hash_machine(v, machines),
            };
        let m = if load[preferred as usize] < cap {
            preferred
        } else {
            least_loaded(&load) // always under cap: m*cap > n
        };
        machine_of[v as usize] = m;
        load[m as usize] += 1;
    }

    Partitioning { machine_of, machines }
}

/// Index of the least-loaded machine (lowest id on ties).
fn least_loaded(load: &[usize]) -> u16 {
    let mut best = 0usize;
    for (m, &l) in load.iter().enumerate() {
        if l < load[best] {
            best = m;
        }
    }
    best as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn tuples_follow_highest_degree_anchor() {
        // t0 links to a1 (degree 1) and a2 (degree 2): t0 must sit with a2.
        let mut b = GraphBuilder::new();
        let lt = b.vertex_label("t");
        let la = b.vertex_label("@a");
        let e = b.edge_label("t.x");
        let t0 = b.add_vertex(lt);
        let t1 = b.add_vertex(lt);
        let a1 = b.add_vertex(la);
        let a2 = b.add_vertex(la);
        b.add_undirected_edge(t0, a1, e);
        b.add_undirected_edge(t0, a2, e);
        b.add_undirected_edge(t1, a2, e);
        let g = b.finish();
        let p = co_locate(&g, 2, &|v| g.label_of(v) == la);
        assert_eq!(p.machine_of(t0), p.machine_of(a2));
        assert_eq!(p.machine_of(t1), p.machine_of(a2));
    }

    #[test]
    fn heavy_anchors_are_skipped_for_light_join_keys() {
        // 40 tuples all share one hot anchor (degree 40); each pair of
        // tuples also shares a selective anchor (degree 2). The hot anchor
        // is heavy (40 > 8 * mean), so tuples must follow their pair anchor.
        let mut b = GraphBuilder::new();
        let lt = b.vertex_label("t");
        let la = b.vertex_label("@a");
        let e = b.edge_label("t.x");
        let hot = b.add_vertex(la);
        let mut pairs = Vec::new();
        for _ in 0..20 {
            let pair = b.add_vertex(la);
            for _ in 0..2 {
                let t = b.add_vertex(lt);
                b.add_undirected_edge(t, hot, e);
                b.add_undirected_edge(t, pair, e);
            }
            pairs.push(pair);
        }
        let g = b.finish();
        // mean anchor degree = (40 + 20*2)/21 = 4 (ceil), theta = 32 < 40.
        let p = co_locate(&g, 4, &|v| g.label_of(v) == la);
        let colocated: usize = pairs
            .iter()
            .map(|&pair| {
                g.out_edges(pair)
                    .iter()
                    .filter(|e| p.machine_of(e.target) == p.machine_of(pair))
                    .count()
            })
            .sum();
        // All 40 tuples follow their pair anchor, minus the few the balance
        // cap may spill to the least-loaded machine.
        assert!(colocated >= 32, "only {colocated}/40 tuples with their pair anchor");
    }

    #[test]
    fn join_values_beat_same_relation_literals() {
        // An r-tuple links to a join value (one r.k edge + one s.k partner)
        // and to a far more shared literal carrying only r.lit edges. The
        // join value must win the anchor race despite its lower degree.
        let mut b = GraphBuilder::new();
        let lr = b.vertex_label("r");
        let ls = b.vertex_label("s");
        let la = b.vertex_label("@a");
        let rk = b.edge_label("r.k");
        let sk = b.edge_label("s.k");
        let rlit = b.edge_label("r.lit");
        let join_val = b.add_vertex(la);
        let lit_val = b.add_vertex(la);
        let r0 = b.add_vertex(lr);
        b.add_undirected_edge(r0, join_val, rk);
        b.add_undirected_edge(r0, lit_val, rlit);
        let s0 = b.add_vertex(ls);
        b.add_undirected_edge(s0, join_val, sk);
        for _ in 0..8 {
            let r = b.add_vertex(lr);
            b.add_undirected_edge(r, lit_val, rlit);
        }
        let g = b.finish();
        let p = co_locate(&g, 3, &|v| g.label_of(v) == la);
        assert_eq!(p.machine_of(r0), p.machine_of(join_val));
        assert_eq!(p.machine_of(s0), p.machine_of(join_val));
    }

    #[test]
    fn isolated_vertices_hash_place() {
        let mut b = GraphBuilder::new();
        let lt = b.vertex_label("t");
        for _ in 0..100 {
            b.add_vertex(lt);
        }
        let g = b.finish();
        // No anchors at all: everything falls back to hash placement, within
        // the balance cap.
        let p = co_locate(&g, 4, &|_| false);
        let cap = balance_cap(100, 4, DEFAULT_BALANCE_SLACK);
        assert!(p.load().into_iter().max().unwrap() <= cap);
        assert_eq!(p.load().iter().sum::<usize>(), 100);
    }

    #[test]
    fn anchor_hash_collisions_respect_the_cap() {
        // 3 anchors + 1 tuple on 5 machines: cap = 1, so colliding anchor
        // hashes must spill to least-loaded machines instead of stacking.
        let mut b = GraphBuilder::new();
        let lt = b.vertex_label("t");
        let la = b.vertex_label("@a");
        let e = b.edge_label("t.x");
        let t = b.add_vertex(lt);
        for _ in 0..3 {
            let a = b.add_vertex(la);
            b.add_undirected_edge(t, a, e);
        }
        let g = b.finish();
        let p = co_locate(&g, 5, &|v| g.label_of(v) == la);
        let cap = balance_cap(4, 5, DEFAULT_BALANCE_SLACK);
        assert_eq!(cap, 1);
        assert!(p.load().into_iter().max().unwrap() <= cap, "load {:?}", p.load());
    }

    #[test]
    fn hot_anchor_respects_cap() {
        // One anchor with 99 leaves on 3 machines: the anchor's machine takes
        // at most the cap; the rest spill to the least-loaded machines.
        let mut b = GraphBuilder::new();
        let lt = b.vertex_label("t");
        let la = b.vertex_label("@a");
        let e = b.edge_label("t.x");
        let a = b.add_vertex(la);
        for _ in 0..99 {
            let t = b.add_vertex(lt);
            b.add_undirected_edge(t, a, e);
        }
        let g = b.finish();
        let p = co_locate(&g, 3, &|v| g.label_of(v) == la);
        let cap = balance_cap(100, 3, DEFAULT_BALANCE_SLACK);
        let load = p.load();
        assert_eq!(load.iter().sum::<usize>(), 100);
        assert!(load.into_iter().max().unwrap() <= cap);
    }
}
