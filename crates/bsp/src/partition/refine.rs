//! Greedy label-propagation refinement of a machine assignment.
//!
//! Classic edge-cut minimization (Raghavan et al.'s label propagation, with
//! the balance constraint of METIS-style refinement): sweep the vertices in
//! id order; each vertex tallies its neighbours' machines and moves to the
//! winning machine when that strictly improves its local score and the
//! target machine has room under the balance cap. Loads update live, so a
//! sweep never overshoots the cap, and the fixed sweep order plus
//! strict-improvement rule make the outcome deterministic.
//!
//! Votes are **traffic-weighted** by default, using [`EdgeImportance`]: edge
//! labels of the form `R.A` are grouped into *families* by their `R.`
//! prefix (the relation, in TAG terms), and an endpoint `y` of an edge in
//! family `F` contributes `crossdeg_F(y) / deg(y)²` to the edge's weight,
//! where `crossdeg_F(y)` counts `y`'s edges *outside* family `F`:
//!
//! * the *cross-family fraction* `crossdeg_F(y) / deg(y)` measures how much
//!   of the endpoint's traffic continues into a different relation. On a TAG
//!   this is precisely what makes a value a join hop: an `l_orderkey` edge
//!   into a value with an `o_orderkey` partner carries traversal traffic,
//!   while a hot literal (a `quantity` of 17) or a date shared only between
//!   `lineitem` date columns routes nothing across relations; and
//! * the *selectivity discount* `1/deg(y)` — a value shared by a handful of
//!   tuples pulls much harder than one shared by thousands.
//!
//! The weight is the sum over both endpoints, so both directions of an
//! undirected edge agree and the sweep descends on a single weighted-cut
//! objective. A tuple vertex's edges are all in its own relation's family,
//! so its side contributes 0 and the weight reduces to the attribute side —
//! no TAG-specific knowledge needed beyond the `R.A` label convention.
//! Setting [`RefineConfig::traffic_weighted`] to `false` recovers plain
//! neighbour-majority voting (every edge votes 1), the textbook
//! cut-minimizing refinement.

use super::{balance_cap, Partitioning, DEFAULT_BALANCE_SLACK};
use crate::graph::{Edge, Graph, VertexId};
use crate::interner::LabelId;
use vcsql_relation::FxHashMap;

/// Tuning for [`Partitioning::greedy_refine`].
#[derive(Debug, Clone, Copy)]
pub struct RefineConfig {
    /// Maximum full sweeps over the vertex set (stops early when a sweep
    /// moves nothing).
    pub rounds: usize,
    /// Relative headroom over the ideal per-machine load.
    pub balance_slack: f64,
    /// Weight votes by cross-family fraction × selectivity (see module docs)
    /// instead of 1 per edge.
    pub traffic_weighted: bool,
}

impl Default for RefineConfig {
    fn default() -> RefineConfig {
        RefineConfig { rounds: 8, balance_slack: DEFAULT_BALANCE_SLACK, traffic_weighted: true }
    }
}

/// Precomputed per-vertex label-family degree table backing the traffic
/// weights (see module docs). Built once per graph in O(edges).
pub(super) struct EdgeImportance {
    /// Edge label id -> family id (labels sharing a `R.` prefix).
    family_of_label: Vec<u32>,
    /// Per-vertex slices into `pairs`.
    offsets: Vec<u32>,
    /// `(family, count)` runs, sorted by family within each vertex's slice.
    pairs: Vec<(u32, u32)>,
}

impl EdgeImportance {
    pub(super) fn build(graph: &Graph) -> EdgeImportance {
        let nlabels = graph.edge_labels().len();
        let mut family_ids: FxHashMap<String, u32> = FxHashMap::default();
        let mut family_of_label = Vec::with_capacity(nlabels);
        for l in 0..nlabels {
            let name = graph.edge_label_name(crate::LabelId(l as u32));
            let prefix = name.split_once('.').map_or(name, |(r, _)| r);
            let next = family_ids.len() as u32;
            family_of_label.push(*family_ids.entry(prefix.to_string()).or_insert(next));
        }
        let mut offsets = Vec::with_capacity(graph.vertex_count() + 1);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut scratch: Vec<(u32, u32)> = Vec::new();
        offsets.push(0);
        for v in graph.vertices() {
            scratch.clear();
            for e in graph.out_edges(v) {
                let f = family_of_label[e.label.0 as usize];
                match scratch.iter_mut().find(|(sf, _)| *sf == f) {
                    Some((_, c)) => *c += 1,
                    None => scratch.push((f, 1)),
                }
            }
            scratch.sort_unstable();
            pairs.extend_from_slice(&scratch);
            offsets.push(pairs.len() as u32);
        }
        EdgeImportance { family_of_label, offsets, pairs }
    }

    /// Edges of `v` outside family `family`.
    #[inline]
    fn cross_degree(&self, graph: &Graph, v: VertexId, family: u32) -> u32 {
        let slice =
            &self.pairs[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize];
        let same = match slice.binary_search_by_key(&family, |&(f, _)| f) {
            Ok(i) => slice[i].1,
            Err(_) => 0,
        };
        graph.degree(v) as u32 - same
    }

    /// The symmetric vote weight of edge `e` out of `source` (see module
    /// docs). Zero when neither endpoint has cross-family traffic.
    #[inline]
    pub(super) fn weight(&self, graph: &Graph, source: VertexId, e: &Edge) -> f64 {
        let family = self.family_of_label[e.label.0 as usize];
        let side = |y: VertexId| {
            let d = graph.degree(y);
            if d == 0 {
                return 0.0;
            }
            self.cross_degree(graph, y, family) as f64 / (d as f64 * d as f64)
        };
        side(source) + side(e.target)
    }
}

/// How much one edge's endpoints pull toward sharing a machine. Shared by
/// the co-location seed and the label-propagation refinement, so both
/// descend on one weighted-cut objective per strategy:
///
/// * `Uniform` — every edge votes 1 (textbook label propagation);
/// * `Static` — the cross-family × selectivity score of [`EdgeImportance`]
///   (see module docs), derived from graph shape alone;
/// * `Observed` — workload-aware: a per-edge-label weight measured from a
///   calibration run's `TrafficProfile` (normalized to `[0, 1]`, times the
///   same `1/deg` selectivity discount on both endpoints so selective join
///   values pull hardest), falling back to the static score for labels the
///   profile never saw. Labels the profile *did* see carrying nothing weigh
///   exactly 0 — the placement ignores columns the workload never traverses.
pub(super) enum WeightModel {
    Uniform,
    Static(EdgeImportance),
    Observed {
        /// Per-label normalized traffic weight, indexed by `LabelId`;
        /// `None` = label not covered by the profile (use the fallback).
        norm: Vec<Option<f64>>,
        fallback: EdgeImportance,
    },
}

impl WeightModel {
    /// Vote weight of edge `e` out of `source` (symmetric in the endpoints).
    #[inline]
    pub(super) fn weight(&self, graph: &Graph, source: VertexId, e: &Edge) -> f64 {
        match self {
            WeightModel::Uniform => 1.0,
            WeightModel::Static(imp) => imp.weight(graph, source, e),
            WeightModel::Observed { norm, fallback } => {
                match norm.get(e.label.0 as usize).copied().flatten() {
                    Some(w) => {
                        let side = |y: VertexId| {
                            let d = graph.degree(y);
                            if d == 0 {
                                0.0
                            } else {
                                1.0 / d as f64
                            }
                        };
                        w * (side(source) + side(e.target))
                    }
                    None => fallback.weight(graph, source, e),
                }
            }
        }
    }

    /// The model `config` asks for when no observed profile is in play.
    pub(super) fn for_config(graph: &Graph, config: &RefineConfig) -> WeightModel {
        if config.traffic_weighted {
            WeightModel::Static(EdgeImportance::build(graph))
        } else {
            WeightModel::Uniform
        }
    }

    /// Workload-aware model: `label_weight[l]` is the observed normalized
    /// weight of edge label `l` (`None` = unseen, static fallback).
    pub(super) fn observed(graph: &Graph, label_weight: Vec<Option<f64>>) -> WeightModel {
        debug_assert_eq!(label_weight.len(), graph.edge_labels().len());
        let _ = LabelId::NONE; // labels indexing `norm` are dense graph ids
        WeightModel::Observed { norm: label_weight, fallback: EdgeImportance::build(graph) }
    }
}

pub(super) fn greedy_refine(
    seed: &Partitioning,
    graph: &Graph,
    config: RefineConfig,
) -> Partitioning {
    greedy_refine_with(seed, graph, config, &WeightModel::for_config(graph, &config))
}

pub(super) fn greedy_refine_with(
    seed: &Partitioning,
    graph: &Graph,
    config: RefineConfig,
    weights: &WeightModel,
) -> Partitioning {
    let n = graph.vertex_count();
    let machines = seed.machines();
    let mut p = seed.clone();
    if n == 0 || machines <= 1 {
        return p;
    }
    // A seed may already exceed the cap (it can come from any source); moves
    // *into* an over-cap machine are blocked, moves away are free, so loads
    // only ever approach the cap from above.
    let cap = balance_cap(n, machines, config.balance_slack);
    let mut load = p.load();

    // Scratch tally, reset per vertex via the touched list (machines can be
    // large; neighbours touch only a few).
    let mut score = vec![0.0f64; machines];
    let mut touched: Vec<u16> = Vec::new();

    for _ in 0..config.rounds {
        let mut moves = 0usize;
        for v in graph.vertices() {
            let edges = graph.out_edges(v);
            if edges.is_empty() {
                continue;
            }
            for e in edges {
                let w = weights.weight(graph, v, e);
                if w == 0.0 {
                    continue;
                }
                let m = p.machine_of[e.target as usize];
                if score[m as usize] == 0.0 {
                    touched.push(m);
                }
                score[m as usize] += w;
            }
            let cur = p.machine_of[v as usize];
            let cur_score = score[cur as usize];
            // Winner: highest score, lowest machine id on ties.
            let mut best = cur;
            let mut best_score = cur_score;
            touched.sort_unstable();
            for &m in &touched {
                if score[m as usize] > best_score + 1e-12 && load[m as usize] < cap {
                    best = m;
                    best_score = score[m as usize];
                }
            }
            for m in touched.drain(..) {
                score[m as usize] = 0.0;
            }
            if best != cur {
                p.machine_of[v as usize] = best;
                load[cur as usize] -= 1;
                load[best as usize] += 1;
                moves += 1;
            }
        }
        if moves == 0 {
            break;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, VertexId};

    /// Two cliques of `k` vertices joined by one bridge edge.
    fn two_cliques(k: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let l = b.vertex_label("v");
        let e = b.edge_label("e");
        for _ in 0..2 * k {
            b.add_vertex(l);
        }
        for side in 0..2 {
            let base = side * k;
            for i in 0..k {
                for j in (i + 1)..k {
                    b.add_undirected_edge((base + i) as VertexId, (base + j) as VertexId, e);
                }
            }
        }
        b.add_undirected_edge(0, k as VertexId, e);
        b.finish()
    }

    #[test]
    fn refine_separates_cliques_from_a_bad_seed() {
        let g = two_cliques(8);
        // Worst-case seed: alternating machines.
        let seed =
            Partitioning::from_assignment((0..16).map(|v| (v % 2) as u16).collect::<Vec<u16>>(), 2);
        let cfg = RefineConfig { traffic_weighted: false, ..RefineConfig::default() };
        let refined = seed.greedy_refine(&g, cfg);
        let (ds, dr) = (seed.diagnostics(&g), refined.diagnostics(&g));
        assert!(dr.cut_edges < ds.cut_edges, "{ds:?} -> {dr:?}");
        // Each clique ends on one machine; only the bridge can cross.
        assert!(dr.cut_edges <= 2, "cut {dr:?}");
        assert_eq!(refined.load(), vec![8, 8]);
    }

    #[test]
    fn single_machine_is_a_fixed_point() {
        let g = two_cliques(4);
        let seed = Partitioning::hash(&g, 1);
        let refined = seed.greedy_refine(&g, RefineConfig::default());
        for v in g.vertices() {
            assert_eq!(refined.machine_of(v), 0);
        }
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = GraphBuilder::new().finish();
        let seed = Partitioning::hash(&g, 4);
        let refined = seed.greedy_refine(&g, RefineConfig::default());
        assert_eq!(refined.machines(), 4);
        assert_eq!(refined.load().iter().sum::<usize>(), 0);
    }

    #[test]
    fn moves_stop_at_the_balance_cap() {
        // A star: without a cap every leaf would join the hub's machine.
        let mut b = GraphBuilder::new();
        let l = b.vertex_label("v");
        let e = b.edge_label("e");
        let hub = b.add_vertex(l);
        for _ in 0..30 {
            let leaf = b.add_vertex(l);
            b.add_undirected_edge(hub, leaf, e);
        }
        let g = b.finish();
        let seed = Partitioning::hash(&g, 3);
        let cfg = RefineConfig { traffic_weighted: false, ..RefineConfig::default() };
        let refined = seed.greedy_refine(&g, cfg);
        let cap = balance_cap(31, 3, cfg.balance_slack);
        assert!(refined.load().into_iter().max().unwrap() <= cap);
    }
}
