//! Workload-aware placement from observed per-label traffic (the ROADMAP's
//! "derive per-edge-label weights from observed query-log traffic").
//!
//! The static strategies weigh an edge purely by graph shape
//! (`crossdeg_F(a)/deg(a)²` — see [`refine`](super::refine) module docs).
//! That treats every cross-relation column as equally join-worthy, but a real
//! workload is skewed: a TPC-H query log traverses `l_orderkey` constantly
//! and `l_suppkey` rarely, so a lineitem tuple is worth co-locating with its
//! order chain even when a supplier value looks equally shared. A
//! calibration run records exactly this skew: the engine attributes every
//! message to the edge label it travelled along, and the resulting
//! [`TrafficProfile`] maps label names to observed messages/bytes.
//!
//! This module turns a profile into the [`WeightModel::Observed`] edge
//! weights and reuses the whole co-locate + greedy-refine machinery under
//! them (same anchor hash placement, heavy/light fallback, and 20%-slack
//! balance cap as the static strategies):
//!
//! * a **seen** label weighs its observed bytes *per edge of that label*
//!   (total traffic would favour wide relations regardless of how hot each
//!   edge actually is), normalized by the hottest label to land in `[0, 1]`
//!   — the same scale as the static cross-family fraction, so seen and
//!   unseen labels remain comparable;
//! * an **unseen** label (absent from the profile — e.g. a column added
//!   after calibration, or a profile from a different schema) falls back to
//!   the static weight;
//! * a label the profile saw but that carried nothing weighs 0: the
//!   placement spends no locality on columns the workload never traverses.
//!
//! Like every strategy, the result is pure accounting — placements never
//! change results or message counts, only which traffic is network traffic.

use super::refine::{greedy_refine_with, RefineConfig, WeightModel};
use super::{colocate, Partitioning};
use crate::graph::{Graph, VertexId};
use crate::stats::TrafficProfile;

/// Build the workload-aware partitioning: co-location seed + greedy
/// refinement, both under observed traffic weights.
pub(super) fn workload_partition(
    graph: &Graph,
    machines: usize,
    is_anchor: &dyn Fn(VertexId) -> bool,
    profile: &TrafficProfile,
) -> Partitioning {
    let weights = WeightModel::observed(graph, label_weights(graph, profile));
    let seed = colocate::co_locate_with(graph, machines, is_anchor, &weights);
    greedy_refine_with(&seed, graph, RefineConfig::default(), &weights)
}

/// Per-`LabelId` normalized observed weight: `Some(bytes_per_edge / max)`
/// for profiled labels, `None` for labels the profile never saw.
fn label_weights(graph: &Graph, profile: &TrafficProfile) -> Vec<Option<f64>> {
    let nlabels = graph.edge_labels().len();
    // Directed edge count per label, to turn total traffic into per-edge heat.
    let mut edge_count = vec![0u64; nlabels];
    for v in graph.vertices() {
        for e in graph.out_edges(v) {
            edge_count[e.label.0 as usize] += 1;
        }
    }
    let mut per_edge: Vec<Option<f64>> = vec![None; nlabels];
    for (label, name) in graph.edge_labels().iter() {
        if let Some(t) = profile.get(name) {
            let edges = edge_count[label.0 as usize].max(1);
            per_edge[label.0 as usize] = Some(t.bytes as f64 / edges as f64);
        }
    }
    let max = per_edge.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
    if max > 0.0 {
        for w in per_edge.iter_mut().flatten() {
            *w /= max;
        }
    }
    per_edge
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::partition::PartitionStrategy;
    use crate::stats::LabelTraffic;

    /// Tuples of relation `r`, each linked to one `a`-value and one `b`-value
    /// anchor; both columns join into partner relations symmetrically, so
    /// static weights cannot tell them apart.
    fn two_column_graph() -> (Graph, Vec<(u32, u32, u32)>, crate::LabelId) {
        let mut b = GraphBuilder::new();
        let lr = b.vertex_label("r");
        let ls = b.vertex_label("s");
        let lt = b.vertex_label("t");
        let la = b.vertex_label("@v");
        let ra = b.edge_label("r.a");
        let rb = b.edge_label("r.b");
        let sa = b.edge_label("s.a");
        let tb = b.edge_label("t.b");
        let mut triples = Vec::new();
        for _ in 0..12 {
            let av = b.add_vertex(la);
            let bv = b.add_vertex(la);
            let r = b.add_vertex(lr);
            b.add_undirected_edge(r, av, ra);
            b.add_undirected_edge(r, bv, rb);
            // Symmetric partners: one s-tuple on the a-value, one t-tuple on
            // the b-value.
            let s = b.add_vertex(ls);
            b.add_undirected_edge(s, av, sa);
            let t = b.add_vertex(lt);
            b.add_undirected_edge(t, bv, tb);
            triples.push((r, av, bv));
        }
        (b.finish(), triples, la)
    }

    #[test]
    fn observed_traffic_steers_tuples_to_the_hot_column() {
        let (g, triples, la) = two_column_graph();
        let is_anchor = |v| g.label_of(v) == la;
        // The profiled workload hammers r.a/s.a and never touches r.b/t.b.
        let mut profile = TrafficProfile::new();
        profile.record("r.a", LabelTraffic { messages: 100, bytes: 8000, ..Default::default() });
        profile.record("s.a", LabelTraffic { messages: 100, bytes: 8000, ..Default::default() });
        profile.cover_graph(&g);
        let p = workload_partition(&g, 4, &is_anchor, &profile);
        let with_a =
            triples.iter().filter(|&&(r, av, _)| p.machine_of(r) == p.machine_of(av)).count();
        // Every r-tuple should sit with its a-value (modulo balance spill).
        assert!(with_a >= 10, "only {with_a}/12 tuples with their hot a-value");
    }

    #[test]
    fn empty_profile_falls_back_to_static_weights() {
        let (g, _, la) = two_column_graph();
        let is_anchor = |v| g.label_of(v) == la;
        let empty = workload_partition(&g, 3, &is_anchor, &TrafficProfile::new());
        let refined = PartitionStrategy::Refined.partition(&g, 3, &is_anchor);
        for v in g.vertices() {
            assert_eq!(empty.machine_of(v), refined.machine_of(v), "vertex {v}");
        }
    }

    #[test]
    fn zero_traffic_labels_lose_to_degree_fallback_not_to_noise() {
        // A profile covering the graph with all-zero traffic: no label has
        // observed weight, none falls back to static — tuples use the
        // heavy/light degree fallback, and the result is still valid and
        // deterministic.
        let (g, _, la) = two_column_graph();
        let is_anchor = |v| g.label_of(v) == la;
        let mut profile = TrafficProfile::new();
        profile.cover_graph(&g);
        let a = workload_partition(&g, 4, &is_anchor, &profile);
        let b = workload_partition(&g, 4, &is_anchor, &profile);
        assert_eq!(a.load().iter().sum::<usize>(), g.vertex_count());
        for v in g.vertices() {
            assert_eq!(a.machine_of(v), b.machine_of(v));
        }
    }

    #[test]
    fn label_weights_normalize_to_unit_max() {
        let (g, _, _) = two_column_graph();
        let mut profile = TrafficProfile::new();
        profile.record("r.a", LabelTraffic { messages: 10, bytes: 4000, ..Default::default() });
        profile.record("r.b", LabelTraffic { messages: 10, bytes: 1000, ..Default::default() });
        let w = label_weights(&g, &profile);
        let ra = g.edge_label_id("r.a").unwrap().0 as usize;
        let rb = g.edge_label_id("r.b").unwrap().0 as usize;
        let sa = g.edge_label_id("s.a").unwrap().0 as usize;
        assert_eq!(w[ra], Some(1.0));
        assert_eq!(w[rb], Some(0.25));
        assert_eq!(w[sa], None, "unseen label stays None");
    }
}
