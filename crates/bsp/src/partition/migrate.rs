//! Incremental vertex migration between two partitionings.
//!
//! Online repartitioning (the `vcsql-session` adaptation loop) never swaps a
//! placement wholesale: when the observed traffic profile drifts away from
//! the one the current placement was derived from, a *target* partitioning is
//! derived and the cluster walks toward it a bounded step at a time —
//! [`migrate_step`] moves at most `budget` vertices per call and never pushes
//! a machine above the balance cap, so each adaptation step has a bounded,
//! attributable network cost (every moved vertex ships its state across the
//! wire) and the cluster stays balanced mid-migration.
//!
//! Everything here is deterministic: vertices are considered in id order and
//! a move happens exactly when the target disagrees with the current
//! placement and the destination has cap headroom. Re-running the same step
//! from the same inputs reproduces the identical outcome.

use super::Partitioning;
use crate::graph::VertexId;

/// One vertex relocation performed by a migration step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationMove {
    /// The migrated vertex.
    pub vertex: VertexId,
    /// Machine it left.
    pub from: u16,
    /// Machine it now lives on.
    pub to: u16,
}

/// The outcome of one bounded migration step toward a target placement.
#[derive(Debug, Clone)]
pub struct MigrationStep {
    /// The placement after this step.
    pub partitioning: Partitioning,
    /// Moves performed, in vertex-id order (at most the step's budget).
    pub moves: Vec<MigrationMove>,
    /// Vertices still placed differently from the target after this step.
    /// `0` means the migration has converged. A step that performed no moves
    /// while `remaining > 0` is cap-blocked and will never make further
    /// progress (loads no longer change), so callers should treat that as
    /// converged-under-cap.
    pub remaining: usize,
}

/// Move at most `budget` vertices of `current` toward `target`, in vertex-id
/// order, skipping any move whose destination machine already holds `cap`
/// vertices. Panics if the two partitionings disagree on vertex count or
/// machine count, or if `budget` is zero (a zero budget can never make
/// progress — callers validate it up front).
pub fn migrate_step(
    current: &Partitioning,
    target: &Partitioning,
    budget: usize,
    cap: usize,
) -> MigrationStep {
    assert_eq!(
        current.machine_of.len(),
        target.machine_of.len(),
        "migration between partitionings of different graphs"
    );
    assert_eq!(current.machines, target.machines, "migration between different cluster sizes");
    assert!(budget > 0, "zero migration budget");

    let mut assignment = current.machine_of.clone();
    let mut load = current.load();
    let mut moves = Vec::new();
    let mut remaining = 0usize;
    for (v, (&cur, &tgt)) in current.machine_of.iter().zip(&target.machine_of).enumerate() {
        if cur == tgt {
            continue;
        }
        if moves.len() < budget && load[tgt as usize] < cap {
            assignment[v] = tgt;
            load[cur as usize] -= 1;
            load[tgt as usize] += 1;
            moves.push(MigrationMove { vertex: v as VertexId, from: cur, to: tgt });
        } else {
            remaining += 1;
        }
    }
    MigrationStep {
        partitioning: Partitioning { machine_of: assignment, machines: current.machines },
        moves,
        remaining,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(assignment: Vec<u16>, machines: usize) -> Partitioning {
        Partitioning::from_assignment(assignment, machines)
    }

    #[test]
    fn converges_to_target_within_budget_steps() {
        let current = part(vec![0, 0, 0, 0, 1, 1], 2);
        let target = part(vec![1, 1, 0, 0, 0, 1], 2);
        let step1 = migrate_step(&current, &target, 2, 6);
        assert_eq!(step1.moves.len(), 2);
        assert_eq!(step1.remaining, 1);
        let step2 = migrate_step(&step1.partitioning, &target, 2, 6);
        assert_eq!(step2.moves.len(), 1);
        assert_eq!(step2.remaining, 0);
        for v in 0..6 {
            assert_eq!(step2.partitioning.machine_of(v), target.machine_of(v));
        }
    }

    #[test]
    fn budget_bounds_each_step() {
        let current = part(vec![0; 10], 2);
        let target = part(vec![1; 10], 2);
        let step = migrate_step(&current, &target, 3, 100);
        assert_eq!(step.moves.len(), 3);
        assert_eq!(step.remaining, 7);
        // Moves happen in vertex-id order.
        assert_eq!(step.moves[0].vertex, 0);
        assert_eq!(step.moves[2].vertex, 2);
    }

    #[test]
    fn cap_blocks_overloading_moves() {
        // All six vertices want machine 1, but the cap holds four.
        let current = part(vec![0, 0, 0, 0, 1, 1], 2);
        let target = part(vec![1, 1, 1, 1, 1, 1], 2);
        let step = migrate_step(&current, &target, 100, 4);
        assert_eq!(step.moves.len(), 2, "only two cap slots were free on machine 1");
        assert_eq!(step.partitioning.load(), vec![2, 4]);
        assert_eq!(step.remaining, 2);
        // A follow-up step is cap-blocked: no moves, remaining unchanged —
        // the caller's signal to stop.
        let stuck = migrate_step(&step.partitioning, &target, 100, 4);
        assert!(stuck.moves.is_empty());
        assert_eq!(stuck.remaining, 2);
    }

    #[test]
    fn deterministic_and_noop_when_converged() {
        let current = part(vec![0, 1, 0, 1], 2);
        let target = part(vec![1, 1, 0, 0], 2);
        let a = migrate_step(&current, &target, 1, 4);
        let b = migrate_step(&current, &target, 1, 4);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.remaining, b.remaining);
        let done = migrate_step(&target, &target, 5, 4);
        assert!(done.moves.is_empty());
        assert_eq!(done.remaining, 0);
    }
}
