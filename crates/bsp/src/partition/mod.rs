//! Machine partitioning for distributed-cluster simulation.
//!
//! The engine itself is shared-memory; to study distributed behaviour
//! (Section 8.6 of the paper) we assign every vertex to one of `k` simulated
//! machines and have the engine count messages/bytes that cross machine
//! boundaries. This models the quantity the paper measures with `sar`: total
//! network traffic during query execution.
//!
//! Four placement strategies are provided (see [`PartitionStrategy`]):
//!
//! * [`Partitioning::hash`] — uniform hash placement, TigerGraph's untuned
//!   default and the baseline the paper ran under. On `m` machines roughly
//!   `(m-1)/m` of all edges cross a boundary.
//! * [`Partitioning::co_locate`] — every non-anchor vertex (a TAG *tuple*
//!   vertex) is placed on the machine of its best *anchor* neighbour (a TAG
//!   *attribute* vertex) by cross-relation traffic weight — the join value
//!   most likely to route traversal messages — while anchors themselves are
//!   hash placed. Guarantees at least one local incident edge per tuple
//!   while staying query-independent; see the [`colocate`](self) submodule.
//! * [`Partitioning::greedy_refine`] — a label-propagation pass over any
//!   starting assignment: vertices iteratively move to the machine holding
//!   the (degree-discounted) majority of their neighbours, subject to a
//!   balance cap. This is the classic edge-cut-minimizing refinement (a
//!   lightweight stand-in for METIS-style partitioning) and recovers most of
//!   the locality the paper's real cluster deployment enjoys.
//! * [`PartitionStrategy::Workload`] — the same co-locate + refine pipeline,
//!   but weighted by *observed* per-edge-label traffic from a calibration
//!   run's [`TrafficProfile`] instead of graph shape (see the
//!   [`workload`](self) submodule): columns the profiled workload actually
//!   traverses attract their tuples; columns it never touches attract
//!   nothing.
//!
//! Partitioning is pure accounting: strategies never change results or
//! message counts, only which messages are charged as network traffic
//! (`tests/robustness.rs`, `tests/partitioning.rs`).

mod colocate;
mod migrate;
mod refine;
mod workload;

pub use migrate::{migrate_step, MigrationMove, MigrationStep};
pub use refine::RefineConfig;

use crate::graph::{Graph, VertexId};
use crate::stats::TrafficProfile;
use std::hash::{Hash, Hasher};
use vcsql_relation::fx::FxHasher;

/// Default headroom over the ideal per-machine load that the locality-aware
/// strategies are allowed to use (20%).
pub const DEFAULT_BALANCE_SLACK: f64 = 0.2;

/// Magic first line of the [`Partitioning::to_text`] format.
const PARTITIONING_HEADER: &str = "vcsql-partitioning v1";

/// Per-machine vertex quota for `vertices` vertices on `machines` machines
/// with `slack` relative headroom over the ideal load. Always at least 1 and
/// at least the ceiling of the ideal load, so an assignment within the cap
/// exists for every input.
pub fn balance_cap(vertices: usize, machines: usize, slack: f64) -> usize {
    assert!(machines > 0, "balance_cap with zero machines");
    assert!(slack >= 0.0, "negative balance slack");
    let ideal = (vertices as f64 / machines as f64).ceil() as usize;
    let capped = ((vertices as f64) * (1.0 + slack) / machines as f64).ceil() as usize;
    capped.max(ideal).max(1)
}

/// Hash a vertex id to a machine (the shared fallback placement). FxHash's
/// low bits are weak on structured ids (e.g. every 6th vertex), so a
/// murmur-style finalizer mixes them before the modulo.
#[inline]
pub(crate) fn hash_machine(v: VertexId, machines: usize) -> u16 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    let mut x = h.finish();
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51afd7ed558ccd);
    x ^= x >> 33;
    (x % machines as u64) as u16
}

/// A pluggable vertex-placement strategy (ROADMAP: locality-aware TAG
/// partitioning). `Hash` is the paper's baseline; `CoLocate` and `Refined`
/// close the Section 8.6 traffic gap from graph shape alone; `Workload`
/// closes more of it from *observed* traffic (a calibration run's
/// [`TrafficProfile`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Uniform hash placement of every vertex.
    Hash,
    /// Tuple vertices follow their best attribute neighbour by
    /// cross-relation traffic weight.
    CoLocate,
    /// `CoLocate` seed refined by greedy label propagation.
    Refined,
    /// `Refined` machinery under observed per-edge-label traffic weights
    /// (see the [`workload`](self) submodule). With an empty profile every
    /// label falls back to the static weights, i.e. `Workload(default)`
    /// behaves exactly like `Refined`.
    Workload(TrafficProfile),
}

impl PartitionStrategy {
    /// The profile-free strategies, in baseline-first order (`Workload`
    /// needs a calibration profile and is constructed explicitly).
    pub const ALL: [PartitionStrategy; 3] =
        [PartitionStrategy::Hash, PartitionStrategy::CoLocate, PartitionStrategy::Refined];

    /// CLI-facing name (`--partitioning hash|colocate|refined|workload`).
    pub fn name(&self) -> &'static str {
        match self {
            PartitionStrategy::Hash => "hash",
            PartitionStrategy::CoLocate => "colocate",
            PartitionStrategy::Refined => "refined",
            PartitionStrategy::Workload(_) => "workload",
        }
    }

    /// Parse a CLI-facing name. `workload` parses to an **empty-profile**
    /// `Workload` (≡ `Refined`); callers are expected to swap in a real
    /// calibration profile via [`PartitionStrategy::with_profile`].
    pub fn parse(s: &str) -> Option<PartitionStrategy> {
        match s {
            "hash" => Some(PartitionStrategy::Hash),
            "colocate" | "co_locate" | "co-locate" => Some(PartitionStrategy::CoLocate),
            "refined" | "refine" => Some(PartitionStrategy::Refined),
            "workload" | "profiled" => Some(PartitionStrategy::Workload(TrafficProfile::new())),
            _ => None,
        }
    }

    /// For a `Workload` strategy, replace the profile; other strategies are
    /// returned unchanged (they have nothing to calibrate).
    pub fn with_profile(self, profile: TrafficProfile) -> PartitionStrategy {
        match self {
            PartitionStrategy::Workload(_) => PartitionStrategy::Workload(profile),
            other => other,
        }
    }

    /// Build a partitioning of `graph` over `machines` machines. `is_anchor`
    /// marks the vertices that hash-place and attract their neighbours (TAG
    /// attribute vertices); `Hash` ignores it.
    pub fn partition(
        &self,
        graph: &Graph,
        machines: usize,
        is_anchor: &dyn Fn(VertexId) -> bool,
    ) -> Partitioning {
        match self {
            PartitionStrategy::Hash => Partitioning::hash(graph, machines),
            PartitionStrategy::CoLocate => Partitioning::co_locate(graph, machines, is_anchor),
            PartitionStrategy::Refined => {
                assert!(machines > 0 && machines <= u16::MAX as usize);
                // One static weight model shared by both phases (building
                // the per-vertex family table is O(V+E); no need to pay it
                // twice on the same immutable graph).
                let weights = refine::WeightModel::for_config(graph, &RefineConfig::default());
                let seed = colocate::co_locate_with(graph, machines, is_anchor, &weights);
                refine::greedy_refine_with(&seed, graph, RefineConfig::default(), &weights)
            }
            PartitionStrategy::Workload(profile) => {
                assert!(machines > 0 && machines <= u16::MAX as usize);
                workload::workload_partition(graph, machines, is_anchor, profile)
            }
        }
    }
}

/// Quality measures of one partitioning over one graph: how much traffic a
/// traversal can avoid (edge cut) and how evenly work is spread (load).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionDiagnostics {
    /// Machines in the partitioning.
    pub machines: usize,
    /// Vertices assigned.
    pub vertices: usize,
    /// Directed edges whose endpoints live on different machines.
    pub cut_edges: usize,
    /// Total directed edges.
    pub total_edges: usize,
    /// `cut_edges / total_edges` (0 for an edgeless graph).
    pub edge_cut_fraction: f64,
    /// Largest per-machine vertex count.
    pub max_load: usize,
    /// Smallest per-machine vertex count.
    pub min_load: usize,
    /// `max_load / (vertices / machines)` — 1.0 is perfect balance.
    pub load_imbalance: f64,
}

/// An assignment of vertices to simulated machines.
#[derive(Debug, Clone)]
pub struct Partitioning {
    machine_of: Vec<u16>,
    machines: usize,
}

impl Partitioning {
    /// Hash-partition all vertices of a graph over `machines` machines —
    /// TigerGraph's default automatic partitioning, which the paper uses
    /// untuned ("We used TigerGraph's default automatic partitioning").
    pub fn hash(graph: &Graph, machines: usize) -> Partitioning {
        assert!(machines > 0 && machines <= u16::MAX as usize);
        let machine_of =
            (0..graph.vertex_count() as VertexId).map(|v| hash_machine(v, machines)).collect();
        Partitioning { machine_of, machines }
    }

    /// Locality-aware placement: anchors (TAG attribute vertices) hash-place;
    /// every other vertex follows its best anchor neighbour by cross-relation
    /// traffic weight (falling back to the highest-degree light anchor when
    /// nothing joins), under the default balance cap. See the `colocate`
    /// submodule docs for the weighting.
    pub fn co_locate(
        graph: &Graph,
        machines: usize,
        is_anchor: &dyn Fn(VertexId) -> bool,
    ) -> Partitioning {
        assert!(machines > 0 && machines <= u16::MAX as usize);
        colocate::co_locate(graph, machines, is_anchor)
    }

    /// Refine this partitioning by greedy label propagation: vertices move to
    /// the machine holding the weighted majority of their neighbours, subject
    /// to `config`'s balance cap. Returns the refined assignment.
    pub fn greedy_refine(&self, graph: &Graph, config: RefineConfig) -> Partitioning {
        assert_eq!(
            self.machine_of.len(),
            graph.vertex_count(),
            "partitioning built for a different graph"
        );
        refine::greedy_refine(self, graph, config)
    }

    /// Build from an explicit assignment.
    pub fn from_assignment(machine_of: Vec<u16>, machines: usize) -> Partitioning {
        assert!(machine_of.iter().all(|&m| (m as usize) < machines));
        Partitioning { machine_of, machines }
    }

    /// The machine hosting vertex `v`.
    #[inline]
    pub fn machine_of(&self, v: VertexId) -> u16 {
        self.machine_of[v as usize]
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// True iff `a` and `b` are on different machines (i.e. a message between
    /// them would use the network).
    #[inline]
    pub fn crosses(&self, a: VertexId, b: VertexId) -> bool {
        self.machine_of[a as usize] != self.machine_of[b as usize]
    }

    /// Number of vertices per machine (for balance diagnostics).
    pub fn load(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.machines];
        for &m in &self.machine_of {
            counts[m as usize] += 1;
        }
        counts
    }

    /// Serialize to a line-oriented text format (the placement half of a
    /// durable session profile; the traffic half is
    /// [`TrafficProfile::to_text`]):
    ///
    /// ```text
    /// vcsql-partitioning v1
    /// machines <m>
    /// vertices <n>
    /// <machine ids in vertex-id order, whitespace-separated>
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{PARTITIONING_HEADER}\nmachines {}\nvertices {}\n",
            self.machines,
            self.machine_of.len()
        );
        for chunk in self.machine_of.chunks(32) {
            let line: Vec<String> = chunk.iter().map(|m| m.to_string()).collect();
            out.push_str(&line.join(" "));
            out.push('\n');
        }
        out
    }

    /// Parse the [`Partitioning::to_text`] format. Blank lines and `#`
    /// comments are skipped (before the header too). Errors on a bad header,
    /// a machine id outside `0..machines`, or a vertex count mismatch — a
    /// saved placement only fits the graph it was built for.
    pub fn from_text(text: &str) -> Result<Partitioning, String> {
        let mut lines =
            text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some(PARTITIONING_HEADER) => {}
            other => {
                return Err(format!(
                    "bad partitioning header: {other:?} (want {PARTITIONING_HEADER:?})"
                ))
            }
        }
        let field = |line: Option<&str>, key: &str| -> Result<usize, String> {
            let line = line.ok_or_else(|| format!("missing `{key}` line"))?;
            match line.split_whitespace().collect::<Vec<_>>().as_slice() {
                [k, v] if *k == key => {
                    v.parse::<usize>().map_err(|_| format!("bad {key} count `{v}`"))
                }
                _ => Err(format!("bad `{key}` line: `{line}`")),
            }
        };
        let machines = field(lines.next(), "machines")?;
        if machines == 0 || machines > u16::MAX as usize {
            return Err(format!("machine count {machines} outside 1..={}", u16::MAX));
        }
        let vertices = field(lines.next(), "vertices")?;
        let mut machine_of = Vec::with_capacity(vertices);
        for token in lines.flat_map(str::split_whitespace) {
            let m = token.parse::<u16>().map_err(|_| format!("bad machine id `{token}`"))?;
            if (m as usize) >= machines {
                return Err(format!("machine id {m} outside 0..{machines}"));
            }
            machine_of.push(m);
        }
        if machine_of.len() != vertices {
            return Err(format!(
                "vertex count mismatch: header says {vertices}, found {}",
                machine_of.len()
            ));
        }
        Ok(Partitioning { machine_of, machines })
    }

    /// Edge-cut and load-balance diagnostics against the graph this
    /// partitioning was built for.
    pub fn diagnostics(&self, graph: &Graph) -> PartitionDiagnostics {
        assert_eq!(self.machine_of.len(), graph.vertex_count());
        let mut cut = 0usize;
        for v in graph.vertices() {
            for e in graph.out_edges(v) {
                if self.crosses(v, e.target) {
                    cut += 1;
                }
            }
        }
        let total = graph.edge_count();
        let load = self.load();
        let (max_load, min_load) =
            (load.iter().copied().max().unwrap_or(0), load.iter().copied().min().unwrap_or(0));
        let ideal = self.machine_of.len() as f64 / self.machines as f64;
        PartitionDiagnostics {
            machines: self.machines,
            vertices: self.machine_of.len(),
            cut_edges: cut,
            total_edges: total,
            edge_cut_fraction: if total == 0 { 0.0 } else { cut as f64 / total as f64 },
            max_load,
            min_load,
            load_imbalance: if ideal == 0.0 { 1.0 } else { max_load as f64 / ideal },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let l = b.vertex_label("v");
        for _ in 0..n {
            b.add_vertex(l);
        }
        b.finish()
    }

    /// A bipartite "TAG-shaped" graph: `groups` stars, each with one anchor
    /// (label "@a") and `leaves` tuple vertices (label "t") connected to it.
    fn star_graph(groups: usize, leaves: usize) -> (Graph, crate::LabelId) {
        let mut b = GraphBuilder::new();
        let lt = b.vertex_label("t");
        let la = b.vertex_label("@a");
        let e = b.edge_label("t.a");
        for _ in 0..groups {
            let a = b.add_vertex(la);
            for _ in 0..leaves {
                let t = b.add_vertex(lt);
                b.add_undirected_edge(t, a, e);
            }
        }
        (b.finish(), la)
    }

    #[test]
    fn hash_partition_is_roughly_balanced() {
        let g = graph(10_000);
        let p = Partitioning::hash(&g, 6);
        let load = p.load();
        assert_eq!(load.iter().sum::<usize>(), 10_000);
        for &l in &load {
            // Within 25% of the ideal 1667 — hash balance, not perfection.
            assert!(l > 1200 && l < 2200, "unbalanced: {load:?}");
        }
    }

    #[test]
    fn crossing_detection() {
        let p = Partitioning::from_assignment(vec![0, 0, 1], 2);
        assert!(!p.crosses(0, 1));
        assert!(p.crosses(0, 2));
        assert_eq!(p.machine_of(2), 1);
    }

    #[test]
    #[should_panic]
    fn bad_assignment_panics() {
        Partitioning::from_assignment(vec![0, 3], 2);
    }

    #[test]
    fn balance_cap_bounds() {
        assert_eq!(balance_cap(0, 4, 0.2), 1);
        assert_eq!(balance_cap(100, 4, 0.0), 25);
        assert_eq!(balance_cap(100, 4, 0.2), 30);
        // Never below the ceiling of the ideal load.
        assert!(balance_cap(5, 4, 0.0) >= 2);
    }

    #[test]
    fn colocate_keeps_stars_local() {
        let (g, anchor_label) = star_graph(60, 5);
        let p = Partitioning::co_locate(&g, 4, &|v| g.label_of(v) == anchor_label);
        // Every leaf sits with its anchor unless the balance cap interfered;
        // with 60 well-spread anchors the cut must be far below hash's 3/4.
        let d = p.diagnostics(&g);
        assert!(d.edge_cut_fraction < 0.25, "cut {:.2}", d.edge_cut_fraction);
        assert_eq!(p.load().iter().sum::<usize>(), g.vertex_count());
        let cap = balance_cap(g.vertex_count(), 4, DEFAULT_BALANCE_SLACK);
        assert!(d.max_load <= cap, "load {} over cap {cap}", d.max_load);
    }

    #[test]
    fn refine_never_worsens_star_cut() {
        let (g, anchor_label) = star_graph(40, 6);
        let seed = Partitioning::co_locate(&g, 3, &|v| g.label_of(v) == anchor_label);
        let refined = seed.greedy_refine(&g, RefineConfig::default());
        let (ds, dr) = (seed.diagnostics(&g), refined.diagnostics(&g));
        assert!(dr.cut_edges <= ds.cut_edges, "refine worsened cut: {ds:?} -> {dr:?}");
        assert_eq!(refined.load().iter().sum::<usize>(), g.vertex_count());
    }

    #[test]
    fn refine_respects_balance_cap() {
        let (g, anchor_label) = star_graph(10, 10);
        let seed = Partitioning::co_locate(&g, 4, &|v| g.label_of(v) == anchor_label);
        let cfg = RefineConfig::default();
        let refined = seed.greedy_refine(&g, cfg);
        let cap = balance_cap(g.vertex_count(), 4, cfg.balance_slack)
            .max(seed.load().into_iter().max().unwrap_or(0));
        assert!(refined.load().into_iter().max().unwrap() <= cap);
    }

    #[test]
    fn strategies_parse_and_roundtrip_names() {
        for s in PartitionStrategy::ALL {
            assert_eq!(PartitionStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(PartitionStrategy::parse("metis"), None);
    }

    #[test]
    fn strategy_partition_is_deterministic() {
        let (g, anchor_label) = star_graph(20, 4);
        for s in PartitionStrategy::ALL {
            let a = s.partition(&g, 5, &|v| g.label_of(v) == anchor_label);
            let b = s.partition(&g, 5, &|v| g.label_of(v) == anchor_label);
            for v in g.vertices() {
                assert_eq!(a.machine_of(v), b.machine_of(v), "{} not deterministic", s.name());
            }
        }
    }

    #[test]
    fn partitioning_roundtrips_through_text() {
        let g = graph(100);
        let p = Partitioning::hash(&g, 7);
        let text = p.to_text();
        let q = Partitioning::from_text(&text).unwrap();
        assert_eq!(q.machines(), 7);
        for v in g.vertices() {
            assert_eq!(p.machine_of(v), q.machine_of(v));
        }
        // Comments and banners are tolerated, like the profile format.
        let banner = format!("# saved placement\n{text}");
        assert_eq!(Partitioning::from_text(&banner).unwrap().machines(), 7);
    }

    #[test]
    fn partitioning_rejects_malformed_text() {
        assert!(Partitioning::from_text("").is_err());
        assert!(Partitioning::from_text("not-a-partitioning\n").is_err());
        assert!(Partitioning::from_text("vcsql-partitioning v1\nmachines 0\nvertices 0\n").is_err());
        assert!(Partitioning::from_text("vcsql-partitioning v1\nmachines 2\n").is_err());
        // Machine id out of range.
        assert!(
            Partitioning::from_text("vcsql-partitioning v1\nmachines 2\nvertices 1\n5\n").is_err()
        );
        // Vertex count mismatch.
        assert!(Partitioning::from_text("vcsql-partitioning v1\nmachines 2\nvertices 3\n0 1\n")
            .is_err());
        // Non-numeric machine id.
        assert!(
            Partitioning::from_text("vcsql-partitioning v1\nmachines 2\nvertices 1\nx\n").is_err()
        );
    }

    #[test]
    fn diagnostics_on_explicit_assignment() {
        let (g, _) = star_graph(1, 2); // a0 with leaves 1, 2 (ids 0,1,2)
        let p = Partitioning::from_assignment(vec![0, 0, 1], 2);
        let d = p.diagnostics(&g);
        assert_eq!(d.total_edges, 4);
        assert_eq!(d.cut_edges, 2); // the 0-2 undirected edge, both directions
        assert!((d.edge_cut_fraction - 0.5).abs() < 1e-12);
        assert_eq!((d.max_load, d.min_load), (2, 1));
        assert!((d.load_imbalance - 2.0 / 1.5).abs() < 1e-12);
    }
}
