//! The persistent worker runtime behind parallel supersteps.
//!
//! A [`WorkerPool`] owns `threads - 1` long-lived OS threads (the caller is
//! always worker 0), parked on a condvar between jobs. [`WorkerPool::run`]
//! dispatches one *epoch*: a borrowed `Fn(usize)` closure executed once per
//! participating worker index, with the caller blocked until every
//! participant has finished — a lightweight fork/join barrier that costs a
//! mutex hand-off instead of a `thread::spawn` + `join` per superstep phase.
//!
//! Lifecycle:
//!
//! * construction is free — threads are spawned lazily on the first `run`
//!   that actually needs them, so a pool attached to a computation that
//!   stays under the engine's sequential-fallback threshold never starts a
//!   thread;
//! * one pool serves any number of computations (a `Session` shares one
//!   across every query it executes), and `run` serializes concurrent
//!   callers, so sharing is safe;
//! * dropping the pool signals shutdown and joins every worker — no thread
//!   outlives the pool.
//!
//! # Safety
//!
//! `run` hands workers a *borrowed* closure through a type-erased pointer.
//! This is sound because `run` does not return until every participating
//! worker has finished the epoch (panics included: a panicking job is caught,
//! recorded, and re-raised on the caller after the barrier), so the closure —
//! and everything it borrows from the caller's stack — outlives every use.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::thread::JoinHandle;
use crate::sync::{Condvar, Mutex, MutexGuard};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A type-erased `&dyn Fn(usize)` that can cross the worker channel. The
/// epoch barrier in [`WorkerPool::run`] guarantees the pointee outlives
/// every call.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    // SAFETY: calling requires `data` to still point at the closure it was
    // erased from — guaranteed between dispatch and the epoch barrier.
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointer is only dereferenced between an epoch's dispatch and
// its completion barrier, while the caller (who owns the pointee) is blocked
// in `run`.
unsafe impl Send for Job {}

fn erase<F: Fn(usize) + Sync>(f: &F) -> Job {
    // SAFETY contract: `data` must be the `&F` this `Job` was erased from,
    // still live — upheld by the epoch barrier in `WorkerPool::run`.
    unsafe fn call<F: Fn(usize)>(data: *const (), worker: usize) {
        // SAFETY: `data` came from `erase(&F)` this epoch; the caller keeps
        // the closure alive until the epoch's barrier.
        unsafe { (*(data as *const F))(worker) }
    }
    Job { data: f as *const F as *const (), call: call::<F> }
}

/// Coordination state shared with the worker threads.
struct PoolState {
    /// Monotonic job counter; workers sleep until it moves.
    epoch: u64,
    /// Worker indices `1..participants` run the current job.
    participants: usize,
    /// Participating workers still running the current epoch.
    running: usize,
    /// True when a participant's job panicked this epoch.
    panicked: bool,
    /// Drop has been called: workers exit instead of waiting for work.
    shutdown: bool,
    job: Option<Job>,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown).
    work: Condvar,
    /// The caller waits here for `running == 0`.
    done: Condvar,
    /// Worker threads currently alive (diagnostics and leak tests).
    live: AtomicUsize,
}

impl Shared {
    /// Lock the state, surviving poison: workers never hold the lock across
    /// user code (jobs run unlocked, panics are caught), so a poisoned mutex
    /// still guards consistent state.
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A persistent fork/join worker pool: `threads - 1` parked OS threads plus
/// the caller, driven through epochs by [`WorkerPool::run`].
pub struct WorkerPool {
    threads: usize,
    shared: Arc<Shared>,
    /// Join handles of spawned workers (empty until the first parallel run).
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes `run` callers: one epoch in flight at a time.
    run_lock: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("spawned", &self.spawned_workers())
            .finish()
    }
}

impl WorkerPool {
    /// A pool for `threads` workers total (the caller counts as one, so
    /// `threads - 1` OS threads back it). No thread is spawned until the
    /// first [`WorkerPool::run`] with more than one participant.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        WorkerPool {
            threads,
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    participants: 0,
                    running: 0,
                    panicked: false,
                    shutdown: false,
                    job: None,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                live: AtomicUsize::new(0),
            }),
            handles: Mutex::new(Vec::new()),
            run_lock: Mutex::new(()),
        }
    }

    /// Total worker slots (caller included) this pool can drive.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// OS threads spawned so far (`0` until the first parallel run, then
    /// `threads() - 1` for the pool's whole life).
    pub fn spawned_workers(&self) -> usize {
        self.handles.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Worker threads currently alive. Equals [`WorkerPool::spawned_workers`]
    /// while the pool is up; drops to zero once the pool is dropped (the
    /// shutdown/leak tests watch this through a cloned handle).
    pub fn live_workers(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// Spawn the worker threads if this is the first parallel run.
    fn ensure_spawned(&self) {
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        if !handles.is_empty() {
            return;
        }
        for index in 1..self.threads {
            let shared = Arc::clone(&self.shared);
            let handle = crate::sync::thread::Builder::new()
                .name(format!("vcsql-bsp-worker-{index}"))
                .spawn(move || worker_loop(&shared, index))
                .expect("worker thread spawns");
            handles.push(handle);
        }
    }

    /// Run one epoch: `job(w)` executes exactly once for every worker index
    /// `w < participants` — `w == 0` on the calling thread, the rest on pool
    /// threads. Returns only after every participant finished. Participants
    /// beyond [`WorkerPool::threads`] are rejected (callers size their fan-out
    /// to the pool). Concurrent callers are serialized. If any participant's
    /// job panics, the epoch still completes on the others and the panic is
    /// re-raised here — the pool stays usable afterwards.
    pub fn run<F: Fn(usize) + Sync>(&self, participants: usize, job: &F) {
        assert!(
            participants <= self.threads,
            "{participants} participants exceed the pool's {} workers",
            self.threads
        );
        if participants <= 1 {
            if participants == 1 {
                job(0);
            }
            return;
        }
        let _serialize = self.run_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.ensure_spawned();
        {
            let mut st = self.shared.lock();
            debug_assert_eq!(st.running, 0, "previous epoch still running");
            st.job = Some(erase(job));
            st.participants = participants;
            st.running = participants - 1;
            st.epoch += 1;
        }
        self.shared.work.notify_all();
        // The caller is worker 0. Catch its panic so the barrier below still
        // runs — workers must never outlive the borrowed closure.
        let caller = catch_unwind(AssertUnwindSafe(|| job(0)));
        let worker_panicked = {
            let mut st = self.shared.lock();
            while st.running > 0 {
                st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.participants = 0;
            std::mem::replace(&mut st.panicked, false)
        };
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("worker thread panicked during a pooled phase");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    shared.live.fetch_add(1, Ordering::SeqCst);
    let mut seen = 0u64;
    let mut st = shared.lock();
    loop {
        while st.epoch == seen && !st.shutdown {
            st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.shutdown {
            break;
        }
        seen = st.epoch;
        if index < st.participants {
            let job = st.job.expect("dispatched epoch carries a job");
            drop(st);
            // SAFETY: the caller blocks in `run` until this epoch's barrier,
            // keeping the erased closure alive.
            let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, index) }));
            st = shared.lock();
            if ok.is_err() {
                st.panicked = true;
            }
            st.running -= 1;
            if st.running == 0 {
                shared.done.notify_one();
            }
        }
    }
    drop(st);
    shared.live.fetch_sub(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_participant_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for participants in 1..=4 {
            let hits: Vec<AtomicUsize> = (0..participants).map(|_| AtomicUsize::new(0)).collect();
            pool.run(participants, &|w| {
                hits[w].fetch_add(1, Ordering::SeqCst);
            });
            for (w, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "worker {w} of {participants}");
            }
        }
    }

    #[test]
    fn threads_spawn_lazily_and_exactly_once() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.spawned_workers(), 0, "construction must not spawn");
        pool.run(1, &|_| {});
        assert_eq!(pool.spawned_workers(), 0, "single-participant runs stay on the caller");
        for _ in 0..50 {
            pool.run(3, &|_| {});
        }
        assert_eq!(pool.spawned_workers(), 2, "threads - 1 workers, spawned once");
        assert_eq!(pool.live_workers(), 2);
    }

    #[test]
    fn epochs_see_fresh_closure_state() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        for round in 0..100u64 {
            pool.run(4, &|w| {
                total.fetch_add(round * 10 + w as u64, Ordering::SeqCst);
            });
        }
        // sum over rounds of (40*round + 0+1+2+3)
        let expect: u64 = (0..100).map(|r| 40 * r + 6).sum();
        assert_eq!(total.load(Ordering::SeqCst), expect);
    }

    #[test]
    fn drop_joins_every_worker() {
        for _ in 0..20 {
            let pool = WorkerPool::new(4);
            pool.run(4, &|_| {});
            let shared = Arc::clone(&pool.shared);
            drop(pool);
            assert_eq!(shared.live.load(Ordering::SeqCst), 0, "a worker outlived its pool");
        }
    }

    #[test]
    fn unused_pool_drops_cleanly() {
        let pool = WorkerPool::new(8);
        drop(pool); // nothing spawned, nothing to join
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, &|w| {
                if w == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool is still fully functional afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(3, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        assert_eq!(pool.live_workers(), 2, "panicked epoch must not kill workers");
    }

    #[test]
    fn caller_panic_still_waits_for_workers() {
        let pool = WorkerPool::new(4);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|w| {
                if w == 0 {
                    panic!("caller-side boom");
                }
                finished.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err());
        // All three pool-side participants completed before the panic
        // propagated — the barrier protects the borrowed closure.
        assert_eq!(finished.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn concurrent_callers_serialize() {
        let pool = Arc::new(WorkerPool::new(4));
        let total = Arc::new(AtomicU64::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            joins.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    pool.run(4, &|_| {
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 25 * 4);
    }

    #[test]
    fn oversized_fanout_is_rejected() {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| pool.run(3, &|_| {})));
        assert!(r.is_err(), "participants beyond the pool size must be rejected");
    }

    /// Stress the create → run → drop cycle: a deadlock here hangs the test
    /// (the suite's timeout is the assertion), a leak trips `live`.
    #[test]
    fn shutdown_stress_loop() {
        for round in 0..60 {
            let pool = WorkerPool::new(2 + round % 3);
            let n = pool.threads();
            pool.run(n, &|_| {});
            pool.run(n.min(2), &|_| {});
            let shared = Arc::clone(&pool.shared);
            drop(pool);
            assert_eq!(shared.live.load(Ordering::SeqCst), 0, "round {round} leaked a worker");
        }
    }
}
