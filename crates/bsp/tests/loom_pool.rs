//! Model checking the [`vcsql_bsp::WorkerPool`] hand-off protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg vcsql_loom"`. In that configuration
//! `vcsql_bsp::sync` resolves to the `loom` compat crate's shadow primitives,
//! so a `WorkerPool` built inside [`loom::model`] has every lock, condvar
//! wait/notify, atomic access, and thread spawn driven by the deterministic
//! scheduler — the checker explores every preemption-bounded interleaving of
//! the epoch protocol and reports deadlocks (a caller or worker parked
//! forever) and assertion failures on any schedule.
//!
//! Each test is a *model*: the closure reruns once per explored schedule, so
//! everything it asserts holds on every interleaving, not just the one the OS
//! happened to produce. A hang anywhere (including `Drop`'s join) shows up as
//! a reported deadlock instead of a wedged test.

#![cfg(vcsql_loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use vcsql_bsp::sync::atomic::{AtomicUsize, Ordering};
use vcsql_bsp::WorkerPool;

/// Epoch dispatch: with two participants, one `run` executes the job exactly
/// once for worker 0 (the caller) and once for worker 1 (the pool thread),
/// and does not return before both finished — on every schedule.
#[test]
fn epoch_handoff_runs_every_participant_exactly_once() {
    let explored = loom::model(|| {
        let pool = WorkerPool::new(2);
        let hits: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        pool.run(2, &|w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        // `run` returned: the completion barrier guarantees both slots ran.
        assert_eq!(hits[0].load(Ordering::SeqCst), 1, "caller slot");
        assert_eq!(hits[1].load(Ordering::SeqCst), 1, "worker slot");
        // Dropping the pool joins the worker; a worker that misses the
        // shutdown flag deadlocks the model here.
    });
    assert!(explored.complete, "exploration must be exhaustive");
}

/// Epoch sequencing: a second `run` on the same pool dispatches the *new*
/// closure, never a stale one — the epoch counter prevents a worker that
/// slept through epoch 1 from running its job after the caller moved on.
#[test]
fn sequential_epochs_dispatch_fresh_jobs() {
    let explored = loom::model(|| {
        let pool = WorkerPool::new(2);
        let first = AtomicUsize::new(0);
        pool.run(2, &|_| {
            first.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(first.load(Ordering::SeqCst), 2);
        let second = AtomicUsize::new(0);
        pool.run(2, &|_| {
            second.fetch_add(10, Ordering::SeqCst);
        });
        assert_eq!(first.load(Ordering::SeqCst), 2, "epoch 1 job must not rerun");
        assert_eq!(second.load(Ordering::SeqCst), 20);
    });
    assert!(explored.complete, "exploration must be exhaustive");
}

/// Completion barrier under a worker panic: the panic is caught on the
/// worker, `run` still waits for the epoch to drain, re-raises on the
/// caller, and the pool remains usable for the next epoch.
#[test]
fn worker_panic_reaches_the_barrier_and_pool_survives() {
    let explored = loom::model(|| {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|w| {
                if w == 1 {
                    panic!("worker-side boom");
                }
            });
        }));
        assert!(r.is_err(), "the worker panic must re-raise on the caller");
        // The epoch drained (running == 0), so the pool still works.
        let after = AtomicUsize::new(0);
        pool.run(2, &|_| {
            after.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(after.load(Ordering::SeqCst), 2, "pool must survive a worker panic");
    });
    assert!(explored.complete, "exploration must be exhaustive");
}

/// Completion barrier under a *caller* panic: worker 0's unwind must not
/// release the borrowed closure while worker 1 can still call it. On every
/// schedule, worker 1 finishes before `run` lets the panic escape.
#[test]
fn caller_panic_waits_for_workers_before_unwinding() {
    let explored = loom::model(|| {
        let pool = WorkerPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|w| {
                if w == 0 {
                    panic!("caller-side boom");
                }
                finished.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(r.is_err());
        // If the barrier ran after the unwind instead of before, this reads
        // 0 on some schedule and the checker reports it.
        assert_eq!(
            finished.load(Ordering::SeqCst),
            1,
            "worker must finish before the caller's panic escapes `run`"
        );
    });
    assert!(explored.complete, "exploration must be exhaustive");
}

/// `run_lock` sharing: two caller threads drive the same pool concurrently;
/// epochs serialize instead of corrupting each other's dispatch state, and
/// both callers' jobs run to completion.
#[test]
fn concurrent_callers_serialize_through_run_lock() {
    // Four model threads (main + two callers + one worker): the largest
    // model here, ~10k schedules at preemption bound 2. The explicit budget
    // keeps a regression in the state-space size from hanging CI.
    let explored = loom::Builder::new().preemptions(2).max_iterations(60_000).check(|| {
        let pool = Arc::new(WorkerPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let callers: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                loom::thread::spawn(move || {
                    pool.run(2, &|_| {
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                })
            })
            .collect();
        for c in callers {
            c.join().expect("caller threads must not panic");
        }
        assert_eq!(total.load(Ordering::SeqCst), 4, "2 callers x 2 participants");
    });
    assert!(explored.complete, "exploration must be exhaustive");
}

/// `Drop`-join shutdown: dropping the pool wakes the parked worker, which
/// observes `shutdown`, decrements `live`, and exits — `drop` returns only
/// after the join. A worker that misses the wakeup deadlocks the model.
#[test]
fn drop_join_shuts_down_cleanly() {
    let explored = loom::model(|| {
        let pool = WorkerPool::new(2);
        pool.run(2, &|_| {});
        assert_eq!(pool.live_workers(), 1, "one spawned worker while the pool is up");
        drop(pool);
        // Reaching this point means Drop's join returned on this schedule;
        // the scheduler flags any schedule where the worker parks forever.
    });
    assert!(explored.complete, "exploration must be exhaustive");
}
