//! End-to-end equivalence tests: the vertex-centric TAG-join executor must
//! produce the same bags as the relational baseline executor on a small
//! warehouse-style database, across every query class the paper evaluates.

use vcsql_baseline::{execute as baseline, ExecConfig};
use vcsql_bsp::EngineConfig;
use vcsql_core::TagJoinExecutor;
use vcsql_query::{analyze::analyze, parse};
use vcsql_relation::schema::{Column, Schema};
use vcsql_relation::{DataType, Database, Date, Relation, Tuple, Value};
use vcsql_tag::TagGraph;

/// A miniature snowflake: region ← nation ← customer ← orders ← lineitem,
/// plus part. Includes NULLs, dangling tuples and skew.
fn warehouse() -> Database {
    let mut db = Database::new();

    let region = Schema::new(
        "region",
        vec![Column::new("r_regionkey", DataType::Int), Column::new("r_name", DataType::Str)],
    )
    .with_primary_key(&["r_regionkey"]);
    let mut r = Relation::empty(region);
    for (k, n) in [(0, "AMERICA"), (1, "EUROPE"), (2, "ASIA")] {
        r.push(Tuple::new(vec![Value::Int(k), Value::str(n)])).unwrap();
    }
    db.add(r);

    let nation = Schema::new(
        "nation",
        vec![
            Column::new("n_nationkey", DataType::Int),
            Column::new("n_regionkey", DataType::Int),
            Column::new("n_name", DataType::Str),
        ],
    )
    .with_primary_key(&["n_nationkey"])
    .with_foreign_key(&["n_regionkey"], "region", &["r_regionkey"]);
    let mut n = Relation::empty(nation);
    for (k, rk, name) in
        [(0, 0, "usa"), (1, 1, "france"), (2, 1, "germany"), (3, 2, "japan"), (4, 9, "atlantis")]
    {
        n.push(Tuple::new(vec![Value::Int(k), Value::Int(rk), Value::str(name)])).unwrap();
    }
    db.add(n);

    let customer = Schema::new(
        "customer",
        vec![
            Column::new("c_custkey", DataType::Int),
            Column::new("c_nationkey", DataType::Int),
            Column::new("c_name", DataType::Str),
            Column::new("c_acctbal", DataType::Float),
        ],
    )
    .with_primary_key(&["c_custkey"])
    .with_foreign_key(&["c_nationkey"], "nation", &["n_nationkey"]);
    let mut c = Relation::empty(customer);
    for (k, nk, name, bal) in [
        (100, 0, "alice", 10.0),
        (101, 0, "bob", -5.0),
        (102, 1, "celine", 300.25),
        (103, 2, "dieter", 42.0),
        (104, 3, "emiko", 7.5),
        (105, 3, "fumio", 0.0),
    ] {
        c.push(Tuple::new(vec![
            Value::Int(k),
            Value::Int(nk),
            Value::str(name),
            Value::Float(bal),
        ]))
        .unwrap();
    }
    // A customer with NULL nation (never joins).
    c.push(Tuple::new(vec![Value::Int(106), Value::Null, Value::str("ghost"), Value::Null]))
        .unwrap();
    db.add(c);

    let orders = Schema::new(
        "orders",
        vec![
            Column::new("o_orderkey", DataType::Int),
            Column::new("o_custkey", DataType::Int),
            Column::new("o_orderdate", DataType::Date),
            Column::new("o_totalprice", DataType::Float),
            Column::new("o_priority", DataType::Str),
        ],
    )
    .with_primary_key(&["o_orderkey"])
    .with_foreign_key(&["o_custkey"], "customer", &["c_custkey"]);
    let mut o = Relation::empty(orders);
    // (orderkey, custkey, (y, m, d), totalprice, priority)
    type OrderRow = (i64, i64, (i32, u32, u32), f64, &'static str);
    let orders_data: Vec<OrderRow> = vec![
        (1, 100, (1995, 1, 10), 100.0, "HIGH"),
        (2, 100, (1995, 3, 4), 55.5, "LOW"),
        (3, 101, (1996, 7, 19), 220.0, "HIGH"),
        (4, 102, (1994, 11, 2), 11.0, "MEDIUM"),
        (5, 102, (1995, 6, 30), 1000.0, "HIGH"),
        (6, 103, (1997, 2, 14), 77.7, "LOW"),
        (7, 104, (1995, 12, 25), 5.0, "MEDIUM"),
        (8, 999, (1995, 5, 5), 9.9, "LOW"), // dangling customer
    ];
    for (ok, ck, (y, m, d), total, pr) in orders_data {
        o.push(Tuple::new(vec![
            Value::Int(ok),
            Value::Int(ck),
            Value::Date(Date::from_ymd(y, m, d)),
            Value::Float(total),
            Value::str(pr),
        ]))
        .unwrap();
    }
    db.add(o);

    let lineitem = Schema::new(
        "lineitem",
        vec![
            Column::new("l_orderkey", DataType::Int),
            Column::new("l_partkey", DataType::Int),
            Column::new("l_quantity", DataType::Int),
            Column::new("l_price", DataType::Float),
        ],
    )
    .with_foreign_key(&["l_orderkey"], "orders", &["o_orderkey"])
    .with_foreign_key(&["l_partkey"], "part", &["p_partkey"]);
    let mut l = Relation::empty(lineitem);
    let lines: Vec<(i64, i64, i64, f64)> = vec![
        (1, 10, 5, 10.0),
        (1, 11, 1, 5.5),
        (2, 10, 3, 30.0),
        (3, 12, 8, 8.0),
        (3, 10, 2, 2.0),
        (5, 11, 40, 400.0),
        (5, 12, 7, 70.0),
        (6, 13, 1, 1.0),
        (7, 10, 9, 90.0),
        (99, 10, 1, 1.0), // dangling order
    ];
    for (ok, pk, q, p) in lines {
        l.push(Tuple::new(vec![Value::Int(ok), Value::Int(pk), Value::Int(q), Value::Float(p)]))
            .unwrap();
    }
    db.add(l);

    let part = Schema::new(
        "part",
        vec![
            Column::new("p_partkey", DataType::Int),
            Column::new("p_name", DataType::Str),
            Column::new("p_size", DataType::Int),
        ],
    )
    .with_primary_key(&["p_partkey"]);
    let mut p = Relation::empty(part);
    for (k, name, size) in [
        (10, "green widget", 3),
        (11, "red gizmo", 7),
        (12, "green gadget", 3),
        (13, "blue trinket", 9),
        (14, "unused part", 1),
    ] {
        p.push(Tuple::new(vec![Value::Int(k), Value::str(name), Value::Int(size)])).unwrap();
    }
    db.add(p);

    db
}

/// Run one SQL query through both engines and compare bags.
fn check(sql: &str) {
    let db = warehouse();
    let tag = TagGraph::build(&db);
    let stmt = parse(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
    let analyzed = analyze(&stmt, tag.schemas()).unwrap_or_else(|e| panic!("analyze `{sql}`: {e}"));

    let expected = baseline(&analyzed, &db, ExecConfig::default())
        .unwrap_or_else(|e| panic!("oracle `{sql}`: {e}"));

    for threads in [1, 4] {
        let exec = TagJoinExecutor::new(&tag, EngineConfig::with_threads(threads));
        let got = exec
            .execute(&analyzed)
            .unwrap_or_else(|e| panic!("tag-join `{sql}` ({threads} threads): {e}"));
        assert!(
            got.relation.same_bag(&expected),
            "mismatch for `{sql}` ({threads} threads):\n tag-join: {:?}\n oracle:  {:?}",
            got.relation.tuples,
            expected.tuples
        );
        // Sanity: joins must actually exchange messages.
        if analyzed.tables.len() > 1 {
            assert!(got.stats.total_messages() > 0, "no messages for `{sql}`");
        }
    }
}

#[test]
fn single_table_scan_with_filter() {
    check("SELECT c.c_name, c.c_acctbal FROM customer c WHERE c.c_acctbal > 0");
}

#[test]
fn two_way_pk_fk_join() {
    check(
        "SELECT n.n_name, c.c_name FROM nation n, customer c \
         WHERE n.n_nationkey = c.c_nationkey",
    );
}

#[test]
fn chain_join_three_tables() {
    check(
        "SELECT r.r_name, n.n_name, c.c_name FROM region r, nation n, customer c \
         WHERE r.r_regionkey = n.n_regionkey AND n.n_nationkey = c.c_nationkey",
    );
}

#[test]
fn five_way_snowflake_join() {
    check(
        "SELECT r.r_name, c.c_name, o.o_orderkey, l.l_quantity \
         FROM region r, nation n, customer c, orders o, lineitem l \
         WHERE r.r_regionkey = n.n_regionkey AND n.n_nationkey = c.c_nationkey \
         AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey",
    );
}

#[test]
fn join_with_filters_pushed_down() {
    check(
        "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
         WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 50 AND c.c_acctbal >= 0 \
         AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'",
    );
}

#[test]
fn star_join_fact_with_two_dimensions() {
    check(
        "SELECT o.o_orderkey, l.l_quantity, p.p_name \
         FROM lineitem l, orders o, part p \
         WHERE l.l_orderkey = o.o_orderkey AND l.l_partkey = p.p_partkey \
         AND p.p_name LIKE '%green%'",
    );
}

#[test]
fn local_aggregation_group_by_single_key() {
    check(
        "SELECT n.n_name, SUM(o.o_totalprice) AS revenue, COUNT(*) AS orders \
         FROM nation n, customer c, orders o \
         WHERE n.n_nationkey = c.c_nationkey AND c.c_custkey = o.o_custkey \
         GROUP BY n.n_name",
    );
}

#[test]
fn global_aggregation_two_keys() {
    check(
        "SELECT n.n_name, o.o_priority, COUNT(*) AS cnt, AVG(o.o_totalprice) AS avg_total \
         FROM nation n, customer c, orders o \
         WHERE n.n_nationkey = c.c_nationkey AND c.c_custkey = o.o_custkey \
         GROUP BY n.n_name, o.o_priority",
    );
}

#[test]
fn scalar_aggregation() {
    check(
        "SELECT SUM(l.l_price) AS total, MIN(l.l_quantity) AS mn, MAX(l.l_quantity) AS mx \
         FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey AND o.o_totalprice > 60",
    );
}

#[test]
fn scalar_aggregation_over_empty_input() {
    check("SELECT COUNT(*) AS c, SUM(o.o_totalprice) AS s FROM orders o WHERE o.o_totalprice > 1000000");
}

#[test]
fn having_filters_groups() {
    check(
        "SELECT c.c_name, COUNT(*) AS cnt FROM customer c, orders o \
         WHERE c.c_custkey = o.o_custkey GROUP BY c.c_name HAVING COUNT(*) >= 2",
    );
}

#[test]
fn expression_projection_and_case() {
    check(
        "SELECT o.o_orderkey, o.o_totalprice * 0.9 AS discounted, \
         CASE WHEN o.o_priority = 'HIGH' THEN 1 ELSE 0 END AS urgent \
         FROM customer c, orders o WHERE c.c_custkey = o.o_custkey",
    );
}

#[test]
fn exists_correlated_subquery() {
    check(
        "SELECT o.o_orderkey, o.o_priority FROM orders o WHERE EXISTS \
         (SELECT l.l_orderkey FROM lineitem l WHERE l.l_orderkey = o.o_orderkey \
          AND l.l_quantity > 4)",
    );
}

#[test]
fn not_exists_anti_join() {
    check(
        "SELECT c.c_name FROM customer c WHERE NOT EXISTS \
         (SELECT o.o_orderkey FROM orders o WHERE o.o_custkey = c.c_custkey)",
    );
}

#[test]
fn in_subquery() {
    check(
        "SELECT p.p_name FROM part p WHERE p.p_partkey IN \
         (SELECT l.l_partkey FROM lineitem l WHERE l.l_quantity >= 5)",
    );
}

#[test]
fn scalar_correlated_subquery() {
    // q17 shape: compare against a per-part average.
    check(
        "SELECT l.l_orderkey, l.l_quantity FROM lineitem l WHERE l.l_quantity > \
         (SELECT AVG(l2.l_quantity) FROM lineitem l2 WHERE l2.l_partkey = l.l_partkey)",
    );
}

#[test]
fn cross_product_components() {
    check("SELECT r.r_name, p.p_name FROM region r, part p WHERE p.p_size = 3");
}

#[test]
fn residual_cross_table_predicate() {
    check(
        "SELECT c.c_name, o.o_orderkey FROM customer c, orders o \
         WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > c.c_acctbal",
    );
}

#[test]
fn cyclic_query_breaks_into_residual() {
    // An artificial cycle: customer-nation via nationkey, nation-region,
    // and a second (broken) equality closing a cycle through region back to
    // customer keys modulo small domains. Use the classic triangle shape on
    // keys instead: c_nationkey = n_nationkey, n_regionkey = r_regionkey,
    // r_regionkey = c_nationkey (forces n_regionkey = n_nationkey rows).
    check(
        "SELECT c.c_name, n.n_name, r.r_name FROM customer c, nation n, region r \
         WHERE c.c_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
         AND r.r_regionkey = c.c_nationkey",
    );
}

#[test]
fn in_list_and_like_filters() {
    check(
        "SELECT o.o_orderkey FROM orders o, customer c \
         WHERE o.o_custkey = c.c_custkey AND o.o_priority IN ('HIGH', 'MEDIUM') \
         AND c.c_name NOT LIKE '%o%'",
    );
}

#[test]
fn group_by_without_aggregates_is_distinct() {
    check(
        "SELECT o.o_priority, COUNT(*) AS n FROM orders o, customer c \
         WHERE o.o_custkey = c.c_custkey GROUP BY o.o_priority",
    );
}

#[test]
fn year_function_and_date_filter() {
    check(
        "SELECT YEAR(o.o_orderdate) AS y, COUNT(*) AS n FROM orders o \
         WHERE o.o_orderdate >= DATE '1995-01-01' GROUP BY o.o_orderdate",
    );
}

#[test]
fn self_join_is_rejected_with_clear_error() {
    let db = warehouse();
    let tag = TagGraph::build(&db);
    let stmt =
        parse("SELECT a.c_name FROM customer a, customer b WHERE a.c_nationkey = b.c_nationkey")
            .unwrap();
    let analyzed = analyze(&stmt, tag.schemas()).unwrap();
    let exec = TagJoinExecutor::new(&tag, EngineConfig::sequential());
    let err = exec.execute(&analyzed).unwrap_err();
    assert!(err.to_string().contains("self-join"), "{err}");
}
