//! Standalone semi-joins and anti-joins (paper Section 7).
//!
//! `R ⋉ S` on `R.a = S.b` in two supersteps: `R`-tuple vertices signal their
//! `a`-attribute vertices; each attribute vertex checks its out-edges for an
//! `S.b` edge and replies to its `R` senders iff one exists (semi-join) or
//! iff none exists (anti-join). `R`-tuples with a NULL join value have no
//! attribute vertex: they never semi-join and always anti-survive (the
//! `NOT EXISTS` equality-correlation semantics), handled host-side.

use vcsql_bsp::program::Aggregator;
use vcsql_bsp::{Computation, EngineConfig, RunStats, VertexCtx, VertexId};
use vcsql_relation::{RelError, Relation, Tuple};
use vcsql_tag::TagGraph;

type Result<T> = std::result::Result<T, RelError>;

#[derive(Default)]
struct TupleGather(Vec<Tuple>);
impl Aggregator for TupleGather {
    fn merge(&mut self, mut other: Self) {
        self.0.append(&mut other.0);
    }
}

/// Compute `R ⋉ S` (`anti = false`) or `R ▷ S` (`anti = true`) on
/// `left.left_col = right.right_col`, returning the surviving `R` tuples.
pub fn semi_join(
    tag: &TagGraph,
    config: EngineConfig,
    left: &str,
    left_col: &str,
    right: &str,
    right_col: &str,
    anti: bool,
) -> Result<(Relation, RunStats)> {
    let lschema =
        tag.schema(left).ok_or_else(|| RelError::UnknownRelation(left.to_string()))?.clone();
    let lcol = lschema.column_index(left_col)?;
    let llabel = tag
        .column_label_by_name(left, left_col)
        .ok_or_else(|| RelError::Other(format!("{left}.{left_col} not materialized")))?;
    // The right side may be empty (no vertices): every attribute vertex then
    // has zero `S.b` edges, which the protocol handles uniformly.
    let rlabel = tag.column_label_by_name(right, right_col);

    let graph = tag.graph();
    let mut comp: Computation<'_, (), u32> = Computation::new(graph, config, |_| ());

    let Some(ll) = tag.relation_label(left) else {
        return Ok((Relation::empty(lschema), RunStats::default()));
    };
    comp.activate_label(ll);

    // Superstep 1: R tuples signal their a-attribute vertex.
    comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, (), u32>| {
        let me = ctx.id();
        let targets: Vec<VertexId> = ctx.edges_with(llabel).iter().map(|e| e.target).collect();
        for t in targets {
            ctx.send(t, me);
        }
    });

    // Superstep 2: attribute vertices check for S.b edges and reply per the
    // (anti-)semi-join rule.
    comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, (), u32>| {
        let has_partner = rlabel.is_some_and(|rl| ctx.degree_with(rl) > 0);
        if has_partner == anti {
            return;
        }
        let senders: Vec<VertexId> = ctx.messages().to_vec();
        for s in senders {
            ctx.send(s, ctx.id());
        }
    });

    // Superstep 3: surviving R tuples output themselves (distributed result,
    // gathered here).
    let (_, gathered) =
        comp.superstep(|ctx: &mut VertexCtx<'_, '_, (), u32>, g: &mut TupleGather| {
            if let Some(t) = tag.tuple(ctx.id()) {
                g.0.push(t.clone());
            }
        });

    let mut out = Relation::empty(lschema);
    for t in gathered.0 {
        out.push(t)?;
    }
    // NULL-keyed R tuples never reached an attribute vertex: they survive
    // anti-joins (no partner possible) and never semi-join.
    if anti {
        if let Some(rel_label) = tag.relation_label(left) {
            for &v in graph.vertices_with_label(rel_label) {
                if let Some(t) = tag.tuple(v) {
                    if t.get(lcol).is_null() {
                        out.push(t.clone())?;
                    }
                }
            }
        }
    }
    let (_, stats) = comp.finish();
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::{Column, Schema};
    use vcsql_relation::{DataType, Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut r = Relation::empty(Schema::new(
            "R",
            vec![Column::new("a", DataType::Int), Column::new("x", DataType::Int)],
        ));
        for (a, x) in [(1, 10), (2, 20), (3, 30)] {
            r.push(Tuple::new(vec![Value::Int(a), Value::Int(x)])).unwrap();
        }
        r.push(Tuple::new(vec![Value::Null, Value::Int(99)])).unwrap();
        db.add(r);
        let mut s = Relation::empty(Schema::new("S", vec![Column::new("b", DataType::Int)]));
        for b in [2, 2, 4] {
            s.push(Tuple::new(vec![Value::Int(b)])).unwrap();
        }
        db.add(s);
        db
    }

    #[test]
    fn semi_and_anti_partition_r() {
        let db = db();
        let tag = TagGraph::build(&db);
        let (semi, stats) =
            semi_join(&tag, EngineConfig::sequential(), "R", "a", "S", "b", false).unwrap();
        let (anti, _) =
            semi_join(&tag, EngineConfig::sequential(), "R", "a", "S", "b", true).unwrap();
        assert_eq!(semi.len(), 1); // a = 2
        assert_eq!(semi.tuples[0].get(0), &Value::Int(2));
        // a = 1, a = 3 and the NULL-keyed tuple anti-survive.
        assert_eq!(anti.len(), 3);
        // Semi-join costs one round-trip: 3 signals + 1 reply.
        assert_eq!(stats.total_messages(), 4);
    }

    #[test]
    fn anti_join_against_missing_relation_keeps_everything() {
        let mut db = db();
        // Replace S with an empty relation: no S vertices at all.
        db.add(Relation::empty(Schema::new("S", vec![Column::new("b", DataType::Int)])));
        let tag = TagGraph::build(&db);
        let (anti, _) =
            semi_join(&tag, EngineConfig::sequential(), "R", "a", "S", "b", true).unwrap();
        assert_eq!(anti.len(), 4);
    }
}
