//! Reusable query plans: parse → analyze → GYO decomposition → TAG plan as a
//! value, separated from execution.
//!
//! The paper's scheme encodes the database once and runs *many* queries
//! against it, so planning must not be welded to execution the way a one-shot
//! `run_sql` is. A [`QueryPlan`] captures everything about a SQL statement
//! that is independent of the data: the analyzed query, its GYO join-tree
//! decomposition (one [`JoinTree`] per connected component, rerooted for
//! local aggregation), the per-component [`TagPlan`]s and their traversal
//! step lists. [`TagJoinExecutor::execute_plan`](crate::TagJoinExecutor::execute_plan)
//! runs a prepared plan as many times as needed; the `vcsql-session` crate
//! caches plans behind a bounded SQL-keyed cache.

use vcsql_query::analyze::{analyze, Analyzed};
use vcsql_query::gyo::{decompose, Decomposition, JoinTree};
use vcsql_query::tagplan::{Step, TagPlan};
use vcsql_query::{parse, AggClass};
use vcsql_relation::schema::Schema;
use vcsql_relation::RelError;

type Result<T> = std::result::Result<T, RelError>;

/// A fully planned query, reusable across executions (and cacheable: the
/// plan depends only on the SQL and the schemas, never on the data).
#[derive(Debug, Clone)]
pub struct QueryPlan {
    pub(crate) analyzed: Analyzed,
    pub(crate) dec: Decomposition,
    /// Join-tree components after rerooting for local aggregation.
    pub(crate) components: Vec<JoinTree>,
    /// One TAG plan per component, aligned with `components`.
    pub(crate) plans: Vec<TagPlan>,
    /// The `GenSteps` traversal list of each plan.
    pub(crate) steps: Vec<Vec<Step>>,
    /// Component whose roots assemble the final result.
    pub(crate) primary: usize,
    /// Component index by table.
    pub(crate) component_of: Vec<usize>,
}

impl QueryPlan {
    /// Plan an analyzed query: GYO decomposition, component rerooting for
    /// local aggregation, TAG plans and traversal steps. Fails on query
    /// shapes the vertex-centric executor cannot run (no tables, or a
    /// self-join within one block, whose edge labels would be ambiguous).
    pub fn new(analyzed: Analyzed) -> Result<QueryPlan> {
        let n = analyzed.tables.len();
        if n == 0 {
            return Err(RelError::Other("query has no tables".into()));
        }
        // The traversal routes messages purely by edge label (`R.A`), so two
        // aliases of one relation inside a single query block would
        // interfere; subqueries run as separate computations and may reuse
        // relations freely.
        for (i, t) in analyzed.tables.iter().enumerate() {
            if analyzed.tables[..i].iter().any(|u| u.relation == t.relation) {
                return Err(RelError::Other(format!(
                    "self-join on `{}` within one query block is not supported by the \
                     vertex-centric executor (edge labels would be ambiguous)",
                    t.relation
                )));
            }
        }

        let dec = decompose(n, &analyzed.joins);
        let mut components = dec.components.clone();
        let mut component_of = vec![0usize; n];
        for (ci, c) in components.iter().enumerate() {
            for &t in &c.tables {
                component_of[t] = ci;
            }
        }
        // Primary: the component holding the (first) group-by table, else the
        // one with the most tables.
        let primary = if let Some(&(gt, _)) = analyzed.group_by.first() {
            component_of[gt]
        } else {
            (0..components.len()).max_by_key(|&i| components[i].tables.len()).unwrap_or(0)
        };
        // For local aggregation, root the primary tree at the group table so
        // partials can be routed along the root's own group-column edge.
        if analyzed.agg_class == AggClass::Local {
            let gt = analyzed.group_by[0].0;
            if components[primary].tables.contains(&gt) {
                components[primary].reroot(gt);
            }
        }
        let plans: Vec<TagPlan> =
            components.iter().map(|c| TagPlan::from_join_tree(c, &dec)).collect();
        let steps: Vec<Vec<Step>> = plans.iter().map(TagPlan::gen_steps).collect();

        Ok(QueryPlan { analyzed, dec, components, plans, steps, primary, component_of })
    }

    /// Parse, analyze and plan a SQL string against `schemas` — the whole
    /// front half of the pipeline, without executing anything.
    pub fn prepare(sql: &str, schemas: &[Schema]) -> Result<QueryPlan> {
        QueryPlan::new(analyze(&parse(sql)?, schemas)?)
    }

    /// The analyzed query this plan was built from.
    pub fn analyzed(&self) -> &Analyzed {
        &self.analyzed
    }

    /// Number of join-graph components.
    pub fn component_count(&self) -> usize {
        self.plans.len()
    }

    /// Total traversal steps over all components (a proxy for superstep
    /// count: each step runs once per reduction direction plus collection).
    pub fn traversal_steps(&self) -> usize {
        self.steps.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::Column;
    use vcsql_relation::DataType;

    fn schemas() -> Vec<Schema> {
        vec![
            Schema::new(
                "r",
                vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)],
            ),
            Schema::new(
                "s",
                vec![Column::new("b", DataType::Int), Column::new("c", DataType::Int)],
            ),
        ]
    }

    #[test]
    fn prepare_builds_a_reusable_plan() {
        let plan = QueryPlan::prepare("SELECT r.a FROM r, s WHERE r.b = s.b", &schemas()).unwrap();
        assert_eq!(plan.component_count(), 1);
        assert!(plan.traversal_steps() > 0);
        assert_eq!(plan.analyzed().tables.len(), 2);
        // Plans are plain values: clone and reuse freely.
        let copy = plan.clone();
        assert_eq!(copy.traversal_steps(), plan.traversal_steps());
    }

    #[test]
    fn planning_rejects_self_joins_and_empty_from() {
        let err = QueryPlan::prepare("SELECT r1.a FROM r r1, r r2 WHERE r1.b = r2.a", &schemas());
        assert!(err.is_err(), "self-join within one block must fail at plan time");
    }

    #[test]
    fn cartesian_components_are_separate_plans() {
        let plan = QueryPlan::prepare("SELECT r.a, s.c FROM r, s", &schemas()).unwrap();
        assert_eq!(plan.component_count(), 2);
    }
}
