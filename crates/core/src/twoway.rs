//! The standalone two-way join of paper Section 4.
//!
//! Three supersteps over the TAG graph:
//!
//! 1. every attribute vertex of the join domain checks locally whether it is
//!    a *join value* (it has edges labelled `R.A` **and** `S.B`) and signals
//!    the joining tuple vertices;
//! 2. signalled tuple vertices send their (projected) rows back — for
//!    multi-attribute joins (Section 4.2) the rows carry the remaining join
//!    attributes so the coordinating attribute vertex can intersect them;
//! 3. the attribute vertex intersects both sides on the companion attributes
//!    and keeps the factorized pair (left rows, right rows) — the factorized
//!    representation of Section 4.1; [`TwoWayResult::expand`] produces the
//!    flat bag-of-tuples form.

use crate::table::{ColKey, RowRef, Table};
use std::sync::Arc;
use vcsql_bsp::program::Aggregator;
use vcsql_bsp::{Computation, EngineConfig, Message, RunStats, VertexCtx, VertexId};
use vcsql_relation::{RelError, Value};
use vcsql_tag::TagGraph;

type Result<T> = std::result::Result<T, RelError>;

/// A join specification: `left.cols[i] = right.cols[i]` for each i; the
/// first pair is the coordinating attribute (Section 4.2 reduces to it).
#[derive(Debug, Clone)]
pub struct TwoWaySpec<'a> {
    pub left: &'a str,
    pub right: &'a str,
    /// Join column pairs (by name); at least one.
    pub on: Vec<(&'a str, &'a str)>,
    /// Output columns of the left relation (names).
    pub left_out: Vec<&'a str>,
    /// Output columns of the right relation (names).
    pub right_out: Vec<&'a str>,
}

/// One join value's factorized result.
#[derive(Debug, Clone)]
pub struct FactorGroup {
    pub join_value: Value,
    pub left: Table,
    pub right: Table,
}

/// The factorized join output, distributed over attribute vertices in the
/// computation and gathered here.
#[derive(Debug)]
pub struct TwoWayResult {
    pub groups: Vec<FactorGroup>,
    pub stats: RunStats,
}

impl TwoWayResult {
    /// Expand the factorized representation into the flat join result
    /// (Section 4.1, Superstep 3's Cartesian product per join value).
    pub fn expand(&self) -> Table {
        let mut out: Option<Table> = None;
        for g in &self.groups {
            let joined = g.left.natural_join(&g.right);
            out = Some(match out {
                None => joined,
                Some(mut acc) => {
                    acc.append(joined);
                    acc
                }
            });
        }
        out.unwrap_or_else(|| Table::empty(Vec::new()))
    }

    /// Upper bound on the flat output size without materializing it (exact
    /// for single-attribute joins — the factorized-representation benefit).
    pub fn output_size(&self) -> usize {
        self.groups.iter().map(|g| g.left.len() * g.right.len()).sum()
    }
}

#[derive(Clone, Debug)]
enum TwMsg {
    /// Attr → tuple: "you join through me" (attr vertex id, side).
    Signal(VertexId, u8),
    /// Tuple → attr: projected row (side 0 = left, 1 = right).
    Row(u8, Arc<Table>),
}

impl Message for TwMsg {
    fn byte_size(&self) -> usize {
        match self {
            TwMsg::Signal(_, _) => 9,
            TwMsg::Row(_, t) => 1 + t.approx_bytes(),
        }
    }
}

#[derive(Default)]
struct GroupsAgg(Vec<FactorGroup>);
impl Aggregator for GroupsAgg {
    fn merge(&mut self, mut other: Self) {
        self.0.append(&mut other.0);
    }
}

/// Execute a two-way join (paper Sections 4.1–4.2), returning the factorized
/// result.
pub fn two_way_join(
    tag: &TagGraph,
    config: EngineConfig,
    spec: &TwoWaySpec<'_>,
) -> Result<TwoWayResult> {
    let lschema = tag
        .schema(spec.left)
        .ok_or_else(|| RelError::UnknownRelation(spec.left.to_string()))?
        .clone();
    let rschema = tag
        .schema(spec.right)
        .ok_or_else(|| RelError::UnknownRelation(spec.right.to_string()))?
        .clone();
    if spec.on.is_empty() {
        return Err(RelError::Other("two-way join needs at least one column pair".into()));
    }
    let llabel = tag.column_label_by_name(spec.left, spec.on[0].0).ok_or_else(|| {
        RelError::Other(format!("{}.{} not materialized", spec.left, spec.on[0].0))
    })?;
    let rlabel = tag.column_label_by_name(spec.right, spec.on[0].1).ok_or_else(|| {
        RelError::Other(format!("{}.{} not materialized", spec.right, spec.on[0].1))
    })?;

    // Row specs: companion join columns as Var(i) (i = index into `on`,
    // from 1), output columns as Plain keys (table 0 = left, 1 = right).
    let lon: Vec<usize> =
        spec.on.iter().map(|&(c, _)| lschema.column_index(c)).collect::<Result<_>>()?;
    let ron: Vec<usize> =
        spec.on.iter().map(|&(_, c)| rschema.column_index(c)).collect::<Result<_>>()?;
    let lout: Vec<usize> =
        spec.left_out.iter().map(|c| lschema.column_index(c)).collect::<Result<_>>()?;
    let rout: Vec<usize> =
        spec.right_out.iter().map(|c| rschema.column_index(c)).collect::<Result<_>>()?;
    let row_spec = |side: u16, on_cols: &[usize], out_cols: &[usize]| {
        let mut s: Vec<(ColKey, usize)> = Vec::new();
        for (i, &c) in on_cols.iter().enumerate() {
            if i > 0 {
                s.push((ColKey::Var(i as u32), c));
            }
        }
        for &c in out_cols {
            s.push((ColKey::Col { table: side, col: c as u16 }, c));
        }
        s.sort_by_key(|&(k, _)| k);
        s
    };
    let lspec = row_spec(0, &lon, &lout);
    let rspec = row_spec(1, &ron, &rout);

    let graph = tag.graph();
    let mut comp: Computation<'_, (), TwMsg> = Computation::new(graph, config, |_| ());

    // Activate all attribute vertices (the paper activates the join domain's
    // attribute vertices; non-join values deactivate in superstep 1).
    let mut start: Vec<VertexId> = Vec::new();
    for label_name in ["@int", "@str", "@date", "@bool", "@float"] {
        if let Some(l) = graph.vertex_label_id(label_name) {
            start.extend_from_slice(graph.vertices_with_label(l));
        }
    }
    comp.activate(start);

    // Superstep 1: join-value check + signal both sides (paper Fig 2(a)).
    comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, (), TwMsg>| {
        if ctx.degree_with(llabel) == 0 || ctx.degree_with(rlabel) == 0 {
            return; // not a join value: deactivate
        }
        let me = ctx.id();
        let left: Vec<VertexId> = ctx.edges_with(llabel).iter().map(|e| e.target).collect();
        let right: Vec<VertexId> = ctx.edges_with(rlabel).iter().map(|e| e.target).collect();
        for t in left {
            ctx.send(t, TwMsg::Signal(me, 0));
        }
        for t in right {
            ctx.send(t, TwMsg::Signal(me, 1));
        }
    });

    // Superstep 2: tuple vertices return their projected rows (Fig 2(b)),
    // with companion attributes per Section 4.2.
    comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, (), TwMsg>| {
        let msgs: Vec<(VertexId, u8)> = ctx
            .messages()
            .iter()
            .filter_map(|m| match m {
                TwMsg::Signal(from, side) => Some((*from, *side)),
                _ => None,
            })
            .collect();
        let Some(tuple) = tag.tuple(ctx.id()) else { return };
        for (attr, side) in msgs {
            let spec = if side == 0 { &lspec } else { &rspec };
            let entries: Vec<(ColKey, Value)> =
                spec.iter().map(|&(k, c)| (k, tuple.get(c).clone())).collect();
            ctx.send(attr, TwMsg::Row(side, Arc::new(Table::singleton(&entries))));
        }
    });

    // Superstep 3: intersect companions, keep the factorized pair (Fig 2(c)).
    let (_, groups) =
        comp.superstep(|ctx: &mut VertexCtx<'_, '_, (), TwMsg>, g: &mut GroupsAgg| {
            let mut left: Vec<&Table> = Vec::new();
            let mut right: Vec<&Table> = Vec::new();
            for m in ctx.messages() {
                if let TwMsg::Row(side, t) = m {
                    if *side == 0 {
                        left.push(t);
                    } else {
                        right.push(t);
                    }
                }
            }
            let (Some(l), Some(r)) = (Table::union(left), Table::union(right)) else { return };
            let (l, r) = intersect_companions(l, r);
            if l.is_empty() || r.is_empty() {
                return;
            }
            let join_value = tag.attr_value(ctx.id()).cloned().unwrap_or(Value::Null);
            g.0.push(FactorGroup { join_value, left: l, right: r });
        });

    let (_, stats) = comp.finish();
    let mut groups = groups.0;
    groups.sort_by(|a, b| a.join_value.cmp(&b.join_value));
    Ok(TwoWayResult { groups, stats })
}

/// Keep only rows whose companion (Var-keyed) values occur on both sides —
/// the Section 4.2 intersection.
fn intersect_companions(mut l: Table, mut r: Table) -> (Table, Table) {
    let comp_cols: Vec<ColKey> =
        l.cols.iter().copied().filter(|k| matches!(k, ColKey::Var(_))).collect();
    if comp_cols.is_empty() {
        return (l, r);
    }
    let key_positions = |t: &Table| -> Vec<usize> {
        comp_cols.iter().map(|&k| t.col_index(k).expect("companion col")).collect()
    };
    let (lp, rp) = (key_positions(&l), key_positions(&r));
    let key = |row: &[Value], pos: &[usize]| -> Vec<Value> {
        pos.iter().map(|&p| row[p].clone()).collect()
    };
    let row_key = |row: RowRef<'_>, pos: &[usize]| -> Vec<Value> {
        pos.iter().map(|&p| row.get(p).clone()).collect()
    };
    let lkeys: vcsql_relation::FxHashSet<Vec<Value>> =
        l.iter().map(|row| row_key(row, &lp)).collect();
    let rkeys: vcsql_relation::FxHashSet<Vec<Value>> =
        r.iter().map(|row| row_key(row, &rp)).collect();
    l.retain(|row| rkeys.contains(&key(row, &lp)));
    r.retain(|row| lkeys.contains(&key(row, &rp)));
    (l, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::{Column, Schema};
    use vcsql_relation::{DataType, Database, Relation, Tuple};

    fn db(rs: Vec<(i64, i64)>, ss: Vec<(i64, i64)>) -> Database {
        let mut db = Database::new();
        let r = Relation::from_tuples(
            Schema::new(
                "R",
                vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)],
            ),
            rs.into_iter().map(|(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)])).collect(),
        )
        .unwrap();
        let s = Relation::from_tuples(
            Schema::new(
                "S",
                vec![Column::new("b", DataType::Int), Column::new("c", DataType::Int)],
            ),
            ss.into_iter().map(|(b, c)| Tuple::new(vec![Value::Int(b), Value::Int(c)])).collect(),
        )
        .unwrap();
        db.add(r);
        db.add(s);
        db
    }

    fn spec<'a>() -> TwoWaySpec<'a> {
        TwoWaySpec {
            left: "R",
            right: "S",
            on: vec![("b", "b")],
            left_out: vec!["a"],
            right_out: vec!["c"],
        }
    }

    #[test]
    fn figure2_example() {
        // Paper Fig 2: b1 joins 3 R-tuples with 3 S-tuples; others dangle.
        let db =
            db(vec![(1, 10), (2, 10), (3, 10), (4, 20)], vec![(10, 7), (10, 8), (10, 9), (30, 5)]);
        let tag = TagGraph::build(&db);
        let res = two_way_join(&tag, EngineConfig::sequential(), &spec()).unwrap();
        assert_eq!(res.groups.len(), 1);
        assert_eq!(res.groups[0].join_value, Value::Int(10));
        // Factorized: 3 + 3 rows; expanded: 9.
        assert_eq!(res.groups[0].left.len(), 3);
        assert_eq!(res.groups[0].right.len(), 3);
        assert_eq!(res.output_size(), 9);
        assert_eq!(res.expand().len(), 9);
        // Exactly three supersteps (paper Section 4.1.1).
        assert_eq!(res.stats.supersteps, 3);
    }

    #[test]
    fn communication_bounded_by_input() {
        // Selective join: only keys 95..99 overlap.
        let rs: Vec<(i64, i64)> = (0..100).map(|i| (i, i)).collect();
        let ss: Vec<(i64, i64)> = (0..100).map(|i| (i + 95, i)).collect();
        let db = db(rs, ss);
        let tag = TagGraph::build(&db);
        let res = two_way_join(&tag, EngineConfig::sequential(), &spec()).unwrap();
        assert_eq!(res.output_size(), 5);
        // Signals and replies flow only for joining tuples:
        // 2 * (|R ⋉ S| + |S ⋉ R|) = 2 * (5 + 5) = 20 messages.
        assert_eq!(res.stats.total_messages(), 20);
    }

    #[test]
    fn multi_attribute_intersection() {
        // Paper Fig 3: R(A,B,C) ⋈ S(A,B,D) on (B, A): B coordinates, A is
        // the companion; rows agreeing on B but not on A are eliminated.
        let mut db = Database::new();
        let r = Relation::from_tuples(
            Schema::new(
                "R",
                vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Int),
                    Column::new("c", DataType::Int),
                ],
            ),
            vec![
                Tuple::new(vec![Value::Int(1), Value::Int(10), Value::Int(100)]),
                Tuple::new(vec![Value::Int(2), Value::Int(20), Value::Int(200)]),
            ],
        )
        .unwrap();
        let s = Relation::from_tuples(
            Schema::new(
                "S",
                vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Int),
                    Column::new("d", DataType::Int),
                ],
            ),
            vec![
                Tuple::new(vec![Value::Int(1), Value::Int(10), Value::Int(111)]),
                Tuple::new(vec![Value::Int(3), Value::Int(20), Value::Int(222)]),
            ],
        )
        .unwrap();
        db.add(r);
        db.add(s);
        let tag = TagGraph::build(&db);
        let spec = TwoWaySpec {
            left: "R",
            right: "S",
            on: vec![("b", "b"), ("a", "a")],
            left_out: vec!["c"],
            right_out: vec!["d"],
        };
        let res = two_way_join(&tag, EngineConfig::sequential(), &spec).unwrap();
        // Only (a=1, b=10) joins; b=20 disagrees on a and is pruned by the
        // intersection.
        assert_eq!(res.expand().len(), 1);
    }

    #[test]
    fn empty_join() {
        let db = db(vec![(1, 1)], vec![(2, 2)]);
        let tag = TagGraph::build(&db);
        let res = two_way_join(&tag, EngineConfig::sequential(), &spec()).unwrap();
        assert!(res.groups.is_empty());
        assert_eq!(res.expand().len(), 0);
    }
}
