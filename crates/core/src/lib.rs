//! # vcsql-core — TAG-join: vertex-centric SQL evaluation
//!
//! The paper's primary contribution. Given a relational database encoded as
//! a Tuple-Attribute Graph ([`vcsql_tag::TagGraph`]), this crate evaluates
//! SQL queries as vertex-centric BSP programs:
//!
//! * [`exec::TagJoinExecutor`] — the full pipeline: plan (GYO join tree /
//!   broken-cycle GHD → TAG plan → `GenSteps`), then the three-pass vertex
//!   program of Algorithm 2 (bottom-up reduction, top-down reduction,
//!   collection), plus the Section 7 operators: pushed-down selections and
//!   projections, local/global/scalar aggregation, HAVING, and (correlated)
//!   subqueries via semi/anti-join key sets and scalar maps.
//! * [`twoway`] — the standalone two-way join of Section 4, including the
//!   multi-attribute intersection protocol (Section 4.2) and the factorized
//!   output option.
//! * [`cyclic`] — worst-case-optimal triangle and n-cycle counting with the
//!   heavy/light split of Sections 6.1–6.2.
//! * [`cartesian`] — Cartesian products via a global aggregation vertex
//!   (Section 6.3, Algorithms A and B).
//! * [`outer`] — two-way left/right/full outer joins (Section 7).
//! * [`semi`] — standalone semi-joins and anti-joins (Section 7).

pub mod cartesian;
pub mod cyclic;
pub mod exec;
pub mod outer;
pub mod plan;
pub mod semi;
pub mod table;
pub mod twoway;

pub use exec::{ExecOutput, TagJoinExecutor};
pub use plan::QueryPlan;
pub use table::{ColKey, Table, TagMsg};
