//! Cartesian products via a global aggregation vertex (paper Section 6.3).
//!
//! * **Algorithm A** — every tuple vertex of both relations ships its row to
//!   the global aggregator, which builds the product centrally. Total cost
//!   `O(|R| + |S|)` communication, `O(|R|·|S|)` computation, no parallelism.
//! * **Algorithm B** — the aggregator first collects the ids of the
//!   `R`-tuple vertices and transmits them to every `S`-tuple vertex; each
//!   `S` vertex then sends its row *directly* to every `R` vertex (vertices
//!   may message any id they know), and `R` vertices build their slice of
//!   the product locally — the result stays distributed. Total cost
//!   `O(|R|·|S|)` on both measures, but the product is computed in parallel
//!   across the `R` vertices.

use crate::table::{ColKey, Table, TagMsg};
use std::sync::Arc;
use vcsql_bsp::program::Aggregator;
use vcsql_bsp::{Computation, EngineConfig, RunStats, VertexCtx, VertexId};
use vcsql_relation::Value;
use vcsql_tag::TagGraph;

type Result<T> = std::result::Result<T, vcsql_relation::RelError>;

#[derive(Default)]
struct Gather(Vec<Table>);
impl Aggregator for Gather {
    fn merge(&mut self, mut other: Self) {
        self.0.append(&mut other.0);
    }
}

#[derive(Default)]
struct Ids(Vec<VertexId>);
impl Aggregator for Ids {
    fn merge(&mut self, mut other: Self) {
        self.0.append(&mut other.0);
    }
}

fn own_table(tag: &TagGraph, table_idx: u16, v: VertexId) -> Option<Table> {
    let tuple = tag.tuple(v)?;
    let entries: Vec<(ColKey, Value)> = tuple
        .values()
        .enumerate()
        .map(|(c, val)| (ColKey::Col { table: table_idx, col: c as u16 }, val.clone()))
        .collect();
    Some(Table::singleton(&entries))
}

/// Algorithm A: centralized product at the aggregation vertex.
pub fn cartesian_a(
    tag: &TagGraph,
    config: EngineConfig,
    left: &str,
    right: &str,
) -> Result<(Table, RunStats)> {
    let graph = tag.graph();
    // A relation with no tuples has no vertices (and thus no label).
    let (Some(ll), Some(rl)) = (tag.relation_label(left), tag.relation_label(right)) else {
        return Ok((Table::empty(Vec::new()), RunStats::default()));
    };
    let mut comp: Computation<'_, (), TagMsg> = Computation::new(graph, config, |_| ());
    let mut both: Vec<VertexId> = graph.vertices_with_label(ll).to_vec();
    both.extend_from_slice(graph.vertices_with_label(rl));
    comp.activate(both);

    // One superstep: everyone contributes its row to the aggregator (the
    // "GA" vertex). The aggregator-side product is host work, mirroring the
    // sequential bottleneck the paper calls out.
    let (_, gathered) =
        comp.superstep(|ctx: &mut VertexCtx<'_, '_, (), TagMsg>, g: &mut Gather| {
            let side = if ctx.label() == ll { 0u16 } else { 1u16 };
            if let Some(t) = own_table(tag, side, ctx.id()) {
                g.0.push(t);
            }
        });
    let mut lrows: Option<Table> = None;
    let mut rrows: Option<Table> = None;
    for t in gathered.0 {
        let is_left = matches!(t.cols.first(), Some(ColKey::Col { table: 0, .. }));
        let slot = if is_left { &mut lrows } else { &mut rrows };
        match slot {
            None => *slot = Some(t),
            Some(acc) => acc.append(t),
        }
    }
    let product = match (lrows, rrows) {
        (Some(l), Some(r)) => l.natural_join(&r), // disjoint keys: product
        _ => Table::empty(Vec::new()),
    };
    let (_, stats) = comp.finish();
    Ok((product, stats))
}

/// Algorithm B: distributed product at the `R`-tuple vertices.
pub fn cartesian_b(
    tag: &TagGraph,
    config: EngineConfig,
    left: &str,
    right: &str,
) -> Result<(Table, RunStats)> {
    let graph = tag.graph();
    let (Some(ll), Some(rl)) = (tag.relation_label(left), tag.relation_label(right)) else {
        return Ok((Table::empty(Vec::new()), RunStats::default()));
    };
    let mut comp: Computation<'_, (), TagMsg> = Computation::new(graph, config, |_| ());

    // Superstep 1: R vertices send their ids to the aggregator.
    comp.activate_label(ll);
    let (_, r_ids) = comp.superstep(|ctx: &mut VertexCtx<'_, '_, (), TagMsg>, g: &mut Ids| {
        g.0.push(ctx.id());
    });

    // Superstep 2: the aggregator transmits the R ids to every S vertex
    // (modelled as the host activating S with the id list in scope); each S
    // vertex sends its row directly to every R vertex — |R|·|S| messages.
    comp.activate_label(rl);
    let r_ids = Arc::new(r_ids.0);
    let r_ids_ref = Arc::clone(&r_ids);
    comp.superstep_simple(move |ctx: &mut VertexCtx<'_, '_, (), TagMsg>| {
        let Some(row) = own_table(tag, 1, ctx.id()) else { return };
        let row = Arc::new(row);
        for &r in r_ids_ref.iter() {
            ctx.send(r, TagMsg::Table(Arc::clone(&row)));
        }
    });

    // Superstep 3: every R vertex combines the received S rows with its own
    // row; the product stays distributed (gathered here for inspection).
    let (_, gathered) =
        comp.superstep(|ctx: &mut VertexCtx<'_, '_, (), TagMsg>, g: &mut Gather| {
            let mut incoming: Vec<&Table> = Vec::new();
            for m in ctx.messages() {
                if let TagMsg::Table(t) = m {
                    incoming.push(t);
                }
            }
            let Some(s_rows) = Table::union(incoming) else { return };
            let Some(own) = own_table(tag, 0, ctx.id()) else { return };
            g.0.push(own.natural_join(&s_rows));
        });
    let product = Table::union(gathered.0.iter()).unwrap_or_else(|| Table::empty(Vec::new()));
    let (_, stats) = comp.finish();
    Ok((product, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::{Column, Schema};
    use vcsql_relation::{DataType, Database, Relation, Tuple};

    fn db(nl: usize, nr: usize) -> Database {
        let mut db = Database::new();
        let mk = |name: &str, n: usize, off: i64| {
            Relation::from_tuples(
                Schema::new(name, vec![Column::new("k", DataType::Int)]),
                (0..n).map(|i| Tuple::new(vec![Value::Int(off + i as i64)])).collect(),
            )
            .unwrap()
        };
        db.add(mk("L", nl, 0));
        db.add(mk("Rr", nr, 1000));
        db
    }

    #[test]
    fn algorithms_agree_and_match_size() {
        let db = db(4, 3);
        let tag = TagGraph::build(&db);
        let (a, stats_a) = cartesian_a(&tag, EngineConfig::sequential(), "L", "Rr").unwrap();
        let (b, stats_b) = cartesian_b(&tag, EngineConfig::sequential(), "L", "Rr").unwrap();
        assert_eq!(a.len(), 12);
        assert_eq!(b.len(), 12);
        let norm = |t: &Table| {
            let mut rows = t.to_rows();
            rows.sort();
            rows
        };
        assert_eq!(norm(&a), norm(&b));
        // Cost model: A sends no vertex-to-vertex messages (aggregator
        // contributions are host-side), B sends |R|·|S| row messages.
        assert_eq!(stats_a.total_messages(), 0);
        assert_eq!(stats_b.total_messages(), 12);
    }

    #[test]
    fn empty_side_yields_empty_product() {
        let db = db(3, 0);
        let tag = TagGraph::build(&db);
        // With no Rr tuples the relation has no vertices at all.
        let (a, _) = cartesian_a(&tag, EngineConfig::sequential(), "L", "Rr").unwrap();
        assert_eq!(a.len(), 0);
    }
}
