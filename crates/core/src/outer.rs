//! Two-way outer joins (paper Section 7).
//!
//! Built on the two-way join protocol: a `B`-attribute vertex participates
//! when it has a left edge (LEFT JOIN), a right edge (RIGHT JOIN), or either
//! (FULL JOIN — the reduction phase is skipped entirely, as the paper says,
//! because dangling tuples of both sides belong to the output). Tuples whose
//! counterpart side is empty are padded with NULLs. Tuples whose own join
//! value is NULL never reach an attribute vertex; the preserved sides pick
//! them up host-side with NULL padding.

use crate::table::{ColKey, Table};
use crate::twoway::{two_way_join, TwoWaySpec};
use vcsql_bsp::{EngineConfig, RunStats};
use vcsql_relation::{RelError, Value};
use vcsql_tag::TagGraph;

type Result<T> = std::result::Result<T, RelError>;

/// Outer-join flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OuterKind {
    Left,
    Right,
    Full,
}

/// Compute a two-way outer join; the output table's columns are the
/// requested output columns of both sides (left = table 0, right = 1),
/// padded with NULLs on the preserved side.
pub fn outer_join(
    tag: &TagGraph,
    config: EngineConfig,
    spec: &TwoWaySpec<'_>,
    kind: OuterKind,
) -> Result<(Table, RunStats)> {
    // Inner part via the Section 4 protocol.
    let inner = two_way_join(tag, config, spec)?;
    let mut out = inner.expand();
    let stats = inner.stats;

    let lschema = tag
        .schema(spec.left)
        .ok_or_else(|| RelError::UnknownRelation(spec.left.to_string()))?
        .clone();
    let rschema = tag
        .schema(spec.right)
        .ok_or_else(|| RelError::UnknownRelation(spec.right.to_string()))?
        .clone();

    // Column layout of the expanded inner join (may be empty if no rows
    // joined; rebuild it deterministically).
    let mut layout: Vec<ColKey> = Vec::new();
    for (i, _) in spec.on.iter().enumerate().skip(1) {
        layout.push(ColKey::Var(i as u32));
    }
    for (side, cols, schema) in
        [(0u16, &spec.left_out, &lschema), (1u16, &spec.right_out, &rschema)]
    {
        for c in cols.iter() {
            layout.push(ColKey::Col { table: side, col: schema.column_index(c)? as u16 });
        }
    }
    layout.sort_unstable();
    layout.dedup();
    if out.cols.is_empty() {
        out = Table::empty(layout.clone());
    }

    // Which join keys matched (to find dangling tuples host-side). Matching
    // keys are exactly the surviving factorized groups' join values plus
    // companions; recompute per preserved tuple by probing the other side.
    let matched_left: vcsql_relation::FxHashSet<Vec<Value>> = inner
        .groups
        .iter()
        .flat_map(|g| {
            g.left.iter().map(move |r| {
                let mut k = vec![g.join_value.clone()];
                for (i, _) in spec.on.iter().enumerate().skip(1) {
                    k.push(r.get(g.left.col_index(ColKey::Var(i as u32)).unwrap()).clone());
                }
                k
            })
        })
        .collect();
    let matched_right: vcsql_relation::FxHashSet<Vec<Value>> = inner
        .groups
        .iter()
        .flat_map(|g| {
            g.right.iter().map(move |r| {
                let mut k = vec![g.join_value.clone()];
                for (i, _) in spec.on.iter().enumerate().skip(1) {
                    k.push(r.get(g.right.col_index(ColKey::Var(i as u32)).unwrap()).clone());
                }
                k
            })
        })
        .collect();

    // Pad dangling tuples of the preserved side(s).
    let mut pad_side = |side: u16| -> Result<()> {
        let (rel, schema, on_cols, out_cols, matched) = if side == 0 {
            (spec.left, &lschema, &spec.on, &spec.left_out, &matched_left)
        } else {
            (spec.right, &rschema, &spec.on, &spec.right_out, &matched_right)
        };
        let Some(label) = tag.relation_label(rel) else { return Ok(()) };
        for &v in tag.graph().vertices_with_label(label) {
            let Some(tuple) = tag.tuple(v) else { continue };
            let key: Vec<Value> = on_cols
                .iter()
                .map(|&(lc, rc)| {
                    let c = if side == 0 { lc } else { rc };
                    Ok::<Value, RelError>(tuple.get(schema.column_index(c)?).clone())
                })
                .collect::<Result<_>>()?;
            let dangling = key.iter().any(Value::is_null) || !matched.contains(&key);
            if !dangling {
                continue;
            }
            let mut row = vec![Value::Null; layout.len()];
            for c in out_cols.iter() {
                let ci = schema.column_index(c)? as u16;
                let pos = layout
                    .binary_search(&ColKey::Col { table: side, col: ci })
                    .expect("output column in layout");
                row[pos] = tuple.get(ci as usize).clone();
            }
            // Companion vars take the preserved side's values.
            for (i, &(lc, rc)) in on_cols.iter().enumerate().skip(1) {
                let c = if side == 0 { lc } else { rc };
                if let Ok(pos) = layout.binary_search(&ColKey::Var(i as u32)) {
                    row[pos] = tuple.get(schema.column_index(c)?).clone();
                }
            }
            out.push_row(row);
        }
        Ok(())
    };
    match kind {
        OuterKind::Left => pad_side(0)?,
        OuterKind::Right => pad_side(1)?,
        OuterKind::Full => {
            pad_side(0)?;
            pad_side(1)?;
        }
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::{Column, Schema};
    use vcsql_relation::{DataType, Database, Relation, Tuple};

    fn db() -> Database {
        let mut db = Database::new();
        let r = Relation::from_tuples(
            Schema::new(
                "R",
                vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)],
            ),
            vec![
                Tuple::new(vec![Value::Int(1), Value::Int(10)]),
                Tuple::new(vec![Value::Int(2), Value::Int(20)]),
                Tuple::new(vec![Value::Int(3), Value::Null]),
            ],
        )
        .unwrap();
        let s = Relation::from_tuples(
            Schema::new(
                "S",
                vec![Column::new("b", DataType::Int), Column::new("c", DataType::Int)],
            ),
            vec![
                Tuple::new(vec![Value::Int(10), Value::Int(100)]),
                Tuple::new(vec![Value::Int(10), Value::Int(101)]),
                Tuple::new(vec![Value::Int(30), Value::Int(300)]),
            ],
        )
        .unwrap();
        db.add(r);
        db.add(s);
        db
    }

    fn spec<'a>() -> TwoWaySpec<'a> {
        TwoWaySpec {
            left: "R",
            right: "S",
            on: vec![("b", "b")],
            left_out: vec!["a"],
            right_out: vec!["c"],
        }
    }

    #[test]
    fn left_outer() {
        let dbv = db();
        let tag = TagGraph::build(&dbv);
        let (t, _) =
            outer_join(&tag, EngineConfig::sequential(), &spec(), OuterKind::Left).unwrap();
        // Inner: (1,100), (1,101); dangling left: a=2 and a=3 (NULL key).
        assert_eq!(t.len(), 4);
        let nulls = t.iter().filter(|r| r.values().any(Value::is_null)).count();
        assert_eq!(nulls, 2);
    }

    #[test]
    fn right_outer() {
        let dbv = db();
        let tag = TagGraph::build(&dbv);
        let (t, _) =
            outer_join(&tag, EngineConfig::sequential(), &spec(), OuterKind::Right).unwrap();
        // Inner 2 rows + dangling right b=30.
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn full_outer() {
        let dbv = db();
        let tag = TagGraph::build(&dbv);
        let (t, _) =
            outer_join(&tag, EngineConfig::sequential(), &spec(), OuterKind::Full).unwrap();
        // Inner 2 + left dangling 2 + right dangling 1.
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn outer_join_with_no_matches_pads_everything() {
        let mut dbv = Database::new();
        dbv.add(
            Relation::from_tuples(
                Schema::new(
                    "R",
                    vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)],
                ),
                vec![Tuple::new(vec![Value::Int(1), Value::Int(7)])],
            )
            .unwrap(),
        );
        dbv.add(
            Relation::from_tuples(
                Schema::new(
                    "S",
                    vec![Column::new("b", DataType::Int), Column::new("c", DataType::Int)],
                ),
                vec![Tuple::new(vec![Value::Int(8), Value::Int(80)])],
            )
            .unwrap(),
        );
        let tag = TagGraph::build(&dbv);
        let (t, _) =
            outer_join(&tag, EngineConfig::sequential(), &spec(), OuterKind::Full).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|r| r.values().any(Value::is_null)));
    }
}
