//! Cycle queries (paper Sections 6.1–6.2): vertex-centric counting of
//! triangles and n-way cycles with the NPRR-style heavy/light split.
//!
//! The query shape is `E0(x0,x1) ⋈ E1(x1,x2) ⋈ ... ⋈ E{n-1}(x{n-1},x0)` over
//! binary relations with columns `(src, dst)`.
//!
//! The vanilla algorithm starts at the `x0` attribute vertices and propagates
//! their ids along both directions of the cycle until the flows meet at the
//! "middle" attribute vertices, which intersect the streams (Example 6.1).
//! The worst-case-optimal variant (Section 6.1.2) classifies each `x0` value
//! as *heavy* (degree through `E0.src` exceeds θ) or *light*: heavy values
//! run vanilla; light values wake their `x1` neighbours through the
//! (light-marked) `E0` tuples and the propagation starts from `x1` instead —
//! bounding replication by θ on one side and `|E0|/θ` on the other, which
//! yields the AGM bound at `θ = √IN`.
//!
//! Messages carry `(origin, multiplicity)` maps, pre-aggregated at every hop
//! — a counting-sufficient optimization that leaves the asymptotic message
//! complexity unchanged. In odd cycles the shorter flow reaches the meeting
//! attribute one round early and is stashed in vertex state until the longer
//! flow arrives.

use vcsql_bsp::program::Aggregator;
use vcsql_bsp::{Computation, EngineConfig, LabelId, Message, RunStats, VertexCtx, VertexId};
use vcsql_relation::{FxHashMap, RelError};
use vcsql_tag::TagGraph;

type Result<T> = std::result::Result<T, RelError>;

/// `(origin attribute vertex, path multiplicity)` pairs, pre-aggregated.
#[derive(Debug, Clone)]
struct Paths {
    /// 0 = left flow (through E0, E1, ...), 1 = right flow (backwards).
    side: u8,
    counts: Vec<(VertexId, u64)>,
}

impl Message for Paths {
    fn byte_size(&self) -> usize {
        2 + self.counts.len() * 12
    }
}

#[derive(Default)]
struct CountAgg(u64);
impl Aggregator for CountAgg {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

/// Per-vertex scratch.
#[derive(Default)]
struct CySt {
    /// E0 tuples woken by a light x0 (the light stage's right flow may only
    /// cross these).
    light_marked: bool,
    /// Early-arrived right flow stashed at the meeting attribute (odd
    /// cycles), tagged with the stage that wrote it so a stash abandoned by
    /// one stage (no left flow ever arrived) cannot leak into the next.
    stored_right: FxHashMap<VertexId, u64>,
    stored_stage: u8,
}

struct RelLabels {
    src: LabelId,
    dst: LabelId,
}

/// Which origins start a stage.
#[derive(Clone, Copy)]
enum StageFilter {
    /// All x0 values with both cycle edges.
    Vanilla,
    /// x0 values with `deg(E0.src) > θ`.
    Heavy(usize),
    /// Previously woken x1 vertices (light stage; no re-activation).
    SeededLight,
}

/// Count the n-cycles (tuple combinations closing the cycle) among the given
/// binary relations. `theta = None` runs the vanilla algorithm from `x0`;
/// `Some(θ)` runs the heavy/light split of Section 6.1.2.
pub fn count_cycles(
    tag: &TagGraph,
    relations: &[&str],
    theta: Option<usize>,
    config: EngineConfig,
) -> Result<(u64, RunStats)> {
    let n = relations.len();
    if n < 3 {
        return Err(RelError::Other("cycle queries need at least 3 relations".into()));
    }
    let labels: Vec<RelLabels> = relations
        .iter()
        .map(|r| {
            let src = tag
                .column_label_by_name(r, "src")
                .ok_or_else(|| RelError::Other(format!("{r}.src not materialized")))?;
            let dst = tag
                .column_label_by_name(r, "dst")
                .ok_or_else(|| RelError::Other(format!("{r}.dst not materialized")))?;
            Ok::<RelLabels, RelError>(RelLabels { src, dst })
        })
        .collect::<Result<_>>()?;

    let graph = tag.graph();
    let mut comp: Computation<'_, CySt, Paths> =
        Computation::new(graph, config, |_| CySt::default());

    // All attribute vertices (non-cycle values deactivate after one local
    // degree check).
    let mut attrs: Vec<VertexId> = Vec::new();
    for label_name in ["@int", "@str", "@date"] {
        if let Some(l) = graph.vertex_label_id(label_name) {
            attrs.extend_from_slice(graph.vertices_with_label(l));
        }
    }

    let total = match theta {
        None => run_stage(&mut comp, &labels, &attrs, 0, StageFilter::Vanilla, 0),
        Some(theta) => {
            let heavy = run_stage(&mut comp, &labels, &attrs, 0, StageFilter::Heavy(theta), 0);

            // Wake-up: light x0 → its E0 tuples (marked light) → x1.
            comp.activate(attrs.clone());
            let e0 = &labels[0];
            comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, CySt, Paths>| {
                let deg = ctx.degree_with(e0.src);
                if deg == 0 || deg > theta {
                    return;
                }
                let targets: Vec<VertexId> =
                    ctx.edges_with(e0.src).iter().map(|e| e.target).collect();
                for t in targets {
                    ctx.send(t, Paths { side: 0, counts: vec![(ctx.id(), 1)] });
                }
            });
            comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, CySt, Paths>| {
                if ctx.messages().is_empty() {
                    return;
                }
                ctx.state.light_marked = true;
                // Forward the wake to this tuple's x1 attribute vertex.
                let targets: Vec<VertexId> =
                    ctx.edges_with(e0.dst).iter().map(|e| e.target).collect();
                for t in targets {
                    ctx.send(t, Paths { side: 0, counts: vec![(ctx.id(), 1)] });
                }
            });

            let light = run_stage(&mut comp, &labels, &attrs, 1, StageFilter::SeededLight, 1);
            heavy + light
        }
    };

    let (_, stats) = comp.finish();
    Ok((total, stats))
}

/// Run one propagation stage starting at attribute class `x_start`; returns
/// the cycle count this stage found.
fn run_stage(
    comp: &mut Computation<'_, CySt, Paths>,
    labels: &[RelLabels],
    attrs: &[VertexId],
    start: usize,
    filter: StageFilter,
    stage_tag: u8,
) -> u64 {
    let n = labels.len();
    // The left flow crosses relations start, start+1, ..., start+mid-1; the
    // right flow crosses start-1, start-2, ..., start+mid (backwards). Both
    // land at x_{start+mid}.
    let mid = n.div_ceil(2);
    let left_hops = mid;
    let right_hops = n - mid;
    let total_hops = left_hops.max(right_hops);

    match filter {
        StageFilter::SeededLight => {} // woken x1 vertices are already active
        _ => comp.activate(attrs.to_vec()),
    }

    // Superstep A: origins emit both flows.
    let l0 = &labels[start % n];
    let lright = &labels[(start + n - 1) % n];
    comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, CySt, Paths>| {
        match filter {
            StageFilter::Vanilla | StageFilter::Heavy(_) => {
                let deg = ctx.degree_with(l0.src);
                // Example 6.1: deactivate without both incident cycle edges.
                if deg == 0 || ctx.degree_with(lright.dst) == 0 {
                    return;
                }
                if let StageFilter::Heavy(theta) = filter {
                    if deg <= theta {
                        return;
                    }
                }
            }
            StageFilter::SeededLight => {} // activation already selected them
        }
        let me = ctx.id();
        let left: Vec<VertexId> = ctx.edges_with(l0.src).iter().map(|e| e.target).collect();
        for t in left {
            ctx.send(t, Paths { side: 0, counts: vec![(me, 1)] });
        }
        let right: Vec<VertexId> = ctx.edges_with(lright.dst).iter().map(|e| e.target).collect();
        for t in right {
            ctx.send(t, Paths { side: 1, counts: vec![(me, 1)] });
        }
    });

    let mut total = 0u64;
    for hop in 0..total_hops {
        let left_rel = &labels[(start + hop) % n];
        let right_rel = &labels[(start + n - 1 - hop) % n];
        let left_live = hop < left_hops;
        let right_live = hop < right_hops;
        // The light stage's right flow may only cross light-marked E0 tuples
        // (equation (1): R_light ⋈ T).
        let light_e0_guard = matches!(filter, StageFilter::SeededLight) && hop == 0;

        // Tuple-level hop.
        comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, CySt, Paths>| {
            let (left, mut right) = gather(ctx.messages());
            if light_e0_guard && !ctx.state.light_marked {
                right.clear();
            }
            if left_live && !left.is_empty() {
                let counts: Vec<(VertexId, u64)> = left.into_iter().collect();
                let targets: Vec<VertexId> =
                    ctx.edges_with(left_rel.dst).iter().map(|e| e.target).collect();
                for t in targets {
                    ctx.send(t, Paths { side: 0, counts: counts.clone() });
                }
            }
            if right_live && !right.is_empty() {
                let counts: Vec<(VertexId, u64)> = right.into_iter().collect();
                let targets: Vec<VertexId> =
                    ctx.edges_with(right_rel.src).iter().map(|e| e.target).collect();
                for t in targets {
                    ctx.send(t, Paths { side: 1, counts: counts.clone() });
                }
            }
        });

        if hop + 1 == total_hops {
            // Meet superstep at x_{start+mid}: intersect left and right
            // (incoming plus any stashed early arrivals).
            let (_, agg) =
                comp.superstep(|ctx: &mut VertexCtx<'_, '_, CySt, Paths>, g: &mut CountAgg| {
                    let (left, mut right) = gather(ctx.messages());
                    if ctx.state.stored_stage == stage_tag {
                        for (o, c) in std::mem::take(&mut ctx.state.stored_right) {
                            *right.entry(o).or_insert(0) += c;
                        }
                    }
                    for (o, lc) in left {
                        if let Some(rc) = right.get(&o) {
                            g.0 += lc * rc;
                        }
                    }
                });
            total = agg.0;
        } else {
            // Attribute-level hop: forward live flows, stash landed ones.
            let next_left = &labels[(start + hop + 1) % n];
            let next_right = &labels[(start + n - 2 - hop) % n];
            let l_live = hop + 1 < left_hops;
            let r_live = hop + 1 < right_hops;
            comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, CySt, Paths>| {
                let (left, right) = gather(ctx.messages());
                if !left.is_empty() && l_live {
                    let counts: Vec<(VertexId, u64)> = left.into_iter().collect();
                    let targets: Vec<VertexId> =
                        ctx.edges_with(next_left.src).iter().map(|e| e.target).collect();
                    for t in targets {
                        ctx.send(t, Paths { side: 0, counts: counts.clone() });
                    }
                }
                if !right.is_empty() {
                    if r_live {
                        let counts: Vec<(VertexId, u64)> = right.into_iter().collect();
                        let targets: Vec<VertexId> =
                            ctx.edges_with(next_right.dst).iter().map(|e| e.target).collect();
                        for t in targets {
                            ctx.send(t, Paths { side: 1, counts: counts.clone() });
                        }
                    } else {
                        // Landed early (odd cycle): wait for the left flow.
                        if ctx.state.stored_stage != stage_tag {
                            ctx.state.stored_right.clear();
                            ctx.state.stored_stage = stage_tag;
                        }
                        for (o, c) in right {
                            *ctx.state.stored_right.entry(o).or_insert(0) += c;
                        }
                    }
                }
            });
        }
    }
    total
}

/// Aggregate incoming path messages per (side, origin).
fn gather(msgs: &[Paths]) -> (FxHashMap<VertexId, u64>, FxHashMap<VertexId, u64>) {
    let mut left: FxHashMap<VertexId, u64> = FxHashMap::default();
    let mut right: FxHashMap<VertexId, u64> = FxHashMap::default();
    for m in msgs {
        let map = if m.side == 0 { &mut left } else { &mut right };
        for &(o, c) in &m.counts {
            *map.entry(o).or_insert(0) += c;
        }
    }
    (left, right)
}

/// Brute-force cycle count over the raw relations (test oracle).
pub fn brute_force_cycles(db: &vcsql_relation::Database, relations: &[&str]) -> Result<u64> {
    let n = relations.len();
    let rels: Vec<&vcsql_relation::Relation> =
        relations.iter().map(|r| db.get(r)).collect::<Result<_>>()?;
    let mut paths: FxHashMap<(vcsql_relation::Value, vcsql_relation::Value), u64> =
        FxHashMap::default();
    for t in &rels[0].tuples {
        *paths.entry((t.get(0).clone(), t.get(1).clone())).or_insert(0) += 1;
    }
    for rel in &rels[1..n - 1] {
        let mut next: FxHashMap<(vcsql_relation::Value, vcsql_relation::Value), u64> =
            FxHashMap::default();
        for ((first, cur), count) in &paths {
            for t in &rel.tuples {
                if t.get(0) == cur {
                    *next.entry((first.clone(), t.get(1).clone())).or_insert(0) += count;
                }
            }
        }
        paths = next;
    }
    let mut total = 0u64;
    for ((first, cur), count) in &paths {
        for t in &rels[n - 1].tuples {
            if t.get(0) == cur && t.get(1) == first {
                total += count;
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_workload::synthetic::cycle_db;

    fn check(n: usize, rows: usize, domain: i64, seed: u64) {
        let db = cycle_db(n, rows, domain, seed);
        let names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let tag = TagGraph::build(&db);
        let expected = brute_force_cycles(&db, &name_refs).unwrap();

        let (vanilla, _) =
            count_cycles(&tag, &name_refs, None, EngineConfig::sequential()).unwrap();
        assert_eq!(vanilla, expected, "vanilla n={n}");

        for theta in [1, 4, 16] {
            let (wco, _) =
                count_cycles(&tag, &name_refs, Some(theta), EngineConfig::with_threads(4)).unwrap();
            assert_eq!(wco, expected, "heavy/light θ={theta} n={n}");
        }
    }

    #[test]
    fn triangles_match_brute_force() {
        check(3, 120, 30, 1);
        check(3, 60, 10, 2); // dense: many triangles
    }

    #[test]
    fn square_cycles_match_brute_force() {
        check(4, 80, 20, 3);
    }

    #[test]
    fn five_cycles_match_brute_force() {
        check(5, 50, 15, 4);
    }

    #[test]
    fn empty_when_no_cycles() {
        // Layered construction that never closes a cycle.
        use vcsql_relation::schema::{Column, Schema};
        use vcsql_relation::{DataType, Database, Relation, Tuple, Value};
        let mut db = Database::new();
        for (i, off) in [(0, 0), (1, 100), (2, 200)] {
            let mut rel = Relation::empty(Schema::new(
                format!("e{i}"),
                vec![Column::new("src", DataType::Int), Column::new("dst", DataType::Int)],
            ));
            for k in 0..10 {
                rel.push(Tuple::new(vec![Value::Int(off + k), Value::Int(off + 100 + k)])).unwrap();
            }
            db.add(rel);
        }
        let tag = TagGraph::build(&db);
        let (count, _) =
            count_cycles(&tag, &["e0", "e1", "e2"], Some(2), EngineConfig::sequential()).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn hub_instance_heavy_light_agrees() {
        // A hub-heavy instance where one value has a huge degree.
        use vcsql_relation::schema::{Column, Schema};
        use vcsql_relation::{DataType, Database, Relation, Tuple, Value};
        let mut db = Database::new();
        let m = 40i64;
        for i in 0..3 {
            let mut rel = Relation::empty(Schema::new(
                format!("e{i}"),
                vec![Column::new("src", DataType::Int), Column::new("dst", DataType::Int)],
            ));
            for k in 0..m {
                rel.push(Tuple::new(vec![Value::Int(0), Value::Int(k)])).unwrap();
                rel.push(Tuple::new(vec![Value::Int(k), Value::Int(0)])).unwrap();
            }
            db.add(rel);
        }
        let tag = TagGraph::build(&db);
        let names = ["e0", "e1", "e2"];
        let expected = brute_force_cycles(&db, &names).unwrap();
        let theta = ((3 * 2 * m) as f64).sqrt() as usize;
        let (vanilla, _) = count_cycles(&tag, &names, None, EngineConfig::sequential()).unwrap();
        let (wco, _) = count_cycles(&tag, &names, Some(theta), EngineConfig::sequential()).unwrap();
        assert_eq!(vanilla, expected);
        assert_eq!(wco, expected);
    }
}
