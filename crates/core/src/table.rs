//! Intermediate result tables exchanged during the collection phase.
//!
//! Columns are identified by [`ColKey`]: join columns by their join
//! *variable* (so equi-joined columns from different relations unify under
//! one key — what lets a tuple vertex natural-join an incoming table against
//! its own row), everything else by its `(table, column)` provenance.
//! Column lists are kept **sorted**, which makes layouts predictable (the
//! final layout of a traversal is statically known) and shared-column
//! detection a linear merge.
//!
//! # Storage
//!
//! A table is a sequence of immutable column-major [`Chunk`]s behind `Arc`s.
//! [`Table::union`] and [`Table::append`] splice whole chunks instead of
//! copying values, so fanning a collection table out to many vertices (or
//! accumulating incoming tables at one) is O(chunks), not O(cells). Row
//! access goes through the [`RowRef`] cursor or the scratch-row helper
//! [`Table::for_each_row`]; nothing outside this module sees the chunk
//! boundaries, which carry no meaning (equality, joins and the wire-byte
//! model are all chunk-agnostic).
//!
//! The wire model ([`Table::approx_bytes`]) is maintained incrementally at
//! construction — `16 + rows x cols x 8` plus the 8-byte-padded payload of
//! every string cell, exactly the bytes the row-major layout reported — so
//! [`TagMsg::byte_size`] is O(1) and every measured spark/tag byte ratio is
//! unchanged by the columnar layout.

use std::sync::Arc;
use vcsql_bsp::{Message, VertexId};
use vcsql_relation::agg::Accumulator;
use vcsql_relation::{fx, Value};

/// A column key of an intermediate table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ColKey {
    /// A join variable (equivalence class of equi-joined columns).
    Var(u32),
    /// A non-join column, identified by `(table index, column index)`.
    Col { table: u16, col: u16 },
}

/// Wire bytes a single value contributes beyond its fixed 8-byte slot.
#[inline]
fn value_str_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => s.len().div_ceil(8) * 8,
        _ => 0,
    }
}

/// One immutable column-major segment of a [`Table`].
///
/// `columns` is parallel to the owning table's `cols`; `rows` is explicit so
/// zero-column tables (legal cross-product degenerate) still count rows.
#[derive(Debug)]
pub struct Chunk {
    columns: Vec<Vec<Value>>,
    rows: usize,
    /// Padded string payload of every cell in this chunk (wire model).
    str_bytes: usize,
}

impl Chunk {
    fn new(width: usize) -> Chunk {
        Chunk { columns: vec![Vec::new(); width], rows: 0, str_bytes: 0 }
    }

    #[inline]
    fn get(&self, col: usize, row: usize) -> &Value {
        &self.columns[col][row]
    }

    /// Append one value to column `col`; call [`Chunk::commit_row`] once per
    /// row after all columns are written.
    #[inline]
    fn push_at(&mut self, col: usize, v: Value) {
        self.str_bytes += value_str_bytes(&v);
        self.columns[col].push(v);
    }

    #[inline]
    fn commit_row(&mut self) {
        self.rows += 1;
    }
}

/// A borrowed row: a cursor into one chunk. `Copy`, 16 bytes — cheap to
/// hand around during joins.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    chunk: &'a Chunk,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// The value in column position `col` (position in the table's `cols`).
    #[inline]
    pub fn get(&self, col: usize) -> &'a Value {
        self.chunk.get(col, self.row)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.chunk.columns.len()
    }

    /// Left-to-right values of this row.
    pub fn values(&self) -> impl Iterator<Item = &'a Value> + '_ {
        self.chunk.columns.iter().map(move |c| &c[self.row])
    }

    /// Materialize the row (tests, sorting, padding).
    pub fn to_boxed(&self) -> Box<[Value]> {
        self.values().cloned().collect()
    }
}

/// An intermediate table: sorted column keys + chunked column-major rows.
#[derive(Debug, Clone)]
pub struct Table {
    pub cols: Vec<ColKey>,
    /// Shared storage; cloning a table or unioning tables bumps refcounts.
    chunks: Vec<Arc<Chunk>>,
    /// Total row count across chunks (incremental, O(1) reads).
    len: usize,
    /// Total padded string payload across chunks (incremental wire model).
    str_bytes: usize,
}

impl Table {
    /// Empty table over sorted keys.
    pub fn empty(mut cols: Vec<ColKey>) -> Table {
        cols.sort_unstable();
        cols.dedup();
        Table { cols, chunks: Vec::new(), len: 0, str_bytes: 0 }
    }

    /// A one-row table. `entries` may be unsorted and may repeat keys (the
    /// first value wins).
    pub fn singleton(entries: &[(ColKey, Value)]) -> Table {
        let mut sorted: Vec<(ColKey, Value)> = entries.to_vec();
        sorted.sort_by_key(|&(k, _)| k);
        sorted.dedup_by_key(|&mut (k, _)| k);
        let cols = sorted.iter().map(|&(k, _)| k).collect();
        let row = sorted.into_iter().map(|(_, v)| v).collect();
        Table::one_row(cols, row)
    }

    /// A one-row table over already-sorted, deduplicated keys.
    pub fn one_row(cols: Vec<ColKey>, row: Vec<Value>) -> Table {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "one_row cols must be sorted");
        debug_assert_eq!(cols.len(), row.len(), "one_row width mismatch");
        let str_bytes: usize = row.iter().map(value_str_bytes).sum();
        let chunk =
            Chunk { columns: row.into_iter().map(|v| vec![v]).collect(), rows: 1, str_bytes };
        Table { cols, chunks: vec![Arc::new(chunk)], len: 1, str_bytes }
    }

    /// Build from row-major data (tests, fixtures). `cols` must be sorted
    /// and deduplicated, every row as wide as `cols`.
    pub fn from_rows(cols: Vec<ColKey>, rows: Vec<Vec<Value>>) -> Table {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "from_rows cols must be sorted");
        let mut chunk = Chunk::new(cols.len());
        for row in rows {
            debug_assert_eq!(row.len(), cols.len(), "from_rows width mismatch");
            for (c, v) in row.into_iter().enumerate() {
                chunk.push_at(c, v);
            }
            chunk.commit_row();
        }
        Table::from_chunk(cols, chunk)
    }

    fn from_chunk(cols: Vec<ColKey>, chunk: Chunk) -> Table {
        let mut t = Table { cols, chunks: Vec::new(), len: 0, str_bytes: 0 };
        if chunk.rows > 0 {
            t.len = chunk.rows;
            t.str_bytes = chunk.str_bytes;
            t.chunks.push(Arc::new(chunk));
        }
        t
    }

    /// Position of a key.
    pub fn col_index(&self, key: ColKey) -> Option<usize> {
        self.cols.binary_search(&key).ok()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate serialized payload bytes (used for message accounting):
    /// one 8-byte word per value plus the contents of variable-length
    /// values — the same wire model the distributed simulation charges the
    /// shuffle-join side, so TAG-vs-Spark byte comparisons are like for
    /// like. O(1): both terms are maintained incrementally at construction.
    pub fn approx_bytes(&self) -> usize {
        16 + self.len * self.cols.len() * 8 + self.str_bytes
    }

    /// Iterate rows as [`RowRef`] cursors (no materialization).
    pub fn iter(&self) -> impl Iterator<Item = RowRef<'_>> {
        self.chunks.iter().flat_map(|c| (0..c.rows).map(move |row| RowRef { chunk: c, row }))
    }

    /// Call `f` with each row materialized into a reused scratch slice —
    /// for consumers (expression evaluation, accumulators) that need a
    /// contiguous `&[Value]` row.
    pub fn for_each_row(&self, mut f: impl FnMut(&[Value])) {
        let width = self.cols.len();
        let mut scratch: Vec<Value> = Vec::with_capacity(width);
        for chunk in &self.chunks {
            for r in 0..chunk.rows {
                scratch.clear();
                scratch.extend(chunk.columns.iter().map(|c| c[r].clone()));
                f(&scratch);
            }
        }
    }

    /// Materialize all rows (tests, result normalization).
    pub fn to_rows(&self) -> Vec<Box<[Value]>> {
        self.iter().map(|r| r.to_boxed()).collect()
    }

    /// Append one row. Extends the last chunk when uniquely owned (cheap
    /// for repeated pushes into a private table); a shared chunk is left
    /// untouched and a fresh chunk is started.
    pub fn push_row(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.cols.len(), "push_row width mismatch");
        let row_str: usize = row.iter().map(value_str_bytes).sum();
        self.len += 1;
        self.str_bytes += row_str;
        if let Some(chunk) = self.chunks.last_mut().and_then(Arc::get_mut) {
            for (c, v) in row.into_iter().enumerate() {
                chunk.columns[c].push(v);
            }
            chunk.rows += 1;
            chunk.str_bytes += row_str;
            return;
        }
        let mut chunk = Chunk::new(self.cols.len());
        for (c, v) in row.into_iter().enumerate() {
            chunk.columns[c].push(v);
        }
        chunk.rows = 1;
        chunk.str_bytes = row_str;
        self.chunks.push(Arc::new(chunk));
    }

    /// Splice another same-schema table onto this one (bag union). Moves
    /// chunk handles; no values are copied.
    pub fn append(&mut self, other: Table) {
        debug_assert_eq!(self.cols, other.cols, "append of mismatched layouts");
        self.chunks.extend(other.chunks);
        self.len += other.len;
        self.str_bytes += other.str_bytes;
    }

    /// Union of same-schema tables (bag semantics). Shares chunk storage
    /// with every operand — the first included — so no row is cloned.
    pub fn union<'a>(tables: impl IntoIterator<Item = &'a Table>) -> Option<Table> {
        let mut out: Option<Table> = None;
        for t in tables {
            match &mut out {
                None => out = Some(t.clone()),
                Some(acc) => {
                    debug_assert_eq!(acc.cols, t.cols, "union of mismatched layouts");
                    acc.chunks.extend(t.chunks.iter().cloned());
                    acc.len += t.len;
                    acc.str_bytes += t.str_bytes;
                }
            }
        }
        out
    }

    /// Natural join on shared column keys (hash join on the smaller side;
    /// cross product when no keys are shared). Join values use `Value`'s
    /// total equality (never NULL for `Var` keys — attribute vertices exist
    /// only for non-NULL values).
    pub fn natural_join(&self, other: &Table) -> Table {
        // Shared keys: linear merge of the sorted col lists.
        let mut shared = Vec::new();
        {
            let (mut i, mut j) = (0, 0);
            while i < self.cols.len() && j < other.cols.len() {
                match self.cols[i].cmp(&other.cols[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        shared.push(self.cols[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        // Output layout: sorted union.
        let mut out_cols: Vec<ColKey> =
            self.cols.iter().chain(other.cols.iter()).copied().collect();
        out_cols.sort_unstable();
        out_cols.dedup();

        let (build, probe) = if self.len() <= other.len() { (self, other) } else { (other, self) };
        let bkey: Vec<usize> =
            shared.iter().map(|&k| build.col_index(k).expect("shared key")).collect();
        let pkey: Vec<usize> =
            shared.iter().map(|&k| probe.col_index(k).expect("shared key")).collect();

        // `(source column, output position)` emission plans. Each output
        // column is written exactly once per row: the probe side covers its
        // own columns, the build side everything else (on shared keys both
        // values are equal by construction, so dropping build's copy is the
        // column-wise equivalent of the old "probe overrides" row merge).
        let idx = |k: ColKey| out_cols.binary_search(&k).expect("out key");
        let mut probe_covers = vec![false; out_cols.len()];
        let p_emit: Vec<(usize, usize)> = probe
            .cols
            .iter()
            .enumerate()
            .map(|(c, &k)| {
                let pos = idx(k);
                probe_covers[pos] = true;
                (c, pos)
            })
            .collect();
        let b_emit: Vec<(usize, usize)> = build
            .cols
            .iter()
            .enumerate()
            .filter_map(|(c, &k)| {
                let pos = idx(k);
                (!probe_covers[pos]).then_some((c, pos))
            })
            .collect();

        let mut out = Chunk::new(out_cols.len());
        let emit = |out: &mut Chunk, b: RowRef<'_>, p: RowRef<'_>| {
            for &(c, pos) in &b_emit {
                out.push_at(pos, b.get(c).clone());
            }
            for &(c, pos) in &p_emit {
                out.push_at(pos, p.get(c).clone());
            }
            out.commit_row();
        };

        if shared.is_empty() {
            for b in build.iter() {
                for p in probe.iter() {
                    emit(&mut out, b, p);
                }
            }
            return Table::from_chunk(out_cols, out);
        }

        // Hash join: index the smaller side by key, locate rows by
        // `(chunk, row)` so matches read straight from shared storage.
        let mut index: vcsql_relation::FxHashMap<Vec<Value>, Vec<(u32, u32)>> =
            fx::map_with_capacity(build.len());
        for (ci, chunk) in build.chunks.iter().enumerate() {
            for r in 0..chunk.rows {
                let key: Vec<Value> = bkey.iter().map(|&k| chunk.get(k, r).clone()).collect();
                index.entry(key).or_default().push((ci as u32, r as u32));
            }
        }
        let mut key = Vec::with_capacity(pkey.len());
        for p in probe.iter() {
            key.clear();
            key.extend(pkey.iter().map(|&k| p.get(k).clone()));
            if let Some(matches) = index.get(&key) {
                for &(ci, r) in matches {
                    let b = RowRef { chunk: &build.chunks[ci as usize], row: r as usize };
                    emit(&mut out, b, p);
                }
            }
        }
        Table::from_chunk(out_cols, out)
    }

    /// Keep rows passing `pred`. Chunks that keep every row are reused
    /// as-is (shared storage, no copy); partially-kept chunks are rebuilt.
    pub fn retain(&mut self, mut pred: impl FnMut(&[Value]) -> bool) {
        let width = self.cols.len();
        let mut scratch: Vec<Value> = Vec::with_capacity(width);
        let chunks = std::mem::take(&mut self.chunks);
        self.len = 0;
        self.str_bytes = 0;
        for chunk in chunks {
            let keep: Vec<bool> = (0..chunk.rows)
                .map(|r| {
                    scratch.clear();
                    scratch.extend(chunk.columns.iter().map(|c| c[r].clone()));
                    pred(&scratch)
                })
                .collect();
            let kept = keep.iter().filter(|&&k| k).count();
            if kept == chunk.rows {
                self.len += chunk.rows;
                self.str_bytes += chunk.str_bytes;
                self.chunks.push(chunk);
            } else if kept > 0 {
                let mut filtered = Chunk::new(width);
                for (r, &k) in keep.iter().enumerate() {
                    if k {
                        for c in 0..width {
                            filtered.push_at(c, chunk.get(c, r).clone());
                        }
                        filtered.commit_row();
                    }
                }
                self.len += filtered.rows;
                self.str_bytes += filtered.str_bytes;
                self.chunks.push(Arc::new(filtered));
            }
        }
    }
}

/// Row-sequence equality (chunk boundaries carry no meaning).
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.cols == other.cols
            && self.len == other.len
            && self
                .iter()
                .zip(other.iter())
                .all(|(a, b)| a.values().zip(b.values()).all(|(x, y)| x == y))
    }
}

/// A partially aggregated group (what roots ship to aggregation vertices).
#[derive(Debug, Clone)]
pub struct Partial {
    /// One accumulator per output item (placeholders for non-aggregates).
    pub accs: Vec<Accumulator>,
    /// Accumulators for HAVING predicates.
    pub having: Vec<Accumulator>,
    /// A representative final-layout row of the group (for evaluating
    /// group-key expressions and HAVING right-hand sides).
    pub rep: Box<[Value]>,
}

/// Messages of the TAG-join vertex program.
#[derive(Debug, Clone)]
pub enum TagMsg {
    /// Reduction-phase signal carrying the sender's id (Algorithm 2,
    /// lines 13/18).
    Signal(VertexId),
    /// Collection-phase intermediate table (Algorithm 2, line 40).
    Table(Arc<Table>),
    /// Aggregation-phase `(group key, partial aggregate)` routed to a
    /// group-key attribute vertex (Section 7, local aggregation).
    Partial(Arc<(Box<[Value]>, Partial)>),
}

impl Message for TagMsg {
    fn byte_size(&self) -> usize {
        match self {
            TagMsg::Signal(_) => 8,
            TagMsg::Table(t) => t.approx_bytes(),
            TagMsg::Partial(kp) => {
                let (k, p) = &**kp;
                32 + k.len() * 16 + p.accs.len() * 24 + p.having.len() * 24 + p.rep.len() * 16
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    fn rows_of(t: &Table) -> Vec<Box<[Value]>> {
        t.to_rows()
    }

    #[test]
    fn singleton_sorts_and_dedups() {
        let t = Table::singleton(&[
            (ColKey::Col { table: 1, col: 0 }, v(10)),
            (ColKey::Var(0), v(1)),
            (ColKey::Var(0), v(999)), // duplicate key: first kept after sort
        ]);
        assert_eq!(t.cols, vec![ColKey::Var(0), ColKey::Col { table: 1, col: 0 }]);
        assert_eq!(*t.iter().next().unwrap().get(0), v(1));
    }

    #[test]
    fn natural_join_on_var() {
        // L(var0, a) ⋈ R(var0, b)
        let l = Table::from_rows(
            vec![ColKey::Var(0), ColKey::Col { table: 0, col: 1 }],
            vec![vec![v(1), v(10)], vec![v(2), v(20)]],
        );
        let r = Table::from_rows(
            vec![ColKey::Var(0), ColKey::Col { table: 1, col: 1 }],
            vec![vec![v(1), v(100)], vec![v(1), v(101)], vec![v(3), v(300)]],
        );
        let j = l.natural_join(&r);
        assert_eq!(j.cols.len(), 3);
        assert_eq!(j.len(), 2);
        for row in j.iter() {
            assert_eq!(*row.get(0), v(1));
        }
    }

    #[test]
    fn join_without_shared_keys_is_cross() {
        let l =
            Table::from_rows(vec![ColKey::Col { table: 0, col: 0 }], vec![vec![v(1)], vec![v(2)]]);
        let r = Table::from_rows(
            vec![ColKey::Col { table: 1, col: 0 }],
            vec![vec![v(7)], vec![v(8)], vec![v(9)]],
        );
        assert_eq!(l.natural_join(&r).len(), 6);
    }

    #[test]
    fn union_accumulates_rows() {
        let a = Table::from_rows(vec![ColKey::Var(0)], vec![vec![v(1)]]);
        let b = Table::from_rows(vec![ColKey::Var(0)], vec![vec![v(2)], vec![v(3)]]);
        let u = Table::union([&a, &b]).unwrap();
        assert_eq!(u.len(), 3);
        assert!(Table::union(std::iter::empty::<&Table>()).is_none());
    }

    #[test]
    fn union_shares_chunk_storage() {
        let a = Table::from_rows(vec![ColKey::Var(0)], vec![vec![v(1)], vec![v(2)]]);
        let b = Table::from_rows(vec![ColKey::Var(0)], vec![vec![v(3)]]);
        let u = Table::union([&a, &b]).unwrap();
        // No cell was cloned: the union's chunks are the operands' chunks.
        assert!(Arc::ptr_eq(&u.chunks[0], &a.chunks[0]));
        assert!(Arc::ptr_eq(&u.chunks[1], &b.chunks[0]));
        assert_eq!(u.approx_bytes(), 16 + 3 * 8);
    }

    #[test]
    fn push_row_does_not_mutate_sharers() {
        let mut a = Table::from_rows(vec![ColKey::Var(0)], vec![vec![v(1)]]);
        let u = Table::union([&a]).unwrap();
        a.push_row(vec![v(2)]); // chunk is shared: must not grow `u`
        assert_eq!(a.len(), 2);
        assert_eq!(u.len(), 1);
        assert_eq!(rows_of(&u), vec![vec![v(1)].into_boxed_slice()]);
    }

    #[test]
    fn retain_reuses_fully_kept_chunks() {
        let a = Table::from_rows(vec![ColKey::Var(0)], vec![vec![v(1)], vec![v(2)]]);
        let b = Table::from_rows(vec![ColKey::Var(0)], vec![vec![v(3)], vec![v(4)]]);
        let mut u = Table::union([&a, &b]).unwrap();
        u.retain(|row| row[0] != v(3));
        assert_eq!(u.len(), 3);
        // First chunk kept every row: still the shared Arc. Second rebuilt.
        assert!(Arc::ptr_eq(&u.chunks[0], &a.chunks[0]));
        assert!(!Arc::ptr_eq(&u.chunks[1], &b.chunks[0]));
        assert_eq!(u.approx_bytes(), 16 + 3 * 8);
    }

    #[test]
    fn approx_bytes_matches_wire_model() {
        // 2 rows x 2 cols x 8 bytes + strings padded to 8: "abc" -> 8,
        // "abcdefghi" -> 16. Base 16.
        let t = Table::from_rows(
            vec![ColKey::Var(0), ColKey::Col { table: 0, col: 1 }],
            vec![vec![v(1), Value::Str("abc".into())], vec![v(2), Value::Str("abcdefghi".into())]],
        );
        assert_eq!(t.approx_bytes(), 16 + 2 * 2 * 8 + 8 + 16);
        // The same total survives union splicing and a no-op retain.
        let u = Table::union([&t, &t]).unwrap();
        assert_eq!(u.approx_bytes(), 16 + 4 * 2 * 8 + 2 * (8 + 16));
        let mut r = u.clone();
        r.retain(|row| row[0] == v(1));
        assert_eq!(r.approx_bytes(), 16 + 2 * 2 * 8 + 2 * 8);
    }

    #[test]
    fn join_is_commutative_on_bags() {
        let l = Table::from_rows(
            vec![ColKey::Var(0), ColKey::Col { table: 0, col: 1 }],
            vec![vec![v(1), v(10)], vec![v(1), v(11)]],
        );
        let r = Table::from_rows(
            vec![ColKey::Var(0), ColKey::Col { table: 1, col: 1 }],
            vec![vec![v(1), v(7)]],
        );
        let a = l.natural_join(&r);
        let b = r.natural_join(&l);
        let norm = |t: &Table| {
            let mut rows = t.to_rows();
            rows.sort();
            (t.cols.clone(), rows)
        };
        assert_eq!(norm(&a), norm(&b));
    }

    #[test]
    fn message_sizes() {
        let t = Table::from_rows(vec![ColKey::Var(0)], vec![vec![v(1)]]);
        assert!(TagMsg::Table(Arc::new(t)).byte_size() > TagMsg::Signal(0).byte_size());
    }
}
