//! Intermediate result tables exchanged during the collection phase.
//!
//! Columns are identified by [`ColKey`]: join columns by their join
//! *variable* (so equi-joined columns from different relations unify under
//! one key — what lets a tuple vertex natural-join an incoming table against
//! its own row), everything else by its `(table, column)` provenance.
//! Column lists are kept **sorted**, which makes layouts predictable (the
//! final layout of a traversal is statically known) and shared-column
//! detection a linear merge.

use std::sync::Arc;
use vcsql_bsp::{Message, VertexId};
use vcsql_relation::agg::Accumulator;
use vcsql_relation::{fx, Value};

/// A column key of an intermediate table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ColKey {
    /// A join variable (equivalence class of equi-joined columns).
    Var(u32),
    /// A non-join column, identified by `(table index, column index)`.
    Col { table: u16, col: u16 },
}

/// An intermediate table: sorted column keys + rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    pub cols: Vec<ColKey>,
    pub rows: Vec<Box<[Value]>>,
}

impl Table {
    /// Empty table over sorted keys.
    pub fn empty(mut cols: Vec<ColKey>) -> Table {
        cols.sort_unstable();
        cols.dedup();
        Table { cols, rows: Vec::new() }
    }

    /// A one-row table. `entries` may be unsorted and may repeat keys (the
    /// first value wins).
    pub fn singleton(entries: &[(ColKey, Value)]) -> Table {
        let mut sorted: Vec<(ColKey, Value)> = entries.to_vec();
        sorted.sort_by_key(|&(k, _)| k);
        sorted.dedup_by_key(|&mut (k, _)| k);
        let cols = sorted.iter().map(|&(k, _)| k).collect();
        let row = sorted.into_iter().map(|(_, v)| v).collect();
        Table { cols, rows: vec![row] }
    }

    /// Position of a key.
    pub fn col_index(&self, key: ColKey) -> Option<usize> {
        self.cols.binary_search(&key).ok()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate serialized payload bytes (used for message accounting):
    /// one 8-byte word per value plus the contents of variable-length
    /// values — the same wire model the distributed simulation charges the
    /// shuffle-join side, so TAG-vs-Spark byte comparisons are like for
    /// like.
    pub fn approx_bytes(&self) -> usize {
        let variable: usize = self
            .rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|v| match v {
                Value::Str(s) => s.len().div_ceil(8) * 8,
                _ => 0,
            })
            .sum();
        16 + self.rows.len() * self.cols.len() * 8 + variable
    }

    /// Union of same-schema tables (bag semantics).
    pub fn union<'a>(tables: impl IntoIterator<Item = &'a Table>) -> Option<Table> {
        let mut out: Option<Table> = None;
        for t in tables {
            match &mut out {
                None => out = Some(t.clone()),
                Some(acc) => {
                    debug_assert_eq!(acc.cols, t.cols, "union of mismatched layouts");
                    acc.rows.extend(t.rows.iter().cloned());
                }
            }
        }
        out
    }

    /// Natural join on shared column keys (hash join on the smaller side;
    /// cross product when no keys are shared). Join values use `Value`'s
    /// total equality (never NULL for `Var` keys — attribute vertices exist
    /// only for non-NULL values).
    pub fn natural_join(&self, other: &Table) -> Table {
        // Shared keys: linear merge of the sorted col lists.
        let mut shared = Vec::new();
        {
            let (mut i, mut j) = (0, 0);
            while i < self.cols.len() && j < other.cols.len() {
                match self.cols[i].cmp(&other.cols[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        shared.push(self.cols[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        // Output layout: sorted union.
        let mut out_cols: Vec<ColKey> =
            self.cols.iter().chain(other.cols.iter()).copied().collect();
        out_cols.sort_unstable();
        out_cols.dedup();
        let mut out = Table { cols: out_cols, rows: Vec::new() };

        let (build, probe) = if self.len() <= other.len() { (self, other) } else { (other, self) };
        let bkey: Vec<usize> =
            shared.iter().map(|&k| build.col_index(k).expect("shared key")).collect();
        let pkey: Vec<usize> =
            shared.iter().map(|&k| probe.col_index(k).expect("shared key")).collect();

        // Precompute output positions for build and probe columns.
        let bpos: Vec<usize> =
            build.cols.iter().map(|&k| out.col_index(k).expect("out key")).collect();
        let ppos: Vec<usize> =
            probe.cols.iter().map(|&k| out.col_index(k).expect("out key")).collect();

        if shared.is_empty() {
            for b in &build.rows {
                for p in &probe.rows {
                    out.rows.push(merge_row(out.cols.len(), b, &bpos, p, &ppos));
                }
            }
            return out;
        }

        let mut index: vcsql_relation::FxHashMap<Vec<Value>, Vec<usize>> =
            fx::map_with_capacity(build.len());
        for (i, row) in build.rows.iter().enumerate() {
            let key: Vec<Value> = bkey.iter().map(|&k| row[k].clone()).collect();
            index.entry(key).or_default().push(i);
        }
        let mut key = Vec::with_capacity(pkey.len());
        for p in &probe.rows {
            key.clear();
            key.extend(pkey.iter().map(|&k| p[k].clone()));
            if let Some(matches) = index.get(&key) {
                for &bi in matches {
                    out.rows.push(merge_row(out.cols.len(), &build.rows[bi], &bpos, p, &ppos));
                }
            }
        }
        out
    }

    /// Keep rows passing `pred`.
    pub fn retain(&mut self, mut pred: impl FnMut(&[Value]) -> bool) {
        self.rows.retain(|r| pred(r));
    }
}

fn merge_row(
    width: usize,
    a: &[Value],
    apos: &[usize],
    b: &[Value],
    bpos: &[usize],
) -> Box<[Value]> {
    let mut row = vec![Value::Null; width];
    // Probe values written second override build's on shared keys (equal by
    // construction).
    for (v, &p) in a.iter().zip(apos) {
        row[p] = v.clone();
    }
    for (v, &p) in b.iter().zip(bpos) {
        row[p] = v.clone();
    }
    row.into_boxed_slice()
}

/// A partially aggregated group (what roots ship to aggregation vertices).
#[derive(Debug, Clone)]
pub struct Partial {
    /// One accumulator per output item (placeholders for non-aggregates).
    pub accs: Vec<Accumulator>,
    /// Accumulators for HAVING predicates.
    pub having: Vec<Accumulator>,
    /// A representative final-layout row of the group (for evaluating
    /// group-key expressions and HAVING right-hand sides).
    pub rep: Box<[Value]>,
}

/// Messages of the TAG-join vertex program.
#[derive(Debug, Clone)]
pub enum TagMsg {
    /// Reduction-phase signal carrying the sender's id (Algorithm 2,
    /// lines 13/18).
    Signal(VertexId),
    /// Collection-phase intermediate table (Algorithm 2, line 40).
    Table(Arc<Table>),
    /// Aggregation-phase `(group key, partial aggregate)` routed to a
    /// group-key attribute vertex (Section 7, local aggregation).
    Partial(Arc<(Box<[Value]>, Partial)>),
}

impl Message for TagMsg {
    fn byte_size(&self) -> usize {
        match self {
            TagMsg::Signal(_) => 8,
            TagMsg::Table(t) => t.approx_bytes(),
            TagMsg::Partial(kp) => {
                let (k, p) = &**kp;
                32 + k.len() * 16 + p.accs.len() * 24 + p.having.len() * 24 + p.rep.len() * 16
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn singleton_sorts_and_dedups() {
        let t = Table::singleton(&[
            (ColKey::Col { table: 1, col: 0 }, v(10)),
            (ColKey::Var(0), v(1)),
            (ColKey::Var(0), v(999)), // duplicate key: first kept after sort
        ]);
        assert_eq!(t.cols, vec![ColKey::Var(0), ColKey::Col { table: 1, col: 0 }]);
        assert_eq!(t.rows[0][0], v(1));
    }

    #[test]
    fn natural_join_on_var() {
        // L(var0, a) ⋈ R(var0, b)
        let l = Table {
            cols: vec![ColKey::Var(0), ColKey::Col { table: 0, col: 1 }],
            rows: vec![vec![v(1), v(10)].into_boxed_slice(), vec![v(2), v(20)].into_boxed_slice()],
        };
        let r = Table {
            cols: vec![ColKey::Var(0), ColKey::Col { table: 1, col: 1 }],
            rows: vec![
                vec![v(1), v(100)].into_boxed_slice(),
                vec![v(1), v(101)].into_boxed_slice(),
                vec![v(3), v(300)].into_boxed_slice(),
            ],
        };
        let j = l.natural_join(&r);
        assert_eq!(j.cols.len(), 3);
        assert_eq!(j.len(), 2);
        for row in &j.rows {
            assert_eq!(row[0], v(1));
        }
    }

    #[test]
    fn join_without_shared_keys_is_cross() {
        let l = Table {
            cols: vec![ColKey::Col { table: 0, col: 0 }],
            rows: vec![vec![v(1)].into(), vec![v(2)].into()],
        };
        let r = Table {
            cols: vec![ColKey::Col { table: 1, col: 0 }],
            rows: vec![vec![v(7)].into(), vec![v(8)].into(), vec![v(9)].into()],
        };
        assert_eq!(l.natural_join(&r).len(), 6);
    }

    #[test]
    fn union_accumulates_rows() {
        let a = Table { cols: vec![ColKey::Var(0)], rows: vec![vec![v(1)].into()] };
        let b =
            Table { cols: vec![ColKey::Var(0)], rows: vec![vec![v(2)].into(), vec![v(3)].into()] };
        let u = Table::union([&a, &b]).unwrap();
        assert_eq!(u.len(), 3);
        assert!(Table::union(std::iter::empty::<&Table>()).is_none());
    }

    #[test]
    fn join_is_commutative_on_bags() {
        let l = Table {
            cols: vec![ColKey::Var(0), ColKey::Col { table: 0, col: 1 }],
            rows: vec![vec![v(1), v(10)].into(), vec![v(1), v(11)].into()],
        };
        let r = Table {
            cols: vec![ColKey::Var(0), ColKey::Col { table: 1, col: 1 }],
            rows: vec![vec![v(1), v(7)].into()],
        };
        let a = l.natural_join(&r);
        let b = r.natural_join(&l);
        let norm = |t: &Table| {
            let mut rows = t.rows.clone();
            rows.sort();
            (t.cols.clone(), rows)
        };
        assert_eq!(norm(&a), norm(&b));
    }

    #[test]
    fn message_sizes() {
        let t = Table { cols: vec![ColKey::Var(0)], rows: vec![vec![v(1)].into()] };
        assert!(TagMsg::Table(Arc::new(t)).byte_size() > TagMsg::Signal(0).byte_size());
    }
}
