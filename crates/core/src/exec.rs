//! The TAG-join executor: SQL evaluation as a driven vertex-centric program.
//!
//! The driver realizes the paper's Algorithm 2 on the BSP engine, one
//! superstep per traversal step, in three passes over the `GenSteps` list:
//!
//! 1. **Reduction, bottom-up** — active vertices send their id along edges
//!    with the current step's label; receivers mark the sender edges. Tuple
//!    vertices check their pushed-down filters before forwarding (Section 7
//!    selection pushdown). By Lemma 5.1 this computes the projection/semijoin
//!    sequence of a Yannakakis-style reducer.
//! 2. **Reduction, top-down** — the reversed list; sends go only along edges
//!    marked by the bottom-up pass, and receivers *replace* their marks, so
//!    surviving marks are exactly the edges on join-result paths.
//! 3. **Collection, bottom-up** — values (intermediate tables) flow along
//!    marked edges; attribute vertices union incoming tables, tuple vertices
//!    natural-join them with their own (projected) tuple.
//!
//! A final superstep at the plan root assembles output rows, applies residual
//! predicates, and performs aggregation: local aggregation routes partial
//! aggregates to group-key attribute vertices (one extra superstep), global
//! and scalar aggregation fold into the engine's global aggregator — the
//! paper's aggregation vertex.
//!
//! Cartesian products across join-graph components follow Section 6.3's
//! Algorithm B: secondary components are evaluated first, gathered, and
//! shipped to the primary component's root vertices.
//!
//! Cyclic join graphs are handled by breaking the cycle (the demoted
//! predicate is enforced as a residual equality — the Section 6.1.1 PK-FK
//! treatment); the dedicated worst-case-optimal cycle programs live in
//! [`crate::cyclic`].

use crate::plan::QueryPlan;
use crate::table::{ColKey, Partial, Table, TagMsg};
use std::sync::Arc;
use vcsql_bsp::program::Aggregator;
use vcsql_bsp::{
    Computation, EngineConfig, FaultError, FaultInjector, LabelId, LabelTraffic, PartitionStrategy,
    Partitioning, RunStats, VertexCtx, VertexId, WorkerPool,
};
use vcsql_query::analyze::{lower_subquery, Analyzed, LoweredSubquery, OutputItem};
use vcsql_query::tagplan::{Step, TagPlan};
use vcsql_query::AggClass;
use vcsql_relation::agg::{Accumulator, AggFunc};
use vcsql_relation::expr::{BoundExpr, CmpOp, ColRef, Expr};
use vcsql_relation::schema::{Column, Schema};
use vcsql_relation::{DataType, FxHashMap, FxHashSet, RelError, Relation, Tuple, Value};
use vcsql_tag::TagGraph;

type Result<T> = std::result::Result<T, RelError>;

/// Per-vertex state of the TAG-join program. `Clone` so the engine's
/// fault-tolerance checkpoints can snapshot it.
#[derive(Default, Clone)]
pub struct St {
    /// Marked edges per label: the witnesses recorded during reduction
    /// (Algorithm 2 line 9/19).
    marked: FxHashMap<LabelId, FxHashSet<VertexId>>,
    /// Cached filter verdict for tuple vertices.
    pass: Option<bool>,
    /// Local-aggregation state at group-key attribute vertices.
    la: Option<FxHashMap<Box<[Value]>, Partial>>,
}

/// Execution result: the output relation plus the run's communication and
/// computation statistics.
#[derive(Debug)]
pub struct ExecOutput {
    pub relation: Relation,
    pub stats: RunStats,
}

/// The vertex-centric SQL executor over a TAG graph.
pub struct TagJoinExecutor<'t> {
    tag: &'t TagGraph,
    config: EngineConfig,
    partitioning: Option<Arc<Partitioning>>,
    workers: Option<Arc<WorkerPool>>,
    faults: Option<Arc<FaultInjector>>,
}

impl<'t> TagJoinExecutor<'t> {
    /// New executor with the given engine configuration.
    pub fn new(tag: &'t TagGraph, config: EngineConfig) -> Self {
        TagJoinExecutor { tag, config, partitioning: None, workers: None, faults: None }
    }

    /// Arm a fault injector: every computation this executor starts
    /// (subquery runs included — superstep indices are per-computation, but
    /// each fault fires at most once across the whole execution) injects
    /// the plan's faults and checkpoints at the injector's cadence.
    /// Recovered crashes never change results; unabsorbable faults surface
    /// as [`RelError::Other`] — transient ones marked `transient fault` so
    /// hosts can retry.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Attach a shared persistent worker pool: every computation this
    /// executor starts (including subquery runs) reuses the same parked
    /// worker threads instead of creating a private pool per query. Hosts
    /// that execute many queries (a `Session`) attach one pool at open.
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.workers = Some(pool);
        self
    }

    /// Attach a simulated machine partitioning (network accounting).
    pub fn with_partitioning(self, p: Partitioning) -> Self {
        self.with_partitioning_shared(Arc::new(p))
    }

    /// [`TagJoinExecutor::with_partitioning`] without copying: callers that
    /// keep one placement across many queries (sessions) share the
    /// allocation instead of cloning the per-vertex assignment per run.
    pub fn with_partitioning_shared(mut self, p: Arc<Partitioning>) -> Self {
        self.partitioning = Some(p);
        self
    }

    /// Attach a partitioning built by `strategy` over `machines` simulated
    /// machines. The TAG's attribute vertices are the anchors of the
    /// locality-aware strategies (tuple vertices co-locate with them);
    /// network accounting is the only effect — results never change.
    pub fn with_partition_strategy(self, strategy: &PartitionStrategy, machines: usize) -> Self {
        let tag = self.tag;
        let p = strategy.partition(tag.graph(), machines, &|v| !tag.is_tuple_vertex(v));
        self.with_partitioning(p)
    }

    /// The attached partitioning, if any (for diagnostics).
    pub fn partitioning(&self) -> Option<&Partitioning> {
        self.partitioning.as_deref()
    }

    /// Parse, analyze, plan and execute a SQL string. One-shot convenience:
    /// callers running a statement more than once should plan it once with
    /// [`QueryPlan::prepare`] and reuse the plan via
    /// [`TagJoinExecutor::execute_plan`] (or hold a `vcsql-session`
    /// `Session`, which caches plans behind a bounded SQL-keyed cache).
    pub fn run_sql(&self, sql: &str) -> Result<ExecOutput> {
        self.execute_plan(&QueryPlan::prepare(sql, self.tag.schemas())?)
    }

    /// Plan and execute an analyzed query.
    pub fn execute(&self, a: &Analyzed) -> Result<ExecOutput> {
        self.execute_plan(&QueryPlan::new(a.clone())?)
    }

    /// Execute a prepared [`QueryPlan`]. The plan is a pure value — executing
    /// it never mutates it, so one plan can serve any number of executions
    /// (and any number of executors over the same schemas).
    pub fn execute_plan(&self, plan: &QueryPlan) -> Result<ExecOutput> {
        let a = plan.analyzed();
        let mut stats = RunStats::default();

        // ---- subqueries (recursive vertex-centric runs) --------------------
        let mut lowered: Vec<LoweredCheck> = Vec::new();
        for sq in &a.subqueries {
            lowered.push(self.eval_subquery(sq, &mut stats)?);
        }

        // ---- bind the plan to this TAG --------------------------------------
        let q = QueryCtx::build(self.tag, plan, &lowered)?;

        // ---- engine ----------------------------------------------------------
        let mut comp: Computation<'_, St, TagMsg> =
            Computation::new(self.tag.graph(), self.config, |_| St::default());
        if let Some(p) = &self.partitioning {
            comp.set_partitioning_shared(Arc::clone(p));
        }
        if let Some(pool) = &self.workers {
            comp.set_worker_pool(Arc::clone(pool));
        }
        if let Some(inj) = &self.faults {
            comp.set_fault_injector(Arc::clone(inj));
            comp.set_state_sizer(st_state_bytes);
        }

        // Order components: primary last.
        let mut order: Vec<usize> = (0..q.plans.len()).collect();
        order.retain(|&i| i != q.primary);
        order.push(q.primary);

        // Secondary components first (Section 6.3 Algorithm B: their results
        // are gathered, combined, and shipped to the primary component's
        // roots). The gather leg is charged per piece: each secondary root's
        // table travels to the gather site, crossing the network when the
        // root lives elsewhere.
        let origin = self.partitioning.as_ref().map(|p| gather_site(&q, &order, self.tag, p));
        let mut secondary: Option<Table> = None;
        let mut gather = LabelTraffic::default();
        for &ci in &order[..order.len() - 1] {
            self.run_traversal(&mut comp, &q, ci)?;
            let pieces = self.gather_component(&mut comp, &q)?;
            for (v, t) in &pieces {
                let (rows, bytes) = (t.len() as u64, t.approx_bytes() as u64);
                gather.messages += rows;
                gather.bytes += bytes;
                if let (Some(p), Some(o)) = (&self.partitioning, origin) {
                    if p.machine_of(*v) as usize != o {
                        gather.network_messages += rows;
                        gather.network_bytes += bytes;
                    }
                }
            }
            let gathered = Table::union(pieces.iter().map(|(_, t)| t))
                .unwrap_or_else(|| Table::empty(q.component_layout(ci)));
            secondary = Some(match secondary {
                None => gathered,
                Some(prev) => prev.natural_join(&gathered), // disjoint keys: cross product
            });
        }
        if let Some(sec) = &secondary {
            let mut traffic = self.cartesian_shipping(&q, sec, origin);
            traffic.add(&gather);
            stats.record_traffic(traffic);
        }

        // Primary component traversal + finish.
        self.run_traversal(&mut comp, &q, q.primary)?;
        let out = self.finish(&mut comp, &q, secondary)?;

        stats.absorb(comp.stats());
        Ok(ExecOutput { relation: out, stats })
    }

    /// Outbound half of the Algorithm B accounting (Section 6.3): every
    /// combined secondary-side row is shipped to every primary root tuple
    /// vertex, as host-side traffic outside any superstep (so it never
    /// inflates round counts). The caller adds the inbound gather leg.
    ///
    /// Without a partitioning the combined table is charged once, as before.
    /// Under a partitioning the shipping is attributed to machines: the
    /// table is assembled at the *gather site* `origin` — the machine
    /// holding the plurality of the secondary components' root tuple
    /// vertices (lowest id on ties, see [`gather_site`]) — and broadcast
    /// once to every machine hosting primary roots, so `bytes` grows by one
    /// table copy per receiving machine and `network_bytes` by one copy per
    /// receiving machine other than the gather site. Message counts stay at
    /// row × root granularity (the paper's communication-cost measure), with
    /// the deliveries to roots off the gather site counted as network
    /// messages.
    fn cartesian_shipping(&self, q: &QueryCtx, sec: &Table, origin: Option<usize>) -> LabelTraffic {
        let graph = self.tag.graph();
        let roots = graph.vertices_with_label(q.rel_label[q.plans[q.primary].root_table()]);
        let rows = sec.len() as u64;
        let bytes = sec.approx_bytes() as u64;
        let mut traffic = LabelTraffic {
            messages: rows * (roots.len() as u64).max(1),
            bytes,
            ..Default::default()
        };
        let (Some(p), Some(origin)) = (&self.partitioning, origin) else { return traffic };

        let mut root_machine = vec![false; p.machines()];
        let mut remote_roots = 0u64;
        for &v in roots {
            let m = p.machine_of(v) as usize;
            root_machine[m] = true;
            if m != origin {
                remote_roots += 1;
            }
        }
        let receiving = root_machine.iter().filter(|&&b| b).count() as u64;
        let remote_machines = receiving - u64::from(root_machine[origin]);
        traffic.bytes = bytes * receiving.max(1);
        traffic.network_messages = rows * remote_roots;
        traffic.network_bytes = bytes * remote_machines;
        traffic
    }

    // ------------------------------------------------------------------ plan

    /// Run the three traversal passes for component `ci`, leaving the
    /// component's root tuple vertices active with pending value tables.
    ///
    /// The passes are flattened to a descriptor list and driven by a
    /// *rewindable* loop: when an injected crash rolls the engine back to a
    /// checkpoint, [`Computation::take_replay`] hands back the superstep to
    /// resume from and the loop re-issues the corresponding descriptors —
    /// the engine's determinism makes the replay bit-identical. A forced
    /// checkpoint at the phase start pins the earliest possible rollback to
    /// this traversal (earlier phases' effects already escaped to the host
    /// and could not be replayed).
    fn run_traversal(
        &self,
        comp: &mut Computation<'_, St, TagMsg>,
        q: &QueryCtx,
        ci: usize,
    ) -> Result<()> {
        let plan = &q.plans[ci];
        comp.activate_label(q.start_label(ci));
        if plan.is_empty() {
            return Ok(()); // single table: roots are the activated tuples
        }
        let steps = q.steps[ci].clone();

        // Flatten the three passes: reduction bottom-up, reduction top-down
        // (reversed list; sends follow marks and receivers replace marks),
        // collection bottom-up. One descriptor = one superstep.
        enum Pass {
            Red { down: bool },
            Col,
        }
        struct Desc {
            pass: Pass,
            cur: LabelId,
            step: Step,
            prev: Option<(LabelId, bool)>,
        }
        let mut descs: Vec<Desc> = Vec::with_capacity(3 * steps.len());
        let mut prev: Option<(LabelId, bool)> = None;
        for s in &steps {
            let cur = q.label(*s)?;
            descs.push(Desc { pass: Pass::Red { down: false }, cur, step: *s, prev });
            prev = Some((cur, false));
        }
        for s in steps.iter().rev() {
            let cur = q.label(*s)?;
            descs.push(Desc { pass: Pass::Red { down: true }, cur, step: *s, prev });
            prev = Some((cur, true));
        }
        for s in &steps {
            let cur = q.label(*s)?;
            descs.push(Desc { pass: Pass::Col, cur, step: *s, prev });
            prev = Some((cur, true));
        }

        comp.checkpoint_now();
        let base = comp.stats().supersteps;
        let mut i = 0usize;
        while i < descs.len() {
            let d = &descs[i];
            match d.pass {
                Pass::Red { down } => self.reduction_step(comp, q, d.cur, d.step, d.prev, down),
                Pass::Col => self.collection_step(comp, q, d.cur, d.step, d.prev),
            }
            if let Some(from) = comp.take_replay() {
                debug_assert!(from >= base, "rollback past the phase-start checkpoint");
                i = (from - base) as usize;
                continue;
            }
            if let Some(e) = comp.take_fault_error() {
                return Err(fault_to_rel(e));
            }
            i += 1;
        }
        Ok(())
    }

    /// One reduction superstep (Algorithm 2 lines 7-25).
    fn reduction_step(
        &self,
        comp: &mut Computation<'_, St, TagMsg>,
        q: &QueryCtx,
        cur: LabelId,
        step: Step,
        prev: Option<(LabelId, bool)>,
        down: bool,
    ) {
        let tag = self.tag;
        comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, St, TagMsg>| {
            // (a) record marks from the previous step's messages.
            record_marks(ctx, prev);
            // (b) tuple-vertex filter guard (selection pushdown).
            if !passes_filter(ctx, q, tag) {
                return;
            }
            // (c) send own id along edges with the current label; top-down
            // sends follow bottom-up marks (line 17).
            let vid = ctx.id();
            let targets: Vec<VertexId> = {
                let edges = ctx.edges_with(cur);
                if down {
                    let marked = ctx.state.marked.get(&cur);
                    edges
                        .iter()
                        .filter(|e| marked.is_some_and(|m| m.contains(&e.target)))
                        .map(|e| e.target)
                        .collect()
                } else {
                    edges.iter().map(|e| e.target).collect()
                }
            };
            let _ = step;
            for t in targets {
                ctx.send_along(cur, t, TagMsg::Signal(vid));
            }
        });
    }

    /// One collection superstep (Algorithm 2 lines 28-44).
    fn collection_step(
        &self,
        comp: &mut Computation<'_, St, TagMsg>,
        q: &QueryCtx,
        cur: LabelId,
        step: Step,
        prev: Option<(LabelId, bool)>,
    ) {
        let tag = self.tag;
        let _ = step;
        comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, St, TagMsg>| {
            // Signals still in flight from the reduction's last step update
            // marks; tables are collected.
            record_marks(ctx, prev);
            let value = match compute_value(ctx, q, tag) {
                Some(v) => v,
                None => return,
            };
            let marked = match ctx.state.marked.get(&cur) {
                Some(m) if !m.is_empty() => m.clone(),
                _ => return,
            };
            let value = Arc::new(value);
            let targets: Vec<VertexId> = ctx
                .edges_with(cur)
                .iter()
                .filter(|e| marked.contains(&e.target))
                .map(|e| e.target)
                .collect();
            for t in targets {
                ctx.send_along(cur, t, TagMsg::Table(Arc::clone(&value)));
            }
        });
    }

    /// Gather a (secondary) component's result tables from its roots, as
    /// per-root pieces so the caller can attribute the gather traffic to the
    /// machine each piece came from.
    fn gather_component(
        &self,
        comp: &mut Computation<'_, St, TagMsg>,
        q: &QueryCtx,
    ) -> Result<Vec<(VertexId, Table)>> {
        let tag = self.tag;
        #[derive(Default)]
        struct Tables(Vec<(VertexId, Table)>);
        impl Aggregator for Tables {
            fn merge(&mut self, mut other: Self) {
                self.0.append(&mut other.0);
            }
        }
        // Aggregator superstep: its value escapes the engine the moment it
        // returns, so force a checkpoint — a crash here is then recovered
        // within the call and the gathered tables are valid.
        comp.checkpoint_now();
        let (_, gathered) =
            comp.superstep(|ctx: &mut VertexCtx<'_, '_, St, TagMsg>, g: &mut Tables| {
                record_marks(ctx, None);
                if !passes_filter(ctx, q, tag) {
                    return;
                }
                if let Some(v) = compute_value(ctx, q, tag) {
                    g.0.push((ctx.id(), v));
                }
            });
        debug_assert!(comp.take_replay().is_none(), "forced checkpoint precludes replay");
        if let Some(e) = comp.take_fault_error() {
            return Err(fault_to_rel(e));
        }
        Ok(gathered.0)
    }

    // --------------------------------------------------------------- finish

    /// Final superstep at the primary roots: assemble rows, residuals,
    /// aggregation, output.
    fn finish(
        &self,
        comp: &mut Computation<'_, St, TagMsg>,
        q: &QueryCtx,
        secondary: Option<Table>,
    ) -> Result<Relation> {
        let tag = self.tag;
        let a = q.analyzed;
        let secondary = secondary.map(Arc::new);

        // Aggregator: NoAgg gathers projected rows; aggregate classes gather
        // partial groups (LA additionally *sends* partials to attribute
        // vertices and only uses this for NULL-key fallback).
        #[derive(Default)]
        struct Fin {
            rows: Vec<Box<[Value]>>,
            groups: FxHashMap<Box<[Value]>, Partial>,
        }
        impl Aggregator for Fin {
            fn merge(&mut self, mut other: Self) {
                self.rows.append(&mut other.rows);
                for (k, p) in other.groups.drain() {
                    merge_group(&mut self.groups, k, p);
                }
            }
        }

        // Aggregator superstep (see `gather_component`): force a checkpoint
        // so a crash here recovers in-call and `fin` is valid.
        comp.checkpoint_now();
        let (_, fin) = comp.superstep(|ctx: &mut VertexCtx<'_, '_, St, TagMsg>, g: &mut Fin| {
            record_marks(ctx, None);
            if !passes_filter(ctx, q, tag) {
                return;
            }
            let mut value = match compute_value(ctx, q, tag) {
                Some(v) => v,
                None => return,
            };
            if let Some(sec) = &secondary {
                value = value.natural_join(sec);
            }
            debug_assert_eq!(value.cols, q.final_layout, "unexpected final layout");
            // Residual predicates (cross-table filters, broken cycle
            // equalities, multi-table subquery checks).
            value.retain(|row| q.residuals.iter().all(|r| r.check(row).unwrap_or(false)));
            if value.is_empty() {
                return;
            }
            match a.agg_class {
                AggClass::NoAgg => {
                    value.for_each_row(|row| {
                        if let Ok(out) = q.project_row(row) {
                            g.rows.push(out);
                        }
                    });
                }
                _ => {
                    // Partial aggregation per group key.
                    let mut local: FxHashMap<Box<[Value]>, Partial> = FxHashMap::default();
                    value.for_each_row(|row| {
                        let key: Box<[Value]> =
                            q.group_pos.iter().map(|&p| row[p].clone()).collect();
                        let part = local.entry(key).or_insert_with(|| q.fresh_partial(row));
                        let _ = q.update_partial(part, row);
                    });
                    if a.agg_class == AggClass::Local {
                        // Route each group's partial to the group-key
                        // attribute vertex along this root's own edge
                        // (Section 7, local aggregation); NULL keys (or
                        // unmaterialized group columns) fall back to the
                        // global aggregator.
                        for (key, part) in local {
                            let routed = q.la_route.and_then(|label| {
                                if key[0].is_null() {
                                    return None;
                                }
                                ctx.edges_with(label).first().map(|e| (label, e.target))
                            });
                            match routed {
                                Some((label, target)) => ctx.send_along(
                                    label,
                                    target,
                                    TagMsg::Partial(Arc::new((key, part))),
                                ),
                                None => merge_group(&mut g.groups, key, part),
                            }
                        }
                    } else {
                        for (key, part) in local {
                            merge_group(&mut g.groups, key, part);
                        }
                    }
                }
            }
        });
        debug_assert!(comp.take_replay().is_none(), "forced checkpoint precludes replay");
        if let Some(e) = comp.take_fault_error() {
            return Err(fault_to_rel(e));
        }

        // ---- assemble output --------------------------------------------------
        match a.agg_class {
            AggClass::NoAgg => {
                let mut rows: Vec<Box<[Value]>> = fin.rows;
                rows.sort();
                build_output(a, rows.into_iter().map(Vec::from).collect())
            }
            AggClass::Local => {
                // One more superstep: group-key attribute vertices merge the
                // partials they received (each group computed in parallel at
                // its own vertex — the paper's local-aggregation strength).
                let la_attrs: Vec<VertexId> = comp.active().to_vec();
                // The merged `la` states are read from the host right after
                // this superstep: checkpoint so a crash recovers in-call.
                comp.checkpoint_now();
                comp.superstep_simple(|ctx: &mut VertexCtx<'_, '_, St, TagMsg>| {
                    let mut received: Vec<(Box<[Value]>, Partial)> = Vec::new();
                    for m in ctx.messages() {
                        if let TagMsg::Partial(kp) = m {
                            received.push((kp.0.clone(), kp.1.clone()));
                        }
                    }
                    if received.is_empty() {
                        return;
                    }
                    let la = ctx.state.la.get_or_insert_with(FxHashMap::default);
                    for (k, p) in received {
                        merge_group(la, k, p);
                    }
                });
                debug_assert!(comp.take_replay().is_none(), "forced checkpoint precludes replay");
                if let Some(e) = comp.take_fault_error() {
                    return Err(fault_to_rel(e));
                }
                let mut groups = fin.groups;
                for v in la_attrs {
                    if let Some(map) = &comp.state(v).la {
                        for (k, p) in map {
                            merge_group(&mut groups, k.clone(), p.clone());
                        }
                    }
                }
                self.groups_to_output(a, q, groups)
            }
            AggClass::Global | AggClass::Scalar => {
                let mut groups = fin.groups;
                if a.agg_class == AggClass::Scalar && groups.is_empty() {
                    // SQL: aggregates over zero rows still yield one row.
                    let rep: Box<[Value]> = vec![Value::Null; q.final_layout.len()].into();
                    groups.insert(Box::from([]), q.fresh_partial(&rep));
                }
                self.groups_to_output(a, q, groups)
            }
        }
    }

    /// Turn merged groups into the output relation (HAVING + projection).
    fn groups_to_output(
        &self,
        a: &Analyzed,
        q: &QueryCtx,
        groups: FxHashMap<Box<[Value]>, Partial>,
    ) -> Result<Relation> {
        let mut entries: Vec<(Box<[Value]>, Partial)> = groups.into_iter().collect();
        entries.sort_by(|x, y| x.0.cmp(&y.0));
        let mut rows = Vec::with_capacity(entries.len());
        'groups: for (_, part) in entries {
            for (i, h) in a.having.iter().enumerate() {
                let rhs = q.having_rhs[i].eval(&part.rep)?;
                if part.having[i].finish().sql_cmp(&rhs).map(|o| h.op.holds(o)) != Some(true) {
                    continue 'groups;
                }
            }
            let mut out = Vec::with_capacity(q.items.len());
            for (item, acc) in q.items.iter().zip(&part.accs) {
                out.push(match item {
                    ProjItem::Agg { .. } => acc.finish(),
                    other => other.eval(&part.rep)?,
                });
            }
            rows.push(out);
        }
        build_output(a, rows)
    }

    // ------------------------------------------------------------ subqueries

    fn eval_subquery(
        &self,
        sq: &vcsql_query::analyze::SubqueryPred,
        stats: &mut RunStats,
    ) -> Result<LoweredCheck> {
        match lower_subquery(sq) {
            LoweredSubquery::KeySet { sub, outer_cols, negated } => {
                let out = self.execute(&sub)?;
                stats.absorb(&out.stats);
                let keys: FxHashSet<Vec<Value>> =
                    out.relation.tuples.iter().map(|t| t.0.to_vec()).collect();
                Ok(LoweredCheck::KeySet { outer_cols, keys: Arc::new(keys), negated })
            }
            LoweredSubquery::ScalarMap { sub, outer_cols, outer_expr, op, key_arity } => {
                let out = self.execute(&sub)?;
                stats.absorb(&out.stats);
                let mut map = FxHashMap::default();
                for t in &out.relation.tuples {
                    map.insert(t.0[..key_arity].to_vec(), t.0[key_arity].clone());
                }
                Ok(LoweredCheck::ScalarMap { outer_cols, map: Arc::new(map), expr: outer_expr, op })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Vertex-side helpers (free functions so closures stay lean)
// ---------------------------------------------------------------------------

/// Map an engine fault to the executor's error type. Transient faults carry
/// the `transient fault` marker substring so hosts (the server's retry loop)
/// can distinguish retry-worthy failures without a new error variant.
fn fault_to_rel(e: FaultError) -> RelError {
    if e.is_transient() {
        RelError::Other(format!("transient fault: {e}"))
    } else {
        RelError::Other(format!("fault: {e}"))
    }
}

/// Checkpoint size of one vertex's [`St`] in bytes, mirroring the wire
/// model of `TagMsg::byte_size` (8-byte words, 16 per value, 24 per
/// accumulator): marks are 8 bytes per witness edge plus a word per label
/// entry, cached filter verdicts a word, local-aggregation groups the same
/// price as a shipped `TagMsg::Partial`.
fn st_state_bytes(st: &St) -> u64 {
    let mut bytes = 8; // fixed per-vertex header word
    for marks in st.marked.values() {
        bytes += 8 + 8 * marks.len() as u64;
    }
    if st.pass.is_some() {
        bytes += 8;
    }
    if let Some(la) = &st.la {
        for (key, p) in la {
            bytes += 32
                + key.len() as u64 * 16
                + p.accs.len() as u64 * 24
                + p.having.len() as u64 * 24
                + p.rep.len() as u64 * 16;
        }
    }
    bytes
}

/// Record reduction marks from incoming signals: union during bottom-up,
/// replace during top-down (Algorithm 2 lines 9 and 19).
fn record_marks(ctx: &mut VertexCtx<'_, '_, St, TagMsg>, prev: Option<(LabelId, bool)>) {
    let Some((label, replace)) = prev else { return };
    let mut senders: Option<FxHashSet<VertexId>> = None;
    for m in ctx.messages() {
        if let TagMsg::Signal(from) = m {
            senders.get_or_insert_with(FxHashSet::default).insert(*from);
        }
    }
    if let Some(s) = senders {
        let entry = ctx.state.marked.entry(label).or_default();
        if replace {
            *entry = s;
        } else {
            entry.extend(s);
        }
    }
}

/// Tuple-vertex filter check with caching; attribute vertices always pass.
fn passes_filter(ctx: &mut VertexCtx<'_, '_, St, TagMsg>, q: &QueryCtx, tag: &TagGraph) -> bool {
    if let Some(p) = ctx.state.pass {
        return p;
    }
    let verdict = match q.table_of_label.get(&ctx.label()) {
        Some(&t) => match tag.tuple(ctx.id()) {
            Some(tuple) => q.filters[t].passes(&tuple.0),
            None => true,
        },
        None => true, // attribute vertex (or unrelated relation)
    };
    ctx.state.pass = Some(verdict);
    verdict
}

/// Collection-phase value at a vertex: union of incoming tables, joined with
/// the vertex's own (projected) tuple when it is a tuple vertex.
fn compute_value(
    ctx: &mut VertexCtx<'_, '_, St, TagMsg>,
    q: &QueryCtx,
    tag: &TagGraph,
) -> Option<Table> {
    let mut incoming: Vec<&Table> = Vec::new();
    for m in ctx.messages() {
        if let TagMsg::Table(t) = m {
            incoming.push(t);
        }
    }
    let unioned = Table::union(incoming.iter().copied());
    match q.table_of_label.get(&ctx.label()) {
        Some(&t) => {
            let own = q.own_row(t, tag.tuple(ctx.id())?)?;
            Some(match unioned {
                Some(u) => u.natural_join(&own),
                None => own,
            })
        }
        None => unioned,
    }
}

/// The Algorithm B gather site: the machine holding the plurality of the
/// secondary components' root tuple vertices (lowest machine id on ties) —
/// the natural place to assemble the combined secondary result before
/// broadcasting it to the primary roots.
fn gather_site(q: &QueryCtx, order: &[usize], tag: &TagGraph, p: &Partitioning) -> usize {
    let mut tally = vec![0u64; p.machines()];
    for &ci in &order[..order.len() - 1] {
        for &v in tag.graph().vertices_with_label(q.rel_label[q.plans[ci].root_table()]) {
            tally[p.machine_of(v) as usize] += 1;
        }
    }
    let mut origin = 0usize;
    for (m, &c) in tally.iter().enumerate() {
        if c > tally[origin] {
            origin = m;
        }
    }
    origin
}

fn merge_group(groups: &mut FxHashMap<Box<[Value]>, Partial>, key: Box<[Value]>, p: Partial) {
    match groups.entry(key) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            let g = e.get_mut();
            for (a, b) in g.accs.iter_mut().zip(&p.accs) {
                let _ = a.merge(b);
            }
            for (a, b) in g.having.iter_mut().zip(&p.having) {
                let _ = a.merge(b);
            }
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(p);
        }
    }
}

// ---------------------------------------------------------------------------
// Query context: everything the supersteps need, precomputed once
// ---------------------------------------------------------------------------

/// Residual checks applied to final rows.
enum ResCheck {
    Expr(BoundExpr),
    /// Broken-cycle equality between two layout positions.
    Eq(usize, usize),
    KeySet {
        pos: Vec<usize>,
        keys: Arc<FxHashSet<Vec<Value>>>,
        negated: bool,
    },
    ScalarMap {
        pos: Vec<usize>,
        map: Arc<FxHashMap<Vec<Value>, Value>>,
        expr: BoundExpr,
        op: CmpOp,
    },
}

impl ResCheck {
    fn check(&self, row: &[Value]) -> Result<bool> {
        Ok(match self {
            ResCheck::Expr(e) => e.passes(row)?,
            ResCheck::Eq(a, b) => row[*a].sql_eq(&row[*b]) == Some(true),
            ResCheck::KeySet { pos, keys, negated } => {
                let mut key = Vec::with_capacity(pos.len());
                for &p in pos {
                    if row[p].is_null() {
                        return Ok(*negated);
                    }
                    key.push(row[p].clone());
                }
                keys.contains(&key) != *negated
            }
            ResCheck::ScalarMap { pos, map, expr, op } => {
                let key: Vec<Value> = pos.iter().map(|&p| row[p].clone()).collect();
                match map.get(&key) {
                    Some(rhs) => expr.eval(row)?.sql_cmp(rhs).map(|o| op.holds(o)) == Some(true),
                    None => false,
                }
            }
        })
    }
}

/// Subquery results lowered for this executor.
enum LoweredCheck {
    KeySet {
        outer_cols: Vec<(usize, usize)>,
        keys: Arc<FxHashSet<Vec<Value>>>,
        negated: bool,
    },
    ScalarMap {
        outer_cols: Vec<(usize, usize)>,
        map: Arc<FxHashMap<Vec<Value>, Value>>,
        expr: Expr,
        op: CmpOp,
    },
}

/// A bound output item.
enum ProjItem {
    Col(usize),
    Expr(BoundExpr),
    Agg { func: AggFunc, arg: Option<BoundExpr> },
}

impl ProjItem {
    fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            ProjItem::Col(p) => Ok(row[*p].clone()),
            ProjItem::Expr(e) => e.eval(row),
            ProjItem::Agg { .. } => Err(RelError::Other("aggregate outside grouping".into())),
        }
    }
}

/// Per-table filters folded to tuple-vertex checks.
struct TupleFilter {
    exprs: Vec<BoundExpr>,
    checks: Vec<ResCheck>,
}

impl TupleFilter {
    fn passes(&self, row: &[Value]) -> bool {
        self.exprs.iter().all(|e| e.passes(row).unwrap_or(false))
            && self.checks.iter().all(|c| c.check(row).unwrap_or(false))
    }
}

/// Precomputed execution context.
struct QueryCtx<'a> {
    analyzed: &'a Analyzed,
    /// Vertex label of each table's relation → table index.
    table_of_label: FxHashMap<LabelId, usize>,
    /// Relation vertex labels per table.
    rel_label: Vec<LabelId>,
    /// Per-table tuple filters (over schema row layout).
    filters: Vec<TupleFilter>,
    /// Per-table own-row spec: (output key, schema column); keys sorted.
    own_specs: Vec<Vec<(ColKey, usize)>>,
    /// One TAG plan per component (borrowed from the prepared plan).
    plans: &'a [TagPlan],
    steps: &'a [Vec<Step>],
    /// Component whose roots assemble the final result.
    primary: usize,
    /// Component index by table.
    component_of: &'a [usize],
    /// The (sorted) final layout of value tables at the primary roots.
    final_layout: Vec<ColKey>,
    /// Residual checks bound to the final layout.
    residuals: Vec<ResCheck>,
    /// Output items bound to the final layout.
    items: Vec<ProjItem>,
    /// Positions of group-by keys in the final layout.
    group_pos: Vec<usize>,
    /// HAVING argument expressions (bound) and rhs expressions (bound).
    having_args: Vec<Option<BoundExpr>>,
    having_rhs: Vec<BoundExpr>,
    /// Edge label routing local-aggregation partials from the primary root
    /// to the group-key attribute vertex.
    la_route: Option<LabelId>,
    /// Edge LabelIds per traversal step (table, col).
    step_labels: FxHashMap<(usize, usize), LabelId>,
}

impl<'a> QueryCtx<'a> {
    fn build(
        tag: &TagGraph,
        plan: &'a QueryPlan,
        lowered: &[LoweredCheck],
    ) -> Result<QueryCtx<'a>> {
        let a = plan.analyzed();
        let dec = &plan.dec;
        let n = a.tables.len();

        // var_of as u32 keys.
        let mut var_of: FxHashMap<(usize, usize), u32> = FxHashMap::default();
        for (k, v) in &dec.var_of {
            var_of.insert(*k, *v as u32);
        }

        // ---- needed columns per table --------------------------------------
        let mut needed: Vec<FxHashSet<usize>> = vec![FxHashSet::default(); n];
        let note_col = |needed: &mut Vec<FxHashSet<usize>>, t: usize, c: usize| {
            needed[t].insert(c);
        };
        let note_expr = |needed: &mut Vec<FxHashSet<usize>>, e: &Expr| -> Result<()> {
            let mut cols = Vec::new();
            e.columns(&mut cols);
            for c in cols {
                let (t, col) = a.resolve(&c)?;
                needed[t].insert(col);
            }
            Ok(())
        };
        for item in &a.items {
            match item {
                OutputItem::Col { table, col, .. } => note_col(&mut needed, *table, *col),
                OutputItem::Expr { expr, .. } => note_expr(&mut needed, expr)?,
                OutputItem::Agg { arg: Some(e), .. } => note_expr(&mut needed, e)?,
                OutputItem::Agg { arg: None, .. } => {}
            }
        }
        for &(t, c) in &a.group_by {
            note_col(&mut needed, t, c);
        }
        for e in &a.residual {
            note_expr(&mut needed, e)?;
        }
        for h in &a.having {
            if let Some(e) = &h.arg {
                note_expr(&mut needed, e)?;
            }
            note_expr(&mut needed, &h.rhs)?;
        }
        for j in &dec.broken {
            note_col(&mut needed, j.left.0, j.left.1);
            note_col(&mut needed, j.right.0, j.right.1);
        }
        for l in lowered {
            match l {
                LoweredCheck::KeySet { outer_cols, .. } => {
                    for &(t, c) in outer_cols {
                        note_col(&mut needed, t, c);
                    }
                }
                LoweredCheck::ScalarMap { outer_cols, expr, .. } => {
                    for &(t, c) in outer_cols {
                        note_col(&mut needed, t, c);
                    }
                    note_expr(&mut needed, expr)?;
                }
            }
        }

        // ---- own-row specs ----------------------------------------------------
        // A table's value row carries: a Var key for each join variable
        // occurring in it, plus Plain keys for needed non-join columns.
        let mut own_specs: Vec<Vec<(ColKey, usize)>> = Vec::with_capacity(n);
        for (t, needed_cols) in needed.iter().enumerate() {
            let mut spec: Vec<(ColKey, usize)> = Vec::new();
            // Every occurrence of a variable in this table is listed: when a
            // variable occurs in several columns of one tuple (equalities
            // merged by transitivity), `own_row` rejects tuples whose values
            // disagree — the implied intra-tuple equality.
            for v in &dec.vars {
                for &(tt, c) in &v.occurrences {
                    let entry = (ColKey::Var(v.id as u32), c);
                    if tt == t && !spec.contains(&entry) {
                        spec.push(entry);
                    }
                }
            }
            for &c in needed_cols {
                if !var_of.contains_key(&(t, c)) {
                    spec.push((ColKey::Col { table: t as u16, col: c as u16 }, c));
                }
            }
            spec.sort_by_key(|&(k, _)| k);
            own_specs.push(spec);
        }

        // Which single table (if any) each lowered subquery check can be
        // pushed to: all its outer columns and, for scalar comparisons, all
        // columns of the compared expression must live on one table.
        let mut fold_table: Vec<Option<usize>> = Vec::with_capacity(lowered.len());
        for l in lowered {
            let fold = match l {
                LoweredCheck::KeySet { outer_cols, .. } => {
                    single_table(outer_cols.iter().map(|&(t, _)| t))
                }
                LoweredCheck::ScalarMap { outer_cols, expr, .. } => {
                    let mut cols = Vec::new();
                    expr.columns(&mut cols);
                    let mut tables: Vec<usize> = outer_cols.iter().map(|&(t, _)| t).collect();
                    for c in &cols {
                        tables.push(a.resolve(c)?.0);
                    }
                    single_table(tables.into_iter())
                }
            };
            fold_table.push(fold);
        }

        // ---- filters ------------------------------------------------------------
        let mut filters = Vec::with_capacity(n);
        for (t, binding) in a.tables.iter().enumerate() {
            let bind_schema = |e: &Expr| -> Result<BoundExpr> {
                e.bind(&|c: &ColRef| {
                    let (tt, cc) = a.resolve(c)?;
                    if tt != t {
                        return Err(RelError::Other(format!(
                            "filter for table {t} references table {tt}"
                        )));
                    }
                    Ok(cc)
                })
            };
            let exprs: Vec<BoundExpr> =
                binding.filters.iter().map(bind_schema).collect::<Result<_>>()?;
            let mut checks = Vec::new();
            for (l, fold) in lowered.iter().zip(&fold_table) {
                if *fold != Some(t) {
                    continue;
                }
                match l {
                    LoweredCheck::KeySet { outer_cols, keys, negated } => {
                        checks.push(ResCheck::KeySet {
                            pos: outer_cols.iter().map(|&(_, c)| c).collect(),
                            keys: Arc::clone(keys),
                            negated: *negated,
                        });
                    }
                    LoweredCheck::ScalarMap { outer_cols, map, expr, op } => {
                        checks.push(ResCheck::ScalarMap {
                            pos: outer_cols.iter().map(|&(_, c)| c).collect(),
                            map: Arc::clone(map),
                            expr: bind_schema(expr)?,
                            op: *op,
                        });
                    }
                }
            }
            filters.push(TupleFilter { exprs, checks });
        }

        // ---- plans (prebuilt, borrowed from the prepared QueryPlan) -----------
        let plans = plan.plans.as_slice();
        let steps = plan.steps.as_slice();
        let primary = plan.primary;
        let component_of = plan.component_of.as_slice();

        // ---- labels ---------------------------------------------------------------
        let mut rel_label = Vec::with_capacity(n);
        let mut table_of_label = FxHashMap::default();
        for (t, binding) in a.tables.iter().enumerate() {
            let label = tag.relation_label(&binding.relation).ok_or_else(|| {
                RelError::Other(format!("relation `{}` absent from TAG graph", binding.relation))
            })?;
            rel_label.push(label);
            table_of_label.insert(label, t);
        }
        let mut step_labels = FxHashMap::default();
        for steps in steps {
            for s in steps {
                let rel = &a.tables[s.table].relation;
                let label = tag.column_label(rel, s.col).ok_or_else(|| {
                    RelError::Other(format!(
                        "join column {}.{} is not materialized as attribute vertices",
                        rel, a.tables[s.table].schema.columns[s.col].name
                    ))
                })?;
                step_labels.insert((s.table, s.col), label);
            }
        }

        // ---- final layout -----------------------------------------------------------
        let mut final_layout: Vec<ColKey> =
            own_specs.iter().flat_map(|s| s.iter().map(|&(k, _)| k)).collect();
        final_layout.sort_unstable();
        final_layout.dedup();

        let key_of = |t: usize, c: usize| -> ColKey {
            match var_of.get(&(t, c)) {
                Some(&v) => ColKey::Var(v),
                None => ColKey::Col { table: t as u16, col: c as u16 },
            }
        };
        let pos_of = |t: usize, c: usize| -> Result<usize> {
            let k = key_of(t, c);
            final_layout
                .binary_search(&k)
                .map_err(|_| RelError::Other(format!("column ({t},{c}) missing from layout")))
        };
        let bind_final = |e: &Expr| -> Result<BoundExpr> {
            e.bind(&|c: &ColRef| {
                let (t, col) = a.resolve(c)?;
                pos_of(t, col)
            })
        };

        // ---- residuals -----------------------------------------------------------------
        let mut residuals = Vec::new();
        for e in &a.residual {
            residuals.push(ResCheck::Expr(bind_final(e)?));
        }
        for j in &dec.broken {
            residuals
                .push(ResCheck::Eq(pos_of(j.left.0, j.left.1)?, pos_of(j.right.0, j.right.1)?));
        }
        for (l, fold) in lowered.iter().zip(&fold_table) {
            if fold.is_some() {
                continue; // already pushed to a single table's scan
            }
            match l {
                LoweredCheck::KeySet { outer_cols, keys, negated } => {
                    residuals.push(ResCheck::KeySet {
                        pos: outer_cols
                            .iter()
                            .map(|&(t, c)| pos_of(t, c))
                            .collect::<Result<_>>()?,
                        keys: Arc::clone(keys),
                        negated: *negated,
                    });
                }
                LoweredCheck::ScalarMap { outer_cols, map, expr, op } => {
                    residuals.push(ResCheck::ScalarMap {
                        pos: outer_cols
                            .iter()
                            .map(|&(t, c)| pos_of(t, c))
                            .collect::<Result<_>>()?,
                        map: Arc::clone(map),
                        expr: bind_final(expr)?,
                        op: *op,
                    });
                }
            }
        }

        // ---- output items / group keys / having --------------------------------------------
        let mut items = Vec::with_capacity(a.items.len());
        for item in &a.items {
            items.push(match item {
                OutputItem::Col { table, col, .. } => ProjItem::Col(pos_of(*table, *col)?),
                OutputItem::Expr { expr, .. } => ProjItem::Expr(bind_final(expr)?),
                OutputItem::Agg { func, arg, .. } => ProjItem::Agg {
                    func: *func,
                    arg: match arg {
                        Some(e) => Some(bind_final(e)?),
                        None => None,
                    },
                },
            });
        }
        let group_pos: Vec<usize> =
            a.group_by.iter().map(|&(t, c)| pos_of(t, c)).collect::<Result<_>>()?;
        let having_args: Vec<Option<BoundExpr>> = a
            .having
            .iter()
            .map(|h| h.arg.as_ref().map(&bind_final).transpose())
            .collect::<Result<_>>()?;
        let having_rhs: Vec<BoundExpr> =
            a.having.iter().map(|h| bind_final(&h.rhs)).collect::<Result<_>>()?;

        // LA routing label: the primary root must own the first group column.
        let la_route = if a.agg_class == AggClass::Local {
            let (gt, gc) = a.group_by[0];
            if plan.components[primary].root == gt {
                tag.column_label(&a.tables[gt].relation, gc)
            } else {
                None
            }
        } else {
            None
        };

        Ok(QueryCtx {
            analyzed: a,
            table_of_label,
            rel_label,
            filters,
            own_specs,
            plans,
            steps,
            primary,
            component_of,
            final_layout,
            residuals,
            items,
            group_pos,
            having_args,
            having_rhs,
            la_route,
            step_labels,
        })
    }

    /// Vertex label whose tuple vertices start component `ci`'s traversal.
    fn start_label(&self, ci: usize) -> LabelId {
        self.rel_label[self.plans[ci].start_table()]
    }

    /// The edge label of a traversal step.
    fn label(&self, s: Step) -> Result<LabelId> {
        self.step_labels
            .get(&(s.table, s.col))
            .copied()
            .ok_or_else(|| RelError::Other("unlabelled step".into()))
    }

    /// Layout of a component's gathered tables.
    fn component_layout(&self, ci: usize) -> Vec<ColKey> {
        let mut keys: Vec<ColKey> = (0..self.own_specs.len())
            .filter(|&t| self.component_of[t] == ci)
            .flat_map(|t| self.own_specs[t].iter().map(|&(k, _)| k))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// The projected one-row table for a tuple vertex of table `t`.
    /// Returns `None` when a join variable occurs in several columns of the
    /// tuple with disagreeing values (implicit intra-tuple equality).
    fn own_row(&self, t: usize, tuple: &Tuple) -> Option<Table> {
        let spec = &self.own_specs[t];
        let mut cols = Vec::with_capacity(spec.len());
        let mut row = Vec::with_capacity(spec.len());
        for &(k, c) in spec {
            let v = tuple.get(c).clone();
            if cols.last() == Some(&k) {
                // Same variable twice in this tuple (implicit intra-tuple
                // equality): values must agree or the tuple is dead.
                if row.last() != Some(&v) {
                    return None;
                }
                continue;
            }
            cols.push(k);
            row.push(v);
        }
        Some(Table::one_row(cols, row))
    }

    /// Evaluate the output items for one final row (NoAgg path).
    fn project_row(&self, row: &[Value]) -> Result<Box<[Value]>> {
        let mut out = Vec::with_capacity(self.items.len());
        for item in &self.items {
            out.push(item.eval(row)?);
        }
        Ok(out.into_boxed_slice())
    }

    /// A fresh partial for a group, seeded with a representative row.
    fn fresh_partial(&self, rep: &[Value]) -> Partial {
        Partial {
            accs: self
                .items
                .iter()
                .map(|i| match i {
                    ProjItem::Agg { func, .. } => Accumulator::new(*func),
                    _ => Accumulator::new(AggFunc::CountStar),
                })
                .collect(),
            having: self.analyzed.having.iter().map(|h| Accumulator::new(h.func)).collect(),
            rep: rep.to_vec().into_boxed_slice(),
        }
    }

    /// Feed one final row into a group's partial.
    fn update_partial(&self, part: &mut Partial, row: &[Value]) -> Result<()> {
        for (item, acc) in self.items.iter().zip(&mut part.accs) {
            if let ProjItem::Agg { arg, .. } = item {
                let v = match arg {
                    Some(e) => e.eval(row)?,
                    None => Value::Int(1),
                };
                acc.update(&v)?;
            }
        }
        for (h, acc) in self.having_args.iter().zip(&mut part.having) {
            let v = match h {
                Some(e) => e.eval(row)?,
                None => Value::Int(1),
            };
            acc.update(&v)?;
        }
        Ok(())
    }
}

/// The unique table in `tables`, if all entries agree (and there is one).
fn single_table(mut tables: impl Iterator<Item = usize>) -> Option<usize> {
    let first = tables.next()?;
    tables.all(|t| t == first).then_some(first)
}

/// Build the output relation, inferring column types from the first non-NULL
/// value per column.
fn build_output(a: &Analyzed, rows: Vec<Vec<Value>>) -> Result<Relation> {
    let names = a.output_names();
    let mut types = Vec::with_capacity(names.len());
    for i in 0..names.len() {
        types.push(rows.iter().filter_map(|r| r[i].data_type()).next().unwrap_or(DataType::Int));
    }
    let schema = Schema::new(
        "result",
        names.iter().zip(&types).map(|(n, t)| Column::new(n.clone(), *t)).collect(),
    );
    let mut rel = Relation::empty(schema);
    for r in rows {
        rel.push(Tuple::new(r))?;
    }
    Ok(rel)
}
