//! TPC-H-style schema, generator and query suite.
//!
//! The 8-table 3NF schema of TPC-H with the columns the suite queries use.
//! Generation mirrors dbgen's structure: fixed-size `region`/`nation`,
//! everything else scaling linearly with the scale factor, uniform foreign
//! keys, dates in 1992–1998. Strings include the comment-style columns that
//! the TAG policy deliberately does *not* materialize.

use crate::BenchQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vcsql_query::AggClass;
use vcsql_relation::schema::{Column, Schema};
use vcsql_relation::{DataType, Database, Date, Relation, Tuple, Value};

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const COLORS: [&str; 10] =
    ["green", "blue", "red", "metallic", "burnished", "floral", "ivory", "navy", "plum", "puff"];
const TYPES: [&str; 6] = [
    "PROMO BRUSHED",
    "STANDARD POLISHED",
    "SMALL PLATED",
    "MEDIUM BURNISHED",
    "ECONOMY ANODIZED",
    "LARGE BRUSHED",
];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
const LINE_STATUS: [&str; 2] = ["O", "F"];

/// Row counts at `sf = 1.0` (≈ TPC-H SF-1 divided by 1000, keeping ratios).
pub struct Counts {
    pub supplier: usize,
    pub customer: usize,
    pub part: usize,
    pub partsupp_per_part: usize,
    pub orders: usize,
    pub max_lines_per_order: usize,
}

impl Counts {
    fn at(sf: f64) -> Counts {
        let scale = |base: usize| ((base as f64 * sf).round() as usize).max(3);
        Counts {
            supplier: scale(100),
            customer: scale(1500),
            part: scale(2000),
            partsupp_per_part: 4,
            orders: scale(15_000),
            max_lines_per_order: 7,
        }
    }
}

/// The TPC-H-style schemas (comment columns are `unindexed`: no attribute
/// vertices, mirroring the paper's loading policy).
pub fn schemas() -> Vec<Schema> {
    vec![
        Schema::new(
            "region",
            vec![Column::new("r_regionkey", DataType::Int), Column::new("r_name", DataType::Str)],
        )
        .with_primary_key(&["r_regionkey"]),
        Schema::new(
            "nation",
            vec![
                Column::new("n_nationkey", DataType::Int),
                Column::new("n_regionkey", DataType::Int),
                Column::new("n_name", DataType::Str),
            ],
        )
        .with_primary_key(&["n_nationkey"])
        .with_foreign_key(&["n_regionkey"], "region", &["r_regionkey"]),
        Schema::new(
            "supplier",
            vec![
                Column::new("s_suppkey", DataType::Int),
                Column::new("s_nationkey", DataType::Int),
                Column::new("s_name", DataType::Str),
                Column::new("s_acctbal", DataType::Float),
                Column::unindexed("s_comment", DataType::Str),
            ],
        )
        .with_primary_key(&["s_suppkey"])
        .with_foreign_key(&["s_nationkey"], "nation", &["n_nationkey"]),
        Schema::new(
            "customer",
            vec![
                Column::new("c_custkey", DataType::Int),
                Column::new("c_nationkey", DataType::Int),
                Column::new("c_name", DataType::Str),
                Column::new("c_acctbal", DataType::Float),
                Column::new("c_mktsegment", DataType::Str),
                Column::unindexed("c_comment", DataType::Str),
            ],
        )
        .with_primary_key(&["c_custkey"])
        .with_foreign_key(&["c_nationkey"], "nation", &["n_nationkey"]),
        Schema::new(
            "part",
            vec![
                Column::new("p_partkey", DataType::Int),
                Column::new("p_name", DataType::Str),
                Column::new("p_brand", DataType::Str),
                Column::new("p_type", DataType::Str),
                Column::new("p_size", DataType::Int),
                Column::new("p_container", DataType::Str),
                Column::new("p_retailprice", DataType::Float),
            ],
        )
        .with_primary_key(&["p_partkey"]),
        Schema::new(
            "partsupp",
            vec![
                Column::new("ps_partkey", DataType::Int),
                Column::new("ps_suppkey", DataType::Int),
                Column::new("ps_availqty", DataType::Int),
                Column::new("ps_supplycost", DataType::Float),
            ],
        )
        .with_foreign_key(&["ps_partkey"], "part", &["p_partkey"])
        .with_foreign_key(&["ps_suppkey"], "supplier", &["s_suppkey"]),
        Schema::new(
            "orders",
            vec![
                Column::new("o_orderkey", DataType::Int),
                Column::new("o_custkey", DataType::Int),
                Column::new("o_orderdate", DataType::Date),
                Column::new("o_totalprice", DataType::Float),
                Column::new("o_orderpriority", DataType::Str),
                Column::new("o_shippriority", DataType::Int),
            ],
        )
        .with_primary_key(&["o_orderkey"])
        .with_foreign_key(&["o_custkey"], "customer", &["c_custkey"]),
        Schema::new(
            "lineitem",
            vec![
                Column::new("l_orderkey", DataType::Int),
                Column::new("l_partkey", DataType::Int),
                Column::new("l_suppkey", DataType::Int),
                Column::new("l_quantity", DataType::Int),
                Column::new("l_extendedprice", DataType::Float),
                Column::new("l_discount", DataType::Float),
                Column::new("l_tax", DataType::Float),
                Column::new("l_returnflag", DataType::Str),
                Column::new("l_linestatus", DataType::Str),
                Column::new("l_shipdate", DataType::Date),
                Column::new("l_commitdate", DataType::Date),
                Column::new("l_receiptdate", DataType::Date),
                Column::new("l_shipmode", DataType::Str),
            ],
        )
        .with_foreign_key(&["l_orderkey"], "orders", &["o_orderkey"])
        .with_foreign_key(&["l_partkey"], "part", &["p_partkey"])
        .with_foreign_key(&["l_suppkey"], "supplier", &["s_suppkey"]),
    ]
}

fn date_between(rng: &mut StdRng, lo: Date, hi: Date) -> Date {
    Date(rng.gen_range(lo.0..=hi.0))
}

/// Generate a TPC-H-style database at the given scale factor.
pub fn generate(sf: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let counts = Counts::at(sf);
    let schemas = schemas();
    let schema = |name: &str| schemas.iter().find(|s| s.name == name).unwrap().clone();
    let mut db = Database::new();

    // region / nation: fixed.
    let mut region = Relation::empty(schema("region"));
    for (k, name) in REGIONS.iter().enumerate() {
        region.push(Tuple::new(vec![Value::Int(k as i64), Value::str(name)])).unwrap();
    }
    db.add(region);
    let mut nation = Relation::empty(schema("nation"));
    for (k, (name, rk)) in NATIONS.iter().enumerate() {
        nation
            .push(Tuple::new(vec![Value::Int(k as i64), Value::Int(*rk), Value::str(name)]))
            .unwrap();
    }
    db.add(nation);

    // supplier.
    let mut supplier = Relation::empty(schema("supplier"));
    for k in 0..counts.supplier {
        supplier
            .push(Tuple::new(vec![
                Value::Int(k as i64),
                Value::Int(rng.gen_range(0..25)),
                Value::str(format!("Supplier#{k:06}")),
                Value::Float((rng.gen_range(-99_999..=999_999) as f64) / 100.0),
                Value::str(lorem(&mut rng)),
            ]))
            .unwrap();
    }
    db.add(supplier);

    // customer.
    let mut customer = Relation::empty(schema("customer"));
    for k in 0..counts.customer {
        customer
            .push(Tuple::new(vec![
                Value::Int(k as i64),
                Value::Int(rng.gen_range(0..25)),
                Value::str(format!("Customer#{k:06}")),
                Value::Float((rng.gen_range(-99_999..=999_999) as f64) / 100.0),
                Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                Value::str(lorem(&mut rng)),
            ]))
            .unwrap();
    }
    db.add(customer);

    // part.
    let mut part = Relation::empty(schema("part"));
    for k in 0..counts.part {
        let c1 = COLORS[rng.gen_range(0..COLORS.len())];
        let c2 = COLORS[rng.gen_range(0..COLORS.len())];
        part.push(Tuple::new(vec![
            Value::Int(k as i64),
            Value::str(format!("{c1} {c2} part")),
            Value::str(format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6))),
            Value::str(TYPES[rng.gen_range(0..TYPES.len())]),
            Value::Int(rng.gen_range(1..51)),
            Value::str(["SM BOX", "MED BAG", "LG CASE", "JUMBO DRUM"][rng.gen_range(0..4usize)]),
            Value::Float(900.0 + (k % 200) as f64),
        ]))
        .unwrap();
    }
    db.add(part);

    // partsupp: each part supplied by several suppliers.
    let mut partsupp = Relation::empty(schema("partsupp"));
    for pk in 0..counts.part {
        for s in 0..counts.partsupp_per_part {
            let sk = (pk * 7 + s * 13 + rng.gen_range(0..counts.supplier)) % counts.supplier;
            partsupp
                .push(Tuple::new(vec![
                    Value::Int(pk as i64),
                    Value::Int(sk as i64),
                    Value::Int(rng.gen_range(1..10_000)),
                    Value::Float((rng.gen_range(100..100_000) as f64) / 100.0),
                ]))
                .unwrap();
        }
    }
    db.add(partsupp);

    // orders + lineitem.
    let lo = Date::from_ymd(1992, 1, 1);
    let hi = Date::from_ymd(1998, 8, 2);
    let mut orders = Relation::empty(schema("orders"));
    let mut lineitem = Relation::empty(schema("lineitem"));
    for ok in 0..counts.orders {
        let odate = date_between(&mut rng, lo, hi);
        let nlines = rng.gen_range(1..=counts.max_lines_per_order);
        let mut total = 0.0;
        let mut lines = Vec::with_capacity(nlines);
        for _ in 0..nlines {
            let qty = rng.gen_range(1..=50);
            let price = (rng.gen_range(90_000..200_000) as f64) / 100.0;
            let discount = (rng.gen_range(0..=10) as f64) / 100.0;
            let tax = (rng.gen_range(0..=8) as f64) / 100.0;
            let ship = odate.add_days(rng.gen_range(1..=121));
            let commit = odate.add_days(rng.gen_range(30..=90));
            let receipt = ship.add_days(rng.gen_range(1..=30));
            total += price * qty as f64;
            lines.push(Tuple::new(vec![
                Value::Int(ok as i64),
                Value::Int(rng.gen_range(0..counts.part) as i64),
                Value::Int(rng.gen_range(0..counts.supplier) as i64),
                Value::Int(qty),
                Value::Float(price),
                Value::Float(discount),
                Value::Float(tax),
                Value::str(RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())]),
                Value::str(LINE_STATUS[rng.gen_range(0..LINE_STATUS.len())]),
                Value::Date(ship),
                Value::Date(commit),
                Value::Date(receipt),
                Value::str(SHIPMODES[rng.gen_range(0..SHIPMODES.len())]),
            ]));
        }
        orders
            .push(Tuple::new(vec![
                Value::Int(ok as i64),
                Value::Int(rng.gen_range(0..counts.customer) as i64),
                Value::Date(odate),
                Value::Float(total),
                Value::str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
                Value::Int(0),
            ]))
            .unwrap();
        for l in lines {
            lineitem.push(l).unwrap();
        }
    }
    db.add(orders);
    db.add(lineitem);
    db
}

fn lorem(rng: &mut StdRng) -> String {
    const WORDS: [&str; 8] =
        ["carefully", "final", "deposits", "sleep", "furiously", "ironic", "requests", "pending"];
    let n = rng.gen_range(8..16);
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

/// The TPC-H-shaped query suite. Each query is written in the supported SQL
/// subset (no ORDER BY/LIMIT — excluded by the paper too) and avoids
/// self-joins in a single block (see DESIGN.md).
pub fn queries() -> Vec<BenchQuery> {
    use AggClass::*;
    vec![
        BenchQuery::new("q1", "TPC-H q1 (pricing summary)", Global, false,
            "SELECT l.l_returnflag, l.l_linestatus, SUM(l.l_quantity) AS sum_qty, \
             SUM(l.l_extendedprice) AS sum_base, \
             SUM(l.l_extendedprice * (1 - l.l_discount)) AS sum_disc, \
             AVG(l.l_quantity) AS avg_qty, COUNT(*) AS count_order \
             FROM lineitem l WHERE l.l_shipdate <= DATE '1998-09-02' \
             GROUP BY l.l_returnflag, l.l_linestatus"),
        BenchQuery::new("q2", "TPC-H q2 (min-cost supplier)", NoAgg, true,
            "SELECT s.s_name, p.p_partkey FROM part p, partsupp ps, supplier s, nation n, region r \
             WHERE p.p_partkey = ps.ps_partkey AND ps.ps_suppkey = s.s_suppkey \
             AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
             AND r.r_name = 'EUROPE' AND p.p_size = 15 \
             AND ps.ps_supplycost <= (SELECT MIN(ps2.ps_supplycost) FROM partsupp ps2 \
                                      WHERE ps2.ps_partkey = p.p_partkey)"),
        BenchQuery::new("q3", "TPC-H q3 (shipping priority)", Local, false,
            "SELECT o.o_orderkey, o.o_orderdate, o.o_shippriority, \
             SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
             FROM customer c, orders o, lineitem l \
             WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey \
             AND l.l_orderkey = o.o_orderkey AND o.o_orderdate < DATE '1995-03-15' \
             AND l.l_shipdate > DATE '1995-03-15' \
             GROUP BY o.o_orderkey, o.o_orderdate, o.o_shippriority"),
        BenchQuery::new("q4", "TPC-H q4 (order priority, EXISTS)", Local, true,
            "SELECT o.o_orderpriority, COUNT(*) AS order_count FROM orders o \
             WHERE o.o_orderdate >= DATE '1995-07-01' AND o.o_orderdate < DATE '1995-10-01' \
             AND EXISTS (SELECT l.l_orderkey FROM lineitem l \
                         WHERE l.l_orderkey = o.o_orderkey AND l.l_commitdate < l.l_receiptdate) \
             GROUP BY o.o_orderpriority"),
        BenchQuery::new("q5", "TPC-H q5 (local supplier volume, 5-way cycle)", Local, false,
            "SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
             FROM customer c, orders o, lineitem l, supplier s, nation n, region r \
             WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
             AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey \
             AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
             AND r.r_name = 'ASIA' AND o.o_orderdate >= DATE '1994-01-01' \
             AND o.o_orderdate < DATE '1995-01-01' GROUP BY n.n_name"),
        BenchQuery::new("q6", "TPC-H q6 (forecast revenue)", Scalar, false,
            "SELECT SUM(l.l_extendedprice * l.l_discount) AS revenue FROM lineitem l \
             WHERE l.l_shipdate >= DATE '1994-01-01' AND l.l_shipdate < DATE '1995-01-01' \
             AND l.l_discount BETWEEN 0.05 AND 0.07 AND l.l_quantity < 24"),
        BenchQuery::new("q7", "TPC-H q7 (volume shipping, reshaped single-nation)", Global, false,
            "SELECT n.n_name, YEAR(l.l_shipdate) AS l_year, \
             SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
             FROM supplier s, lineitem l, orders o, nation n \
             WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey \
             AND s.s_nationkey = n.n_nationkey \
             AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
             GROUP BY n.n_name, l.l_shipdate"),
        BenchQuery::new("q10", "TPC-H q10 (returned items)", Local, false,
            "SELECT c.c_custkey, c.c_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
             FROM customer c, orders o, lineitem l, nation n \
             WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
             AND o.o_orderdate >= DATE '1993-10-01' AND o.o_orderdate < DATE '1994-01-01' \
             AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey \
             GROUP BY c.c_custkey, c.c_name"),
        BenchQuery::new("q12", "TPC-H q12 (shipping modes, CASE sums)", Local, false,
            "SELECT l.l_shipmode, \
             SUM(CASE WHEN o.o_orderpriority = '1-URGENT' OR o.o_orderpriority = '2-HIGH' \
                 THEN 1 ELSE 0 END) AS high_line_count, \
             SUM(CASE WHEN o.o_orderpriority <> '1-URGENT' AND o.o_orderpriority <> '2-HIGH' \
                 THEN 1 ELSE 0 END) AS low_line_count \
             FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey \
             AND l.l_shipmode IN ('MAIL', 'SHIP') AND l.l_commitdate < l.l_receiptdate \
             AND l.l_shipdate < l.l_commitdate AND l.l_receiptdate >= DATE '1994-01-01' \
             AND l.l_receiptdate < DATE '1995-01-01' GROUP BY l.l_shipmode"),
        BenchQuery::new("q14", "TPC-H q14 (promotion effect)", Scalar, false,
            "SELECT SUM(CASE WHEN p.p_type LIKE 'PROMO%' \
                 THEN l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) AS promo_revenue, \
             SUM(l.l_extendedprice * (1 - l.l_discount)) AS total_revenue \
             FROM lineitem l, part p WHERE l.l_partkey = p.p_partkey \
             AND l.l_shipdate >= DATE '1995-09-01' AND l.l_shipdate < DATE '1995-10-01'"),
        BenchQuery::new("q16", "TPC-H q16 (parts/supplier relationship)", Global, false,
            "SELECT p.p_brand, p.p_type, p.p_size, COUNT(ps.ps_suppkey) AS supplier_cnt \
             FROM partsupp ps, part p WHERE p.p_partkey = ps.ps_partkey \
             AND p.p_brand <> 'Brand#45' AND p.p_size IN (1, 4, 9, 14, 23, 36, 45, 49) \
             GROUP BY p.p_brand, p.p_type, p.p_size"),
        BenchQuery::new("q17", "TPC-H q17 (small-quantity orders, correlated scalar)", Scalar, true,
            "SELECT SUM(l.l_extendedprice) AS total FROM lineitem l, part p \
             WHERE p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#23' \
             AND p.p_container = 'MED BAG' \
             AND 5 * l.l_quantity < (SELECT SUM(l2.l_quantity) FROM lineitem l2 \
                                     WHERE l2.l_partkey = p.p_partkey)"),
        BenchQuery::new("q18", "TPC-H q18 (large-volume customers, IN + HAVING)", Local, false,
            "SELECT c.c_custkey, c.c_name, SUM(l.l_quantity) AS total_qty \
             FROM customer c, orders o, lineitem l \
             WHERE o.o_orderkey IN (SELECT l2.l_orderkey FROM lineitem l2 \
                                    GROUP BY l2.l_orderkey HAVING SUM(l2.l_quantity) > 180) \
             AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
             GROUP BY c.c_custkey, c.c_name"),
        BenchQuery::new("q19", "TPC-H q19 (discounted revenue, OR-of-conjunctions)", Scalar, false,
            "SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
             FROM lineitem l, part p WHERE p.p_partkey = l.l_partkey \
             AND ((p.p_container = 'SM BOX' AND l.l_quantity BETWEEN 1 AND 11) \
                  OR (p.p_container = 'MED BAG' AND l.l_quantity BETWEEN 10 AND 20) \
                  OR (p.p_container = 'LG CASE' AND l.l_quantity BETWEEN 20 AND 30)) \
             AND l.l_shipmode IN ('AIR', 'REG AIR')"),
        BenchQuery::new("q22", "TPC-H q22 (global sales opportunity, scalar + NOT EXISTS)", Local, true,
            "SELECT c.c_mktsegment, COUNT(*) AS numcust, SUM(c.c_acctbal) AS totacctbal \
             FROM customer c \
             WHERE c.c_acctbal > (SELECT AVG(c2.c_acctbal) FROM customer c2 \
                                  WHERE c2.c_acctbal > 0.0) \
             AND NOT EXISTS (SELECT o.o_orderkey FROM orders o WHERE o.o_custkey = c.c_custkey) \
             GROUP BY c.c_mktsegment"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_scales_and_is_deterministic() {
        let a = generate(0.02, 7);
        let b = generate(0.02, 7);
        assert_eq!(a.total_tuples(), b.total_tuples());
        for rel in a.relations() {
            assert!(b.get(rel.name()).unwrap().same_bag(rel), "{} differs", rel.name());
        }
        let big = generate(0.05, 7);
        assert!(big.get("lineitem").unwrap().len() > a.get("lineitem").unwrap().len());
        assert_eq!(a.get("region").unwrap().len(), 5);
        assert_eq!(a.get("nation").unwrap().len(), 25);
    }

    #[test]
    fn all_queries_parse_and_analyze() {
        let schemas = schemas();
        for q in queries() {
            let stmt = vcsql_query::parse(q.sql)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", q.id));
            let analyzed = vcsql_query::analyze::analyze(&stmt, &schemas)
                .unwrap_or_else(|e| panic!("{} does not analyze: {e}", q.id));
            assert_eq!(analyzed.agg_class, q.class, "{} classified differently", q.id);
            assert_eq!(
                !analyzed.subqueries.is_empty()
                    && analyzed.subqueries.iter().any(|s| !s.correlations.is_empty()),
                q.correlated,
                "{} correlation flag mismatch",
                q.id
            );
        }
    }

    #[test]
    fn q5_is_the_cycle_query() {
        let schemas = schemas();
        let stmt = vcsql_query::parse(queries()[4].sql).unwrap();
        let analyzed = vcsql_query::analyze::analyze(&stmt, &schemas).unwrap();
        let dec = vcsql_query::gyo::decompose(analyzed.tables.len(), &analyzed.joins);
        assert!(dec.cyclic, "q5 should have a cyclic join graph");
    }
}
