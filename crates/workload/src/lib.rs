//! # vcsql-workload — TPC-style schemas, data generators and query suites
//!
//! Laptop-scale stand-ins for the paper's TPC-H and TPC-DS setups:
//!
//! * [`tpch`] — the classic 3NF 8-table schema with a purely synthetic,
//!   uniformly scaling generator (like dbgen), and a 15-query suite shaped
//!   after the TPC-H queries the paper analyses, each tagged with the paper
//!   query it mirrors and its aggregation class;
//! * [`tpcds`] — a snowflake schema (3 fact + 6 dimension tables) with
//!   sub-linear dimension scaling, skewed foreign keys and NULLs (like
//!   dsdgen), and a 20-query suite covering the paper's classes: no
//!   aggregation, local, global and scalar aggregation, and correlated
//!   subqueries;
//! * [`synthetic`] — parameterized binary-relation instances for the
//!   two-way-join cost-model and cycle-query experiments (Sections 4 and 6).
//!
//! Scale factors are fractional: `sf = 1.0` produces roughly 60k lineitems —
//! about 1/1000 of TPC-H SF-1 — so the paper's three scale points map to
//! e.g. 0.05 / 0.1 / 0.2 here.

pub mod synthetic;
pub mod tpcds;
pub mod tpch;

use vcsql_query::AggClass;

/// A benchmark query: SQL plus metadata for the harness tables.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Suite-local id, e.g. "q3".
    pub id: &'static str,
    /// The paper/TPC query this is shaped after.
    pub paper_ref: &'static str,
    /// Aggregation class (paper Section 7 / Fig 15 grouping).
    pub class: AggClass,
    /// Whether this query contains a correlated subquery (Table 3's "Corr"
    /// rows).
    pub correlated: bool,
    pub sql: &'static str,
}

impl BenchQuery {
    pub(crate) fn new(
        id: &'static str,
        paper_ref: &'static str,
        class: AggClass,
        correlated: bool,
        sql: &'static str,
    ) -> BenchQuery {
        BenchQuery { id, paper_ref, class, correlated, sql }
    }
}
