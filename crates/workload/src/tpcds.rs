//! TPC-DS-style snowflake schema, generator and query suite.
//!
//! Three fact tables (`store_sales`, `catalog_sales`, `web_sales`) over six
//! shared dimensions. Mirroring dsdgen's character: dimensions scale
//! *sub-linearly* with the scale factor, fact foreign keys are skewed
//! (popular items/customers get disproportionate traffic) and non-key fact
//! columns contain NULLs.

use crate::BenchQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vcsql_query::AggClass;
use vcsql_relation::schema::{Column, Schema};
use vcsql_relation::{DataType, Database, Date, Relation, Tuple, Value};

const STATES: [&str; 10] = ["CA", "NY", "TX", "WA", "IL", "GA", "OH", "MI", "TN", "OR"];
const CATEGORIES: [&str; 6] = ["Music", "Books", "Electronics", "Home", "Sports", "Shoes"];
const CLASSES: [&str; 5] = ["accent", "classic", "portable", "premium", "value"];
const GENDERS: [&str; 2] = ["M", "F"];
const MARITAL: [&str; 3] = ["S", "M", "D"];
const EDUCATION: [&str; 4] = ["Primary", "Secondary", "College", "Advanced"];

/// The TPC-DS-style schemas.
pub fn schemas() -> Vec<Schema> {
    vec![
        Schema::new(
            "date_dim",
            vec![
                Column::new("d_datekey", DataType::Int),
                Column::new("d_date", DataType::Date),
                Column::new("d_year", DataType::Int),
                Column::new("d_moy", DataType::Int),
                Column::new("d_qoy", DataType::Int),
            ],
        )
        .with_primary_key(&["d_datekey"]),
        Schema::new(
            "item",
            vec![
                Column::new("i_itemkey", DataType::Int),
                Column::new("i_brand", DataType::Str),
                Column::new("i_category", DataType::Str),
                Column::new("i_class", DataType::Str),
                Column::new("i_color", DataType::Str),
                Column::new("i_price", DataType::Float),
                Column::new("i_manufact_id", DataType::Int),
            ],
        )
        .with_primary_key(&["i_itemkey"]),
        Schema::new(
            "customer_address",
            vec![
                Column::new("ca_addrkey", DataType::Int),
                Column::new("ca_state", DataType::Str),
                Column::new("ca_gmt", DataType::Int),
            ],
        )
        .with_primary_key(&["ca_addrkey"]),
        Schema::new(
            "customer_demographics",
            vec![
                Column::new("cd_demokey", DataType::Int),
                Column::new("cd_gender", DataType::Str),
                Column::new("cd_marital", DataType::Str),
                Column::new("cd_education", DataType::Str),
            ],
        )
        .with_primary_key(&["cd_demokey"]),
        Schema::new(
            "customer_dim",
            vec![
                Column::new("c_custkey", DataType::Int),
                Column::new("c_addrkey", DataType::Int),
                Column::new("c_demokey", DataType::Int),
                Column::new("c_name", DataType::Str),
                Column::new("c_birth_year", DataType::Int),
            ],
        )
        .with_primary_key(&["c_custkey"])
        .with_foreign_key(&["c_addrkey"], "customer_address", &["ca_addrkey"])
        .with_foreign_key(&["c_demokey"], "customer_demographics", &["cd_demokey"]),
        Schema::new(
            "store",
            vec![
                Column::new("st_storekey", DataType::Int),
                Column::new("st_state", DataType::Str),
                Column::new("st_market", DataType::Int),
            ],
        )
        .with_primary_key(&["st_storekey"]),
        Schema::new(
            "store_sales",
            vec![
                Column::new("ss_datekey", DataType::Int),
                Column::new("ss_itemkey", DataType::Int),
                Column::new("ss_custkey", DataType::Int),
                Column::new("ss_storekey", DataType::Int),
                Column::new("ss_quantity", DataType::Int),
                Column::new("ss_price", DataType::Float),
                Column::new("ss_profit", DataType::Float),
            ],
        )
        .with_foreign_key(&["ss_datekey"], "date_dim", &["d_datekey"])
        .with_foreign_key(&["ss_itemkey"], "item", &["i_itemkey"])
        .with_foreign_key(&["ss_custkey"], "customer_dim", &["c_custkey"])
        .with_foreign_key(&["ss_storekey"], "store", &["st_storekey"]),
        Schema::new(
            "catalog_sales",
            vec![
                Column::new("cs_datekey", DataType::Int),
                Column::new("cs_itemkey", DataType::Int),
                Column::new("cs_custkey", DataType::Int),
                Column::new("cs_quantity", DataType::Int),
                Column::new("cs_price", DataType::Float),
            ],
        )
        .with_foreign_key(&["cs_datekey"], "date_dim", &["d_datekey"])
        .with_foreign_key(&["cs_itemkey"], "item", &["i_itemkey"])
        .with_foreign_key(&["cs_custkey"], "customer_dim", &["c_custkey"]),
        Schema::new(
            "web_sales",
            vec![
                Column::new("ws_datekey", DataType::Int),
                Column::new("ws_itemkey", DataType::Int),
                Column::new("ws_custkey", DataType::Int),
                Column::new("ws_quantity", DataType::Int),
                Column::new("ws_price", DataType::Float),
            ],
        )
        .with_foreign_key(&["ws_datekey"], "date_dim", &["d_datekey"])
        .with_foreign_key(&["ws_itemkey"], "item", &["i_itemkey"])
        .with_foreign_key(&["ws_custkey"], "customer_dim", &["c_custkey"]),
    ]
}

/// Skewed key draw: 80% of draws hit the first 20% of the key space.
fn skewed_key(rng: &mut StdRng, n: usize) -> i64 {
    if rng.gen_bool(0.8) {
        rng.gen_range(0..(n / 5).max(1)) as i64
    } else {
        rng.gen_range(0..n) as i64
    }
}

/// Nullable fact FK: ~2% NULL (TPC-DS allows NULLs in any non-PK column).
fn nullable(rng: &mut StdRng, v: i64) -> Value {
    if rng.gen_bool(0.02) {
        Value::Null
    } else {
        Value::Int(v)
    }
}

/// Generate a TPC-DS-style database. Facts scale linearly with `sf`,
/// dimensions with `sf.sqrt()` (the paper: "dimension tables scale
/// sub-linearly").
pub fn generate(sf: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schemas = schemas();
    let schema = |name: &str| schemas.iter().find(|s| s.name == name).unwrap().clone();
    let dim = |base: usize| ((base as f64 * sf.sqrt()).round() as usize).max(4);
    let fact = |base: usize| ((base as f64 * sf).round() as usize).max(10);

    let n_dates = 365 * 3; // three years of days
    let n_items = dim(900);
    let n_addr = dim(500);
    let n_demo = dim(240);
    let n_cust = dim(1200);
    let n_store = dim(30);
    let n_ss = fact(30_000);
    let n_cs = fact(15_000);
    let n_ws = fact(8_000);

    let mut db = Database::new();

    let mut date_dim = Relation::empty(schema("date_dim"));
    let start = Date::from_ymd(1999, 1, 1);
    for k in 0..n_dates {
        let d = start.add_days(k);
        let (y, m, _) = d.to_ymd();
        date_dim
            .push(Tuple::new(vec![
                Value::Int(k as i64),
                Value::Date(d),
                Value::Int(y as i64),
                Value::Int(m as i64),
                Value::Int(((m - 1) / 3 + 1) as i64),
            ]))
            .unwrap();
    }
    db.add(date_dim);

    let mut item = Relation::empty(schema("item"));
    for k in 0..n_items {
        item.push(Tuple::new(vec![
            Value::Int(k as i64),
            Value::str(format!("Brand#{}", rng.gen_range(1..12))),
            Value::str(CATEGORIES[rng.gen_range(0..CATEGORIES.len())]),
            Value::str(CLASSES[rng.gen_range(0..CLASSES.len())]),
            Value::str(["red", "green", "blue", "bisque", "rosy"][rng.gen_range(0..5usize)]),
            Value::Float((rng.gen_range(100..20_000) as f64) / 100.0),
            Value::Int(rng.gen_range(1..100)),
        ]))
        .unwrap();
    }
    db.add(item);

    let mut addr = Relation::empty(schema("customer_address"));
    for k in 0..n_addr {
        addr.push(Tuple::new(vec![
            Value::Int(k as i64),
            Value::str(STATES[rng.gen_range(0..STATES.len())]),
            Value::Int(rng.gen_range(-8..-4)),
        ]))
        .unwrap();
    }
    db.add(addr);

    let mut demo = Relation::empty(schema("customer_demographics"));
    for k in 0..n_demo {
        demo.push(Tuple::new(vec![
            Value::Int(k as i64),
            Value::str(GENDERS[rng.gen_range(0..GENDERS.len())]),
            Value::str(MARITAL[rng.gen_range(0..MARITAL.len())]),
            Value::str(EDUCATION[rng.gen_range(0..EDUCATION.len())]),
        ]))
        .unwrap();
    }
    db.add(demo);

    let mut cust = Relation::empty(schema("customer_dim"));
    for k in 0..n_cust {
        cust.push(Tuple::new(vec![
            Value::Int(k as i64),
            Value::Int(rng.gen_range(0..n_addr) as i64),
            Value::Int(rng.gen_range(0..n_demo) as i64),
            Value::str(format!("Customer#{k:06}")),
            Value::Int(rng.gen_range(1930..2000)),
        ]))
        .unwrap();
    }
    db.add(cust);

    let mut store = Relation::empty(schema("store"));
    for k in 0..n_store {
        store
            .push(Tuple::new(vec![
                Value::Int(k as i64),
                Value::str(STATES[rng.gen_range(0..STATES.len())]),
                Value::Int(rng.gen_range(1..11)),
            ]))
            .unwrap();
    }
    db.add(store);

    let mut ss = Relation::empty(schema("store_sales"));
    for _ in 0..n_ss {
        let price = (rng.gen_range(100..30_000) as f64) / 100.0;
        ss.push(Tuple::new(vec![
            Value::Int(rng.gen_range(0..n_dates) as i64),
            {
                let k = skewed_key(&mut rng, n_items);
                nullable(&mut rng, k)
            },
            {
                let k = skewed_key(&mut rng, n_cust);
                nullable(&mut rng, k)
            },
            Value::Int(rng.gen_range(0..n_store) as i64),
            Value::Int(rng.gen_range(1..100)),
            Value::Float(price),
            Value::Float(price * (rng.gen_range(-30..60) as f64) / 100.0),
        ]))
        .unwrap();
    }
    db.add(ss);

    let mut cs = Relation::empty(schema("catalog_sales"));
    for _ in 0..n_cs {
        cs.push(Tuple::new(vec![
            Value::Int(rng.gen_range(0..n_dates) as i64),
            {
                let k = skewed_key(&mut rng, n_items);
                nullable(&mut rng, k)
            },
            {
                let k = skewed_key(&mut rng, n_cust);
                nullable(&mut rng, k)
            },
            Value::Int(rng.gen_range(1..50)),
            Value::Float((rng.gen_range(100..25_000) as f64) / 100.0),
        ]))
        .unwrap();
    }
    db.add(cs);

    let mut ws = Relation::empty(schema("web_sales"));
    for _ in 0..n_ws {
        ws.push(Tuple::new(vec![
            Value::Int(rng.gen_range(0..n_dates) as i64),
            {
                let k = skewed_key(&mut rng, n_items);
                nullable(&mut rng, k)
            },
            {
                let k = skewed_key(&mut rng, n_cust);
                nullable(&mut rng, k)
            },
            Value::Int(rng.gen_range(1..30)),
            Value::Float((rng.gen_range(100..25_000) as f64) / 100.0),
        ]))
        .unwrap();
    }
    db.add(ws);

    db
}

/// The TPC-DS-shaped query suite: 20 queries covering the paper's classes
/// (3 no-agg, 7 local, 6 global, 4 scalar; 3 with correlated subqueries).
pub fn queries() -> Vec<BenchQuery> {
    use AggClass::*;
    vec![
        // ---- no aggregation (paper: q37, q82, q84) -------------------------
        BenchQuery::new("d_q37", "TPC-DS q37 (item availability probe)", NoAgg, false,
            "SELECT i.i_itemkey, i.i_brand, i.i_price FROM item i, store_sales ss, date_dim d \
             WHERE i.i_itemkey = ss.ss_itemkey AND ss.ss_datekey = d.d_datekey \
             AND d.d_year = 2000 AND d.d_moy = 3 AND i.i_price BETWEEN 50 AND 80 \
             AND i.i_manufact_id IN (1, 2, 3, 4)"),
        BenchQuery::new("d_q82", "TPC-DS q82 (items sold in window)", NoAgg, false,
            "SELECT i.i_itemkey, i.i_category FROM item i, web_sales ws, date_dim d \
             WHERE i.i_itemkey = ws.ws_itemkey AND ws.ws_datekey = d.d_datekey \
             AND d.d_date BETWEEN DATE '2000-05-01' AND DATE '2000-07-01' \
             AND i.i_price BETWEEN 20 AND 35"),
        BenchQuery::new("d_q84", "TPC-DS q84 (customer demographics lookup)", NoAgg, false,
            "SELECT c.c_name, cd.cd_education FROM customer_dim c, customer_address ca, \
             customer_demographics cd \
             WHERE c.c_addrkey = ca.ca_addrkey AND c.c_demokey = cd.cd_demokey \
             AND ca.ca_state = 'CA' AND cd.cd_gender = 'F'"),
        // ---- local aggregation (paper: q7, q12, q15, q50, q98, q56, q3) ----
        BenchQuery::new("d_q7", "TPC-DS q7 (average sales per item)", Local, false,
            "SELECT i.i_itemkey, AVG(ss.ss_quantity) AS agg1, AVG(ss.ss_price) AS agg2 \
             FROM store_sales ss, customer_demographics cd, customer_dim c, date_dim d, item i \
             WHERE ss.ss_datekey = d.d_datekey AND ss.ss_itemkey = i.i_itemkey \
             AND ss.ss_custkey = c.c_custkey AND c.c_demokey = cd.cd_demokey \
             AND cd.cd_gender = 'F' AND cd.cd_marital = 'S' AND d.d_year = 2000 \
             GROUP BY i.i_itemkey"),
        BenchQuery::new("d_q12", "TPC-DS q12 (web revenue by item)", Local, false,
            "SELECT i.i_itemkey, SUM(ws.ws_price) AS itemrevenue FROM web_sales ws, item i, date_dim d \
             WHERE ws.ws_itemkey = i.i_itemkey AND i.i_category IN ('Books', 'Home', 'Sports') \
             AND ws.ws_datekey = d.d_datekey \
             AND d.d_date BETWEEN DATE '1999-02-22' AND DATE '1999-03-24' \
             GROUP BY i.i_itemkey"),
        BenchQuery::new("d_q15", "TPC-DS q15 (catalog sales by state)", Local, false,
            "SELECT ca.ca_state, SUM(cs.cs_price) AS total FROM catalog_sales cs, customer_dim c, \
             customer_address ca, date_dim d \
             WHERE cs.cs_custkey = c.c_custkey AND c.c_addrkey = ca.ca_addrkey \
             AND cs.cs_datekey = d.d_datekey AND d.d_qoy = 1 AND d.d_year = 2000 \
             GROUP BY ca.ca_state"),
        BenchQuery::new("d_q50", "TPC-DS q50 (store sales by store state)", Local, false,
            "SELECT st.st_state, COUNT(*) AS cnt, SUM(ss.ss_profit) AS profit \
             FROM store_sales ss, store st, date_dim d \
             WHERE ss.ss_storekey = st.st_storekey AND ss.ss_datekey = d.d_datekey \
             AND d.d_year = 2001 GROUP BY st.st_state"),
        BenchQuery::new("d_q98", "TPC-DS q98 (revenue by item class)", Local, false,
            "SELECT i.i_class, SUM(ss.ss_price) AS revenue FROM store_sales ss, item i, date_dim d \
             WHERE ss.ss_itemkey = i.i_itemkey AND ss.ss_datekey = d.d_datekey \
             AND i.i_category = 'Music' AND d.d_date BETWEEN DATE '1999-01-01' AND DATE '1999-03-01' \
             GROUP BY i.i_class"),
        BenchQuery::new("d_q56", "TPC-DS q56 (item revenue by color block)", Local, false,
            "SELECT i.i_itemkey, SUM(ss.ss_price) AS total_sales \
             FROM store_sales ss, item i, date_dim d, customer_dim c, customer_address ca \
             WHERE ss.ss_itemkey = i.i_itemkey AND ss.ss_datekey = d.d_datekey \
             AND ss.ss_custkey = c.c_custkey AND c.c_addrkey = ca.ca_addrkey \
             AND i.i_color IN ('red', 'rosy') AND d.d_year = 1999 AND d.d_moy = 2 \
             AND ca.ca_gmt = -5 GROUP BY i.i_itemkey"),
        BenchQuery::new("d_q3", "TPC-DS q3 (brand revenue by year)", Local, true,
            "SELECT i.i_brand, SUM(ss.ss_price) AS sum_agg FROM store_sales ss, item i, date_dim d \
             WHERE ss.ss_itemkey = i.i_itemkey AND ss.ss_datekey = d.d_datekey \
             AND i.i_manufact_id = 1 AND d.d_moy = 12 \
             AND ss.ss_price > (SELECT AVG(ss2.ss_price) FROM store_sales ss2 \
                                WHERE ss2.ss_itemkey = i.i_itemkey) \
             GROUP BY i.i_brand"),
        // ---- global aggregation (paper: q22, q45, q69, q79, q88, q27) ------
        BenchQuery::new("d_q22", "TPC-DS q22 (inventory-style rollup)", Global, false,
            "SELECT i.i_category, i.i_class, AVG(cs.cs_quantity) AS qoh \
             FROM catalog_sales cs, item i, date_dim d \
             WHERE cs.cs_itemkey = i.i_itemkey AND cs.cs_datekey = d.d_datekey \
             AND d.d_year = 2000 GROUP BY i.i_category, i.i_class"),
        BenchQuery::new("d_q45", "TPC-DS q45 (web sales by geography)", Global, false,
            "SELECT ca.ca_state, ca.ca_gmt, SUM(ws.ws_price) AS total \
             FROM web_sales ws, customer_dim c, customer_address ca, date_dim d \
             WHERE ws.ws_custkey = c.c_custkey AND c.c_addrkey = ca.ca_addrkey \
             AND ws.ws_datekey = d.d_datekey AND d.d_qoy = 2 AND d.d_year = 2000 \
             GROUP BY ca.ca_state, ca.ca_gmt"),
        BenchQuery::new("d_q69", "TPC-DS q69 (demographic profile)", Global, false,
            "SELECT cd.cd_gender, cd.cd_marital, cd.cd_education, COUNT(*) AS cnt \
             FROM customer_dim c, customer_address ca, customer_demographics cd, \
             store_sales ss, date_dim d \
             WHERE c.c_addrkey = ca.ca_addrkey AND c.c_demokey = cd.cd_demokey \
             AND ss.ss_custkey = c.c_custkey AND ss.ss_datekey = d.d_datekey \
             AND ca.ca_state IN ('CA', 'NY', 'TX') AND d.d_year = 2001 \
             GROUP BY cd.cd_gender, cd.cd_marital, cd.cd_education"),
        BenchQuery::new("d_q79", "TPC-DS q79 (customer/store profit)", Global, false,
            "SELECT c.c_name, st.st_state, SUM(ss.ss_profit) AS profit \
             FROM store_sales ss, customer_dim c, store st, date_dim d \
             WHERE ss.ss_custkey = c.c_custkey AND ss.ss_storekey = st.st_storekey \
             AND ss.ss_datekey = d.d_datekey AND d.d_moy = 11 \
             GROUP BY c.c_name, st.st_state"),
        BenchQuery::new("d_q88", "TPC-DS q88 (time-bucket counts, CASE)", Global, false,
            "SELECT st.st_state, SUM(CASE WHEN ss.ss_quantity < 25 THEN 1 ELSE 0 END) AS small, \
             SUM(CASE WHEN ss.ss_quantity >= 25 THEN 1 ELSE 0 END) AS big \
             FROM store_sales ss, store st, date_dim d \
             WHERE ss.ss_storekey = st.st_storekey AND ss.ss_datekey = d.d_datekey \
             AND d.d_year = 1999 GROUP BY st.st_state, st.st_market"),
        BenchQuery::new("d_q27", "TPC-DS q27 (item average by state)", Global, false,
            "SELECT i.i_itemkey, st.st_state, AVG(ss.ss_quantity) AS agg1 \
             FROM store_sales ss, customer_demographics cd, customer_dim c, date_dim d, \
             store st, item i \
             WHERE ss.ss_datekey = d.d_datekey AND ss.ss_itemkey = i.i_itemkey \
             AND ss.ss_storekey = st.st_storekey AND ss.ss_custkey = c.c_custkey \
             AND c.c_demokey = cd.cd_demokey AND cd.cd_gender = 'M' AND d.d_year = 2000 \
             GROUP BY i.i_itemkey, st.st_state"),
        // ---- scalar aggregation (paper: q32, q94, q96, q93) -----------------
        BenchQuery::new("d_q32", "TPC-DS q32 (excess discount, correlated scalar)", Scalar, true,
            "SELECT SUM(cs.cs_price) AS excess FROM catalog_sales cs, item i, date_dim d \
             WHERE i.i_manufact_id = 2 AND i.i_itemkey = cs.cs_itemkey \
             AND d.d_date BETWEEN DATE '2000-01-27' AND DATE '2000-04-27' \
             AND d.d_datekey = cs.cs_datekey \
             AND cs.cs_price > (SELECT AVG(cs2.cs_price) FROM catalog_sales cs2 \
                                WHERE cs2.cs_itemkey = i.i_itemkey)"),
        BenchQuery::new("d_q94", "TPC-DS q94 (cross-channel shoppers, EXISTS)", Scalar, true,
            "SELECT COUNT(*) AS cnt, SUM(ws.ws_price) AS total \
             FROM web_sales ws, customer_dim c, date_dim d \
             WHERE ws.ws_custkey = c.c_custkey AND ws.ws_datekey = d.d_datekey \
             AND d.d_year = 1999 \
             AND EXISTS (SELECT cs.cs_custkey FROM catalog_sales cs \
                         WHERE cs.cs_custkey = c.c_custkey AND cs.cs_quantity > 10)"),
        BenchQuery::new("d_q96", "TPC-DS q96 (store traffic count)", Scalar, false,
            "SELECT COUNT(*) AS cnt FROM store_sales ss, store st, date_dim d \
             WHERE ss.ss_storekey = st.st_storekey AND ss.ss_datekey = d.d_datekey \
             AND st.st_market BETWEEN 3 AND 7 AND d.d_moy = 6"),
        BenchQuery::new("d_q93", "TPC-DS q93 (profit after filter)", Scalar, false,
            "SELECT SUM(ss.ss_profit) AS total_profit FROM store_sales ss, item i \
             WHERE ss.ss_itemkey = i.i_itemkey AND i.i_category = 'Electronics' \
             AND ss.ss_quantity BETWEEN 10 AND 60"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_scale_sublinearly() {
        let small = generate(0.04, 3);
        let large = generate(0.16, 3);
        let f = |db: &Database, n: &str| db.get(n).unwrap().len() as f64;
        // Facts scale ~4x, dims ~2x.
        let fact_ratio = f(&large, "store_sales") / f(&small, "store_sales");
        let dim_ratio = f(&large, "item") / f(&small, "item");
        assert!(fact_ratio > 3.0, "fact ratio {fact_ratio}");
        assert!(dim_ratio < 2.6, "dim ratio {dim_ratio}");
    }

    #[test]
    fn facts_contain_nulls() {
        let db = generate(0.05, 5);
        let ss = db.get("store_sales").unwrap();
        let ik = ss.schema.column_index("ss_itemkey").unwrap();
        assert!(ss.tuples.iter().any(|t| t.get(ik).is_null()), "no NULL fact keys generated");
    }

    #[test]
    fn all_queries_parse_and_analyze() {
        let schemas = schemas();
        for q in queries() {
            let stmt = vcsql_query::parse(q.sql)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", q.id));
            let analyzed = vcsql_query::analyze::analyze(&stmt, &schemas)
                .unwrap_or_else(|e| panic!("{} does not analyze: {e}", q.id));
            assert_eq!(analyzed.agg_class, q.class, "{} classified differently", q.id);
        }
    }

    #[test]
    fn class_mix_matches_paper_story() {
        let qs = queries();
        let count = |c: AggClass| qs.iter().filter(|q| q.class == c).count();
        assert_eq!(count(AggClass::NoAgg), 3);
        assert!(count(AggClass::Local) >= 6);
        assert!(count(AggClass::Global) >= 5);
        assert!(count(AggClass::Scalar) >= 4);
        assert!(qs.iter().filter(|q| q.correlated).count() >= 3);
    }
}
