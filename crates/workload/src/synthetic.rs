//! Synthetic binary-relation instances for the algorithmic experiments:
//! two-way join cost-model checks (Section 4.1.2) and cycle queries
//! (Sections 6.1–6.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vcsql_relation::schema::{Column, Schema};
use vcsql_relation::{DataType, Database, Relation, Tuple, Value};

/// A binary relation `name(c0, c1)` with `rows` tuples over value domains of
/// the given sizes (uniform).
pub fn binary_relation(
    name: &str,
    rows: usize,
    domain0: i64,
    domain1: i64,
    rng: &mut StdRng,
) -> Relation {
    let schema =
        Schema::new(name, vec![Column::new("c0", DataType::Int), Column::new("c1", DataType::Int)]);
    let mut rel = Relation::empty(schema);
    for _ in 0..rows {
        rel.push(Tuple::new(vec![
            Value::Int(rng.gen_range(0..domain0)),
            Value::Int(rng.gen_range(0..domain1)),
        ]))
        .unwrap();
    }
    rel
}

/// Two relations `r(a, b)`, `s(b, c)` for two-way join experiments.
/// `selectivity` controls the shared `b` domain: small domains make dense
/// joins (OUT >> IN), large domains make selective joins (OUT << IN).
pub fn two_way_db(rows: usize, b_domain: i64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut r = binary_relation("r", rows, rows as i64 * 4, b_domain, &mut rng);
    r.schema.name = "r".into();
    let mut r2 = Relation::empty(Schema::new(
        "r",
        vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)],
    ));
    r2.tuples = r.tuples;
    db.add(r2);
    let s = binary_relation("s_", rows, b_domain, rows as i64 * 4, &mut rng);
    let mut s2 = Relation::empty(Schema::new(
        "s",
        vec![Column::new("b", DataType::Int), Column::new("c", DataType::Int)],
    ));
    s2.tuples = s.tuples;
    db.add(s2);
    db
}

/// An `n`-cycle instance: relations `e0(x0, x1), e1(x1, x2), ..,
/// e{n-1}(x{n-1}, x0)` over a single node domain — the graph-style input of
/// the triangle/cycle experiments. `heavy_fraction` of the domain receives a
/// disproportionate share of tuples so the heavy/light split has real work.
pub fn cycle_db(n: usize, rows_per_relation: usize, domain: i64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for i in 0..n {
        let schema = Schema::new(
            format!("e{i}"),
            vec![Column::new("src", DataType::Int), Column::new("dst", DataType::Int)],
        );
        let mut rel = Relation::empty(schema);
        for _ in 0..rows_per_relation {
            // Skew: 30% of tuples touch the first 5% of the domain.
            let pick = |rng: &mut StdRng| {
                if rng.gen_bool(0.3) {
                    rng.gen_range(0..(domain / 20).max(1))
                } else {
                    rng.gen_range(0..domain)
                }
            };
            rel.push(Tuple::new(vec![Value::Int(pick(&mut rng)), Value::Int(pick(&mut rng))]))
                .unwrap();
        }
        db.add(rel);
    }
    db
}

/// The SQL text of the `n`-cycle query over [`cycle_db`] relations.
pub fn cycle_sql(n: usize) -> String {
    let mut from = Vec::new();
    let mut preds = Vec::new();
    for i in 0..n {
        from.push(format!("e{i}"));
        let j = (i + 1) % n;
        preds.push(format!("e{i}.dst = e{j}.src"));
    }
    format!("SELECT COUNT(*) AS cycles FROM {} WHERE {}", from.join(", "), preds.join(" AND "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_way_db_shapes() {
        let db = two_way_db(500, 50, 1);
        assert_eq!(db.get("r").unwrap().len(), 500);
        assert_eq!(db.get("s").unwrap().len(), 500);
        assert_eq!(db.get("r").unwrap().schema.column_names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn cycle_db_and_sql() {
        let db = cycle_db(3, 200, 100, 2);
        assert_eq!(db.len(), 3);
        let sql = cycle_sql(3);
        assert!(sql.contains("e2.dst = e0.src"));
        let stmt = vcsql_query::parse(&sql).unwrap();
        assert_eq!(stmt.from.len(), 3);
    }
}
