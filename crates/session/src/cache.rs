//! The bounded, SQL-keyed plan cache behind [`Session::prepare`].
//!
//! Plans depend only on the SQL text and the schemas, never on the data, so
//! a session over one TAG can cache them indefinitely; the cache is bounded
//! (least-recently-used eviction) so a session serving ad-hoc traffic cannot
//! grow without limit, and it keeps hit/miss statistics so operators can see
//! whether their workload actually reuses statements.
//!
//! [`Session::prepare`]: crate::Session::prepare

use std::collections::VecDeque;
use std::sync::Arc;
use vcsql_core::QueryPlan;
use vcsql_relation::{FxHashMap, RelError};

/// A bounded LRU cache of prepared [`QueryPlan`]s, keyed by SQL text.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    plans: FxHashMap<String, Arc<QueryPlan>>,
    /// Recency order: front = least recently used, back = most recent.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans. Panics on zero capacity (a
    /// session validates its configuration before building one).
    pub fn new(capacity: usize) -> PlanCache {
        assert!(capacity > 0, "plan cache needs capacity for at least one plan");
        PlanCache {
            capacity,
            plans: FxHashMap::default(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `sql`, building and inserting the plan on a miss. A hit
    /// refreshes the entry's recency; an insert beyond capacity evicts the
    /// least recently used plan. Planning errors are returned as-is and
    /// cache nothing.
    pub fn get_or_try_insert(
        &mut self,
        sql: &str,
        build: impl FnOnce() -> Result<QueryPlan, RelError>,
    ) -> Result<Arc<QueryPlan>, RelError> {
        if let Some(plan) = self.plans.get(sql) {
            self.hits += 1;
            let plan = Arc::clone(plan);
            self.touch(sql);
            return Ok(plan);
        }
        let plan = Arc::new(build()?);
        self.misses += 1;
        if self.plans.len() == self.capacity {
            if let Some(lru) = self.order.pop_front() {
                self.plans.remove(&lru);
            }
        }
        self.plans.insert(sql.to_string(), Arc::clone(&plan));
        self.order.push_back(sql.to_string());
        Ok(plan)
    }

    /// Move `sql` to the most-recently-used position.
    fn touch(&mut self, sql: &str) {
        if let Some(pos) = self.order.iter().position(|s| s == sql) {
            let s = self.order.remove(pos).expect("position just found");
            self.order.push_back(s);
        }
    }

    /// True iff `sql` is currently cached (does not affect recency/stats).
    pub fn contains(&self, sql: &str) -> bool {
        self.plans.contains_key(sql)
    }

    /// Cached plans right now.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to plan from scratch.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::{Column, Schema};
    use vcsql_relation::DataType;

    fn schemas() -> Vec<Schema> {
        vec![Schema::new(
            "r",
            vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)],
        )]
    }

    fn plan_for(cache: &mut PlanCache, sql: &str) -> Arc<QueryPlan> {
        let s = schemas();
        cache.get_or_try_insert(sql, || QueryPlan::prepare(sql, &s)).unwrap()
    }

    #[test]
    fn repeated_prepare_hits_distinct_sql_misses() {
        let mut cache = PlanCache::new(8);
        let q1 = "SELECT r.a FROM r";
        let q2 = "SELECT r.b FROM r";
        let first = plan_for(&mut cache, q1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let again = plan_for(&mut cache, q1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A hit returns the very same plan allocation.
        assert!(Arc::ptr_eq(&first, &again));
        plan_for(&mut cache, q2);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        let (a, b, c) = ("SELECT r.a FROM r", "SELECT r.b FROM r", "SELECT r.a, r.b FROM r");
        plan_for(&mut cache, a);
        plan_for(&mut cache, b);
        // Touch `a` so `b` becomes the LRU entry, then overflow with `c`.
        plan_for(&mut cache, a);
        plan_for(&mut cache, c);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(a), "recently used entry must survive");
        assert!(!cache.contains(b), "LRU entry must be evicted");
        assert!(cache.contains(c));
        // Re-preparing the evicted statement is a miss again.
        plan_for(&mut cache, b);
        assert_eq!(cache.misses(), 4);
        assert!(!cache.contains(a), "a became LRU after c and b were touched");
    }

    #[test]
    fn planning_errors_cache_nothing() {
        let mut cache = PlanCache::new(2);
        let s = schemas();
        let bad = "SELECT nope FROM nowhere";
        assert!(cache.get_or_try_insert(bad, || QueryPlan::prepare(bad, &s)).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        PlanCache::new(0);
    }
}
