//! The bounded, SQL-keyed plan cache behind [`Session::prepare`].
//!
//! Plans depend only on the SQL text and the schemas, never on the data, so
//! a session over one TAG can cache them indefinitely; the cache is bounded
//! (least-recently-used eviction) so a session serving ad-hoc traffic cannot
//! grow without limit, and it keeps hit/miss statistics so operators can see
//! whether their workload actually reuses statements.
//!
//! [`Session::prepare`]: crate::Session::prepare

use std::collections::VecDeque;
use std::sync::Arc;
use vcsql_core::QueryPlan;
use vcsql_relation::{FxHashMap, RelError};

/// A cached plan plus the generation stamp of its latest use.
#[derive(Debug)]
struct Entry {
    plan: Arc<QueryPlan>,
    /// Generation of this entry's most recent hit or insert; older stamps
    /// for the same SQL in `order` are stale.
    gen: u64,
}

/// A bounded LRU cache of prepared [`QueryPlan`]s, keyed by SQL text.
///
/// Recency is tracked with generation counters instead of a reordered
/// list: every hit appends a freshly-stamped `(generation, sql)` pair to
/// `order` and bumps the stamp in the map, leaving the old pair behind as
/// a stale tombstone. Hits are therefore O(1) amortized (the old
/// linked-order variant scanned and spliced the recency list — O(capacity)
/// per hit), and eviction pops from the front, skipping pairs whose stamp
/// no longer matches the map. `order` is compacted in place whenever the
/// tombstones outnumber live entries 4:1, which bounds it at
/// O(capacity) space amortized.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    plans: FxHashMap<String, Entry>,
    /// Recency log: front = oldest stamp. Pairs whose generation differs
    /// from the map's entry are stale and skipped at eviction.
    order: VecDeque<(u64, String)>,
    /// Monotonic stamp source.
    clock: u64,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans. Panics on zero capacity (a
    /// session validates its configuration before building one).
    pub fn new(capacity: usize) -> PlanCache {
        assert!(capacity > 0, "plan cache needs capacity for at least one plan");
        PlanCache {
            capacity,
            plans: FxHashMap::default(),
            order: VecDeque::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `sql`, building and inserting the plan on a miss. A hit
    /// refreshes the entry's recency; an insert beyond capacity evicts the
    /// least recently used plan. Planning errors are returned as-is and
    /// cache nothing.
    pub fn get_or_try_insert(
        &mut self,
        sql: &str,
        build: impl FnOnce() -> Result<QueryPlan, RelError>,
    ) -> Result<Arc<QueryPlan>, RelError> {
        self.clock += 1;
        let gen = self.clock;
        if let Some(entry) = self.plans.get_mut(sql) {
            self.hits += 1;
            entry.gen = gen;
            let plan = Arc::clone(&entry.plan);
            self.order.push_back((gen, sql.to_string()));
            self.compact();
            return Ok(plan);
        }
        let plan = Arc::new(build()?);
        self.misses += 1;
        if self.plans.len() == self.capacity {
            self.evict_lru();
        }
        self.plans.insert(sql.to_string(), Entry { plan: Arc::clone(&plan), gen });
        self.order.push_back((gen, sql.to_string()));
        Ok(plan)
    }

    /// Look up `sql` alone: a hit refreshes recency and returns the plan, a
    /// miss counts and returns `None`. Together with [`PlanCache::insert`]
    /// this splits [`PlanCache::get_or_try_insert`] so a caller holding a
    /// shared lock (the `vcsql-server` sharded cache) can plan *outside*
    /// the critical section and insert the finished plan afterwards.
    pub fn get(&mut self, sql: &str) -> Option<Arc<QueryPlan>> {
        self.clock += 1;
        let gen = self.clock;
        let Some(entry) = self.plans.get_mut(sql) else {
            self.misses += 1;
            return None;
        };
        self.hits += 1;
        entry.gen = gen;
        let plan = Arc::clone(&entry.plan);
        self.order.push_back((gen, sql.to_string()));
        self.compact();
        Some(plan)
    }

    /// Insert a plan built elsewhere, evicting the LRU entry beyond
    /// capacity. If `sql` is already cached — two callers raced to build
    /// the same plan — the **first** insert wins and the cached plan is
    /// returned, so every caller agrees on one plan allocation. Does not
    /// touch the hit/miss counters (the preceding [`PlanCache::get`]
    /// already counted this lookup).
    pub fn insert(&mut self, sql: &str, plan: Arc<QueryPlan>) -> Arc<QueryPlan> {
        self.clock += 1;
        let gen = self.clock;
        if let Some(entry) = self.plans.get_mut(sql) {
            entry.gen = gen;
            let existing = Arc::clone(&entry.plan);
            self.order.push_back((gen, sql.to_string()));
            self.compact();
            return existing;
        }
        if self.plans.len() == self.capacity {
            self.evict_lru();
        }
        self.plans.insert(sql.to_string(), Entry { plan: Arc::clone(&plan), gen });
        self.order.push_back((gen, sql.to_string()));
        plan
    }

    /// Pop recency pairs from the front until one still matches its map
    /// entry's stamp; evict that plan. Each stale pair is popped exactly
    /// once over its lifetime, so the cost amortizes to O(1) per operation.
    fn evict_lru(&mut self) {
        while let Some((gen, sql)) = self.order.pop_front() {
            let live = self.plans.get(&sql).is_some_and(|e| e.gen == gen);
            if live {
                self.plans.remove(&sql);
                return;
            }
        }
        debug_assert!(self.plans.is_empty(), "entries must be reachable from the recency log");
    }

    /// Rebuild `order` without tombstones once they dominate. Amortized
    /// O(1): a compaction scanning `4 * capacity` pairs is paid for by the
    /// at least `3 * capacity` hits that created the tombstones.
    fn compact(&mut self) {
        if self.order.len() >= 4 * self.capacity.max(1) {
            let plans = &self.plans;
            self.order.retain(|(gen, sql)| plans.get(sql).is_some_and(|e| e.gen == *gen));
        }
    }

    /// True iff `sql` is currently cached (does not affect recency/stats).
    pub fn contains(&self, sql: &str) -> bool {
        self.plans.contains_key(sql)
    }

    /// Cached plans right now.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to plan from scratch.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::{Column, Schema};
    use vcsql_relation::DataType;

    fn schemas() -> Vec<Schema> {
        vec![Schema::new(
            "r",
            vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)],
        )]
    }

    fn plan_for(cache: &mut PlanCache, sql: &str) -> Arc<QueryPlan> {
        let s = schemas();
        cache.get_or_try_insert(sql, || QueryPlan::prepare(sql, &s)).unwrap()
    }

    #[test]
    fn repeated_prepare_hits_distinct_sql_misses() {
        let mut cache = PlanCache::new(8);
        let q1 = "SELECT r.a FROM r";
        let q2 = "SELECT r.b FROM r";
        let first = plan_for(&mut cache, q1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let again = plan_for(&mut cache, q1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A hit returns the very same plan allocation.
        assert!(Arc::ptr_eq(&first, &again));
        plan_for(&mut cache, q2);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        let (a, b, c) = ("SELECT r.a FROM r", "SELECT r.b FROM r", "SELECT r.a, r.b FROM r");
        plan_for(&mut cache, a);
        plan_for(&mut cache, b);
        // Touch `a` so `b` becomes the LRU entry, then overflow with `c`.
        plan_for(&mut cache, a);
        plan_for(&mut cache, c);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(a), "recently used entry must survive");
        assert!(!cache.contains(b), "LRU entry must be evicted");
        assert!(cache.contains(c));
        // Re-preparing the evicted statement is a miss again.
        plan_for(&mut cache, b);
        assert_eq!(cache.misses(), 4);
        assert!(!cache.contains(a), "a became LRU after c and b were touched");
    }

    #[test]
    fn hit_storms_keep_the_recency_log_bounded_and_lru_exact() {
        let mut cache = PlanCache::new(2);
        let (a, b, c) = ("SELECT r.a FROM r", "SELECT r.b FROM r", "SELECT r.a, r.b FROM r");
        plan_for(&mut cache, a);
        plan_for(&mut cache, b);
        // A hot statement hit thousands of times must not grow the recency
        // log past the compaction bound (the old implementation paid an
        // O(capacity) splice per hit instead).
        for _ in 0..1000 {
            plan_for(&mut cache, a);
        }
        assert_eq!(cache.hits(), 1000);
        assert!(
            cache.order.len() <= 4 * cache.capacity(),
            "stale recency pairs must be compacted, log holds {}",
            cache.order.len()
        );
        // Eviction still finds the true LRU after the storm.
        plan_for(&mut cache, c);
        assert!(cache.contains(a), "hot entry must survive");
        assert!(!cache.contains(b), "cold entry must be the one evicted");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn split_get_insert_matches_the_combined_path() {
        let mut cache = PlanCache::new(2);
        let s = schemas();
        let q = "SELECT r.a FROM r";
        assert!(cache.get(q).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let built = Arc::new(QueryPlan::prepare(q, &s).unwrap());
        let stored = cache.insert(q, Arc::clone(&built));
        assert!(Arc::ptr_eq(&stored, &built));
        // Insert counts nothing; the next get is a hit on the same plan.
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let hit = cache.get(q).unwrap();
        assert!(Arc::ptr_eq(&hit, &built));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A racing second insert loses: first plan wins for everyone.
        let other = Arc::new(QueryPlan::prepare(q, &s).unwrap());
        let kept = cache.insert(q, other);
        assert!(Arc::ptr_eq(&kept, &built));
        // Inserts still evict by recency beyond capacity.
        let (b, c) = ("SELECT r.b FROM r", "SELECT r.a, r.b FROM r");
        cache.insert(b, Arc::new(QueryPlan::prepare(b, &s).unwrap()));
        cache.insert(c, Arc::new(QueryPlan::prepare(c, &s).unwrap()));
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains(q) || !cache.contains(b), "capacity bound holds");
    }

    #[test]
    fn planning_errors_cache_nothing() {
        let mut cache = PlanCache::new(2);
        let s = schemas();
        let bad = "SELECT nope FROM nowhere";
        assert!(cache.get_or_try_insert(bad, || QueryPlan::prepare(bad, &s)).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        PlanCache::new(0);
    }
}
