//! The [`Cluster`] builder: one value describing a simulated cluster, from
//! which sessions are opened.
//!
//! This subsumes the `vcsql-dist` free-function sprawl (`tag_partitioning` /
//! `tag_calibrate` / `tag_profiled` / `tag_distributed{,_with,_under}`) into
//! one fluent entry point:
//!
//! ```ignore
//! let cluster = Cluster::new(6).bandwidth(1e9).strategy(PartitionStrategy::Refined);
//! let mut session = cluster.session(&tag)?;                 // static-shape placement
//! let mut tuned = cluster.calibrated_session(&tag, &ws)?;   // calibrate → profile → serve
//! let (out, net) = tuned.run_sql(sql)?;
//! let runtime = cluster.modelled_runtime(compute_secs, &net)?;
//! ```

use crate::{NetStats, Session, SessionConfig};
use std::sync::Arc;
use vcsql_bsp::{EngineConfig, PartitionStrategy, TrafficProfile};
use vcsql_query::analyze::Analyzed;
use vcsql_relation::RelError;
use vcsql_tag::TagGraph;

type Result<T> = std::result::Result<T, RelError>;

/// A simulated cluster: machine count, modelled bandwidth, placement
/// strategy and session knobs. Build once, open any number of sessions.
#[derive(Debug, Clone)]
pub struct Cluster {
    machines: usize,
    bandwidth_bytes_per_sec: f64,
    config: SessionConfig,
}

impl Cluster {
    /// A cluster of `machines` simulated machines with the default session
    /// configuration (refined static placement, 1 GB/s modelled bandwidth,
    /// adaptation on).
    pub fn new(machines: usize) -> Cluster {
        Cluster {
            machines,
            bandwidth_bytes_per_sec: 1e9,
            config: SessionConfig { machines, ..SessionConfig::default() },
        }
    }

    /// Modelled network bandwidth for [`Cluster::modelled_runtime`].
    pub fn bandwidth(mut self, bytes_per_sec: f64) -> Cluster {
        self.bandwidth_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Initial placement strategy for sessions of this cluster.
    pub fn strategy(mut self, strategy: PartitionStrategy) -> Cluster {
        self.config.strategy = strategy;
        self
    }

    /// BSP engine tuning for sessions of this cluster.
    pub fn engine(mut self, engine: EngineConfig) -> Cluster {
        self.config.engine = engine;
        self
    }

    /// Plan-cache capacity for sessions of this cluster.
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Cluster {
        self.config.plan_cache_capacity = capacity;
        self
    }

    /// Online-repartitioning drift threshold (see
    /// [`SessionConfig::drift_threshold`]).
    pub fn drift_threshold(mut self, threshold: f64) -> Cluster {
        self.config.drift_threshold = threshold;
        self
    }

    /// Per-step migration budget (see [`SessionConfig::migration_budget`]).
    pub fn migration_budget(mut self, budget: usize) -> Cluster {
        self.config.migration_budget = budget;
        self
    }

    /// Balance slack for placement and migration.
    pub fn balance_slack(mut self, slack: f64) -> Cluster {
        self.config.balance_slack = slack;
        self
    }

    /// Disable online repartitioning: sessions keep their initial placement
    /// for their whole lifetime (drift is in `[0, 1]`, so a threshold of 2
    /// can never trip). What the one-shot `vcsql-dist` entry points did.
    pub fn static_placement(self) -> Cluster {
        self.drift_threshold(2.0)
    }

    /// Machine count.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// The session configuration sessions of this cluster are opened with.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Open a session over `tag` with this cluster's configuration.
    pub fn session(&self, tag: &Arc<TagGraph>) -> Result<Session> {
        Session::open(tag, self.config.clone())
    }

    /// Phase 1 of the workload-aware loop: observe `workload`'s per-edge-
    /// label traffic under the untuned hash baseline (every edge label of
    /// the TAG covered, explicit zeros for untraversed columns).
    pub fn calibrate(&self, tag: &TagGraph, workload: &[Analyzed]) -> Result<TrafficProfile> {
        vcsql_dist::tag_calibrate(tag, workload, self.machines, self.config.engine)
    }

    /// Calibrate on `calibrate_on`, then open a session whose initial
    /// placement is derived from the observed profile — the old
    /// `tag_calibrate` → `tag_profiled` loop as one call, except the session
    /// keeps observing and re-adapts online as the real mix drifts away
    /// from the calibration workload.
    pub fn calibrated_session(
        &self,
        tag: &Arc<TagGraph>,
        calibrate_on: &[Analyzed],
    ) -> Result<Session> {
        let profile = self.calibrate(tag, calibrate_on)?;
        let mut config = self.config.clone();
        config.strategy = PartitionStrategy::Workload(profile);
        Session::open(tag, config)
    }

    /// Modelled end-to-end runtime at this cluster's bandwidth: measured
    /// local compute plus network transfer (the paper's Fig 16 model).
    pub fn modelled_runtime(&self, compute_secs: f64, net: &NetStats) -> Result<f64> {
        vcsql_dist::modelled_runtime(compute_secs, net, self.bandwidth_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_query::{analyze::analyze, parse};
    use vcsql_workload::tpch;

    const JOIN_SQL: &str = "SELECT c.c_name FROM customer c, orders o, lineitem l \
                            WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey";

    #[test]
    fn builder_round_trips_configuration() {
        let c = Cluster::new(6)
            .bandwidth(5e8)
            .strategy(PartitionStrategy::CoLocate)
            .engine(EngineConfig::sequential())
            .plan_cache_capacity(3)
            .drift_threshold(0.5)
            .migration_budget(99)
            .balance_slack(0.3);
        assert_eq!(c.machines(), 6);
        assert_eq!(c.config().plan_cache_capacity, 3);
        assert_eq!(c.config().migration_budget, 99);
        assert_eq!(c.config().strategy, PartitionStrategy::CoLocate);
        assert!((c.config().drift_threshold - 0.5).abs() < 1e-12);
        assert!((c.config().balance_slack - 0.3).abs() < 1e-12);
        let net = NetStats { network_bytes: 5u64 * 100_000_000, ..Default::default() };
        assert!((c.modelled_runtime(1.0, &net).unwrap() - 2.0).abs() < 1e-9);
        assert!(c.bandwidth(0.0).modelled_runtime(1.0, &net).is_err());
        // Zero machines is an Err from every builder entry point — never a
        // panic, and calibrated_session matches session's failure mode.
        let tag = Arc::new(TagGraph::build(&tpch::generate(0.004, 1)));
        assert!(Cluster::new(0).session(&tag).is_err());
        assert!(Cluster::new(0).calibrated_session(&tag, &[]).is_err());
    }

    #[test]
    fn calibrated_session_subsumes_the_profiled_loop() {
        let db = tpch::generate(0.01, 42);
        let tag = Arc::new(TagGraph::build(&db));
        let a = analyze(&parse(JOIN_SQL).unwrap(), tag.schemas()).unwrap();
        let cluster = Cluster::new(6).engine(EngineConfig::sequential()).static_placement();
        let workload = std::slice::from_ref(&a);

        // The old two-phase free-function loop...
        let (profile, _, outputs) =
            vcsql_dist::tag_profiled(&tag, workload, workload, 6, EngineConfig::sequential())
                .unwrap();
        // ...and the Cluster form of the same thing.
        let mut session = cluster.calibrated_session(&tag, workload).unwrap();
        assert_eq!(session.placement_profile(), &profile);
        let (out, net) = session.run_sql(JOIN_SQL).unwrap();
        let (old_out, old_net) = &outputs[0];
        assert!(out.relation.same_bag_approx(&old_out.relation, 1e-9));
        assert_eq!(net.network_bytes, old_net.network_bytes);
        assert_eq!(net.rounds, old_net.rounds);
    }
}
