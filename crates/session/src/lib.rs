//! # vcsql-session — the long-lived, session-centric engine API
//!
//! The paper's scheme (Smagulova & Deutsch, SIGMOD 2021) encodes the
//! database *once* and runs many queries against it, and communication-
//! optimal parallel evaluation is fundamentally a multi-round, workload-
//! dependent problem (Beame–Koutris–Suciu). The one-shot entry points the
//! reproduction grew up with (`run_sql`, the `vcsql-dist` free functions)
//! model neither, so this crate owns the lifecycle:
//!
//! * [`Session::open`] — bind a [`TagGraph`] to a [`SessionConfig`] (machine
//!   count, engine, initial placement strategy, adaptation knobs);
//! * [`Session::prepare`] — parse → analyze → GYO → TAG plan once, behind a
//!   bounded SQL-keyed [`PlanCache`] with hit/miss statistics, yielding a
//!   reusable [`PreparedQuery`];
//! * [`Session::execute`] / [`Session::run_sql`] — run under the session's
//!   current placement, fold the run's per-edge-label traffic into a
//!   cross-query [`TrafficProfile`], and *adapt*: when the accumulated
//!   profile drifts (byte-weighted total-variation distance,
//!   [`TrafficProfile::byte_drift`]) past the configured threshold, the
//!   session derives a fresh `Workload` placement and migrates vertices
//!   toward it incrementally — at most [`SessionConfig::migration_budget`]
//!   vertices per execution, never above the balance cap — charging every
//!   migrated vertex's state to [`NetStats`] so adaptation cost is honest;
//! * [`PreparedQuery::with_placement_hint`] — per-query placement overrides
//!   for conflicts no single placement can serve (the q17-style
//!   part–lineitem clash: `lineitem` cannot co-partition with both `orders`
//!   and `part`). Hint precedence: query hint > session placement > initial
//!   strategy.
//!
//! [`Cluster`] is the builder that subsumes the old `vcsql-dist`
//! calibrate→profile→execute free functions:
//! `Cluster::new(machines).bandwidth(..).strategy(..).session(&tag)`.

mod cache;
mod cluster;

pub use cache::PlanCache;
pub use cluster::Cluster;
pub use vcsql_core::{ExecOutput, QueryPlan, TagJoinExecutor};
pub use vcsql_dist::NetStats;

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use vcsql_bsp::{
    balance_cap, migrate_step, EngineConfig, FaultInjector, PartitionStrategy, Partitioning,
    TrafficProfile, VertexId, WorkerPool, DEFAULT_BALANCE_SLACK,
};
use vcsql_relation::{RelError, Value};
use vcsql_tag::TagGraph;

type Result<T> = std::result::Result<T, RelError>;

/// Configuration of a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Simulated machines. `1` runs purely locally (no partitioning, no
    /// network accounting, no adaptation).
    pub machines: usize,
    /// BSP engine tuning.
    pub engine: EngineConfig,
    /// Initial placement strategy (ignored when `machines == 1`). A
    /// [`PartitionStrategy::Workload`] strategy also seeds the session's
    /// traffic knowledge with its calibration profile.
    pub strategy: PartitionStrategy,
    /// Plan-cache capacity (must be at least 1).
    pub plan_cache_capacity: usize,
    /// Online-repartitioning trigger: adapt when the accumulated traffic
    /// profile's byte-weighted drift from the placement's profile exceeds
    /// this. Drift lives in `[0, 1]`, so any threshold above `1.0` disables
    /// adaptation (static placement).
    pub drift_threshold: f64,
    /// Most vertices migrated per execution step while walking toward an
    /// adaptation target (must be at least 1).
    pub migration_budget: usize,
    /// Relative headroom over the ideal per-machine load that placement and
    /// migration may use (the partitioning subsystem's 20% cap by default).
    pub balance_slack: f64,
    /// Exponential forgetting of the accumulated traffic profile, expressed
    /// as a half-life in executions: before each execution's traffic is
    /// folded in, every accumulated counter is scaled by `0.5^(1/h)`, so
    /// traffic from `h` executions ago carries half the weight of fresh
    /// traffic. Drift is share-based (scale-free), so decay changes *which
    /// mix* the session adapts to — recent queries dominate — not how
    /// eagerly it adapts. `None` keeps the original grow-forever profile.
    pub profile_half_life: Option<f64>,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            machines: 1,
            engine: EngineConfig::default(),
            strategy: PartitionStrategy::Refined,
            plan_cache_capacity: 128,
            drift_threshold: 0.25,
            migration_budget: 2048,
            balance_slack: DEFAULT_BALANCE_SLACK,
            profile_half_life: None,
        }
    }
}

/// Counters a session accumulates over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Executions served (prepared or ad-hoc).
    pub queries: u64,
    /// Adaptation targets derived (drift threshold crossings).
    pub adaptations: u64,
    /// Migration steps that moved at least one vertex.
    pub migration_steps: u64,
    /// Vertices migrated across all adaptation steps.
    pub migrated_vertices: u64,
    /// Bytes of migrated vertex state (also itemized per query in the
    /// returned [`NetStats`]).
    pub migration_bytes: u64,
    /// Cumulative network traffic over every execution, migrations included.
    pub net: NetStats,
}

/// A prepared statement: a cached, reusable plan plus optional per-query
/// placement hints.
#[derive(Debug)]
pub struct PreparedQuery {
    sql: String,
    plan: Arc<QueryPlan>,
    hint: Option<TrafficProfile>,
    /// Placement derived from the hint, built lazily on first execution and
    /// reused while the executing session's machine count matches the
    /// cached one (a prepared statement may outlive one session and be
    /// executed on another — over the same TAG, since plans are
    /// schema-bound — with a different cluster size).
    hint_partitioning: RefCell<Option<(usize, Arc<Partitioning>)>>,
}

impl PreparedQuery {
    /// The SQL text this statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The underlying plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Attach a per-query placement hint: executions of this statement run
    /// under a dedicated `Workload(profile)` placement instead of the
    /// session's, taking precedence over session adaptation (which neither
    /// sees hinted placements nor migrates because of them). This serves
    /// q17-style conflicts where no single placement can win: a profile of
    /// the query's own traffic keeps `lineitem` with `part` for this
    /// statement while the session placement keeps it with `orders`.
    pub fn with_placement_hint(mut self, profile: TrafficProfile) -> PreparedQuery {
        self.hint = Some(profile);
        self.hint_partitioning = RefCell::new(None);
        self
    }

    /// The placement hint, if any.
    pub fn placement_hint(&self) -> Option<&TrafficProfile> {
        self.hint.as_ref()
    }
}

/// An in-flight adaptation: the target placement and the profile snapshot it
/// was derived from (adopted as the placement's profile once the walk
/// completes).
#[derive(Debug)]
struct PendingMigration {
    target: Partitioning,
    profile: TrafficProfile,
}

/// A long-lived query session over one TAG graph: prepared statements, a
/// plan cache, one placement shared across queries, and online
/// repartitioning as the observed workload drifts. The graph is held by
/// [`Arc`], so any number of sessions (and a `vcsql-server` serving them)
/// can share one TAG without lifetime coupling.
pub struct Session {
    tag: Arc<TagGraph>,
    config: SessionConfig,
    cache: PlanCache,
    /// Current placement (`None` when `machines == 1`), shared with the
    /// executor per run instead of copied.
    partitioning: Option<Arc<Partitioning>>,
    /// Persistent worker runtime shared across every execution this session
    /// performs (`None` for single-threaded engine configs). Workers park
    /// between queries, so prepared-query re-execution pays no thread churn.
    workers: Option<Arc<WorkerPool>>,
    /// The profile the current placement was derived from (empty for the
    /// static strategies — any observed traffic then drifts maximally and
    /// self-tunes the session on first use).
    placement_profile: TrafficProfile,
    /// Cross-query observed traffic, seeded with the placement profile.
    accumulated: TrafficProfile,
    pending: Option<PendingMigration>,
    /// Deterministic fault injection shared by every execution this session
    /// runs (`None` = fault-free). Fired-once semantics span queries.
    faults: Option<Arc<FaultInjector>>,
    stats: SessionStats,
}

impl Session {
    /// Open a session over `tag` (the handle is cloned; the graph itself is
    /// shared). Validates the configuration: at least one machine, a
    /// non-empty plan cache, a positive migration budget, a positive finite
    /// drift threshold, non-negative balance slack and a positive finite
    /// profile half-life when one is set.
    pub fn open(tag: &Arc<TagGraph>, config: SessionConfig) -> Result<Session> {
        if config.machines == 0 {
            return Err(RelError::Other("session needs at least one machine".into()));
        }
        if config.machines > u16::MAX as usize {
            return Err(RelError::Other("session machine count exceeds u16".into()));
        }
        if config.plan_cache_capacity == 0 {
            return Err(RelError::Other("plan cache needs capacity for at least one plan".into()));
        }
        if config.migration_budget == 0 {
            return Err(RelError::Other(
                "migration budget must allow at least one vertex per step".into(),
            ));
        }
        if !config.drift_threshold.is_finite() || config.drift_threshold <= 0.0 {
            return Err(RelError::Other(format!(
                "drift threshold must be positive and finite, got {}",
                config.drift_threshold
            )));
        }
        if !config.balance_slack.is_finite() || config.balance_slack < 0.0 {
            return Err(RelError::Other(format!(
                "balance slack must be non-negative, got {}",
                config.balance_slack
            )));
        }
        if let Some(h) = config.profile_half_life {
            if !h.is_finite() || h <= 0.0 {
                return Err(RelError::Other(format!(
                    "profile half-life must be positive and finite, got {h}"
                )));
            }
        }
        let partitioning = (config.machines > 1).then(|| {
            Arc::new(vcsql_dist::tag_partitioning(tag, config.machines, &config.strategy))
        });
        let placement_profile = match &config.strategy {
            PartitionStrategy::Workload(p) => p.clone(),
            _ => TrafficProfile::new(),
        };
        let cache = PlanCache::new(config.plan_cache_capacity);
        // One persistent worker pool for the session's whole life: its OS
        // threads spawn on the first superstep that actually fans out, and
        // every query executed through this session reuses them.
        let workers =
            (config.engine.threads > 1).then(|| Arc::new(WorkerPool::new(config.engine.threads)));
        Ok(Session {
            tag: Arc::clone(tag),
            accumulated: placement_profile.clone(),
            placement_profile,
            partitioning,
            workers,
            pending: None,
            faults: None,
            stats: SessionStats::default(),
            cache,
            config,
        })
    }

    /// The session's persistent worker pool (`None` when the engine config
    /// is single-threaded). Exposed for diagnostics and tests.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.workers.as_ref()
    }

    /// Prepare a statement: parse → analyze → GYO → TAG plan, served from
    /// the plan cache when this SQL was prepared before.
    pub fn prepare(&mut self, sql: &str) -> Result<PreparedQuery> {
        let schemas = self.tag.schemas();
        let plan = self.cache.get_or_try_insert(sql, || QueryPlan::prepare(sql, schemas))?;
        Ok(PreparedQuery {
            sql: sql.to_string(),
            plan,
            hint: None,
            hint_partitioning: RefCell::new(None),
        })
    }

    /// Execute a prepared statement under the session's placement (or the
    /// statement's hint placement), returning the execution output and the
    /// network share of its traffic — including, itemized, the bytes of any
    /// vertex migration this execution's adaptation step performed and of
    /// any checkpoint/recovery traffic fault injection caused.
    ///
    /// Failure contract: an execution that errors *or panics* mid-flight
    /// leaves the session unchanged — no query counted, no traffic folded
    /// into the accumulated profile, no adaptation step taken — the same
    /// contract as [`Session::load_profile`]'s error paths. Every session
    /// mutation below happens after the fallible execution returns `Ok`.
    pub fn execute(&mut self, prepared: &PreparedQuery) -> Result<(ExecOutput, NetStats)> {
        let mut exec = TagJoinExecutor::new(&self.tag, self.config.engine);
        if let Some(p) = self.placement_for(prepared) {
            exec = exec.with_partitioning_shared(p);
        }
        if let Some(pool) = &self.workers {
            exec = exec.with_worker_pool(Arc::clone(pool));
        }
        if let Some(inj) = &self.faults {
            exec = exec.with_fault_injector(Arc::clone(inj));
        }
        // The executor borrows no session state mutably (graph and placement
        // are shared by Arc), so unwinding out of it cannot leave the
        // session torn — the catch only converts the panic into the same
        // unchanged-session error path an `Err` takes.
        let out = catch_unwind(AssertUnwindSafe(|| exec.execute_plan(prepared.plan()))).map_err(
            |payload| RelError::Other(format!("execution panicked: {}", panic_message(&*payload))),
        )??;
        let mut net = NetStats {
            network_messages: out.stats.totals.network_messages,
            network_bytes: out.stats.totals.network_bytes,
            rounds: out.stats.supersteps,
            ..Default::default()
        };
        // Charge fault-tolerance traffic: checkpoint writes go to stable
        // storage (itemized, outside the network totals); recovery re-ships
        // the crashed partition's checkpoint state over the wire (itemized
        // and counted in the totals, like migrations). The engine keeps
        // these out of its per-label `totals`, so nothing is double-billed.
        let ft = &out.stats.faults;
        net.record_checkpoint(ft.checkpoint_bytes);
        net.record_recovery(ft.recovered_vertices, ft.recovery_bytes, ft.recovered_rounds);
        if let Some(h) = self.config.profile_half_life {
            self.accumulated.decay(0.5f64.powf(1.0 / h));
        }
        self.accumulated.absorb(&TrafficProfile::from_run(&out.stats, self.tag.graph()));
        self.stats.queries += 1;
        // Hinted executions bypass adaptation entirely: their placement is
        // per-query, so neither the drift check nor a migration step runs.
        if prepared.hint.is_none() {
            self.adapt(&mut net);
        }
        self.stats.net.absorb(&net);
        Ok((out, net))
    }

    /// Prepare (through the cache) and execute in one call.
    pub fn run_sql(&mut self, sql: &str) -> Result<(ExecOutput, NetStats)> {
        let prepared = self.prepare(sql)?;
        self.execute(&prepared)
    }

    /// The placement this execution runs under: the statement's hint
    /// placement if any (rebuilt when the cached one was derived for a
    /// different machine count), else the session's current placement.
    fn placement_for(&self, prepared: &PreparedQuery) -> Option<Arc<Partitioning>> {
        if self.config.machines <= 1 {
            return None;
        }
        match &prepared.hint {
            Some(profile) => {
                let mut cached = prepared.hint_partitioning.borrow_mut();
                match cached.as_ref() {
                    Some((machines, p)) if *machines == self.config.machines => Some(Arc::clone(p)),
                    _ => {
                        let p = Arc::new(vcsql_dist::tag_partitioning(
                            &self.tag,
                            self.config.machines,
                            &PartitionStrategy::Workload(profile.clone()),
                        ));
                        *cached = Some((self.config.machines, Arc::clone(&p)));
                        Some(p)
                    }
                }
            }
            None => self.partitioning.clone(),
        }
    }

    /// The online-repartitioning step run after each unhinted execution:
    /// derive a target placement when drift crosses the threshold, then walk
    /// toward the pending target one bounded migration step at a time,
    /// charging migrated vertex state to `net`.
    fn adapt(&mut self, net: &mut NetStats) {
        if self.config.machines <= 1 {
            return;
        }
        if self.pending.is_none()
            && self.accumulated.byte_drift(&self.placement_profile) > self.config.drift_threshold
        {
            let profile = self.accumulated.clone();
            let target = vcsql_dist::tag_partitioning(
                &self.tag,
                self.config.machines,
                &PartitionStrategy::Workload(profile.clone()),
            );
            self.pending = Some(PendingMigration { target, profile });
            self.stats.adaptations += 1;
        }
        let Some(pending) = &self.pending else { return };
        let current = self.partitioning.as_deref().expect("machines > 1 implies a placement");
        let cap = balance_cap(
            self.tag.graph().vertex_count(),
            self.config.machines,
            self.config.balance_slack,
        );
        let step = migrate_step(current, &pending.target, self.config.migration_budget, cap);
        if !step.moves.is_empty() {
            let bytes: u64 =
                step.moves.iter().map(|m| vertex_state_bytes(&self.tag, m.vertex)).sum();
            net.record_migration(step.moves.len() as u64, bytes);
            self.stats.migration_steps += 1;
            self.stats.migrated_vertices += step.moves.len() as u64;
            self.stats.migration_bytes += bytes;
        }
        // Converged — or cap-blocked with no progress possible (loads no
        // longer change): adopt the target's profile either way.
        let done = step.remaining == 0 || step.moves.is_empty();
        self.partitioning = Some(Arc::new(step.partitioning));
        if done {
            let finished = self.pending.take().expect("pending checked above");
            self.placement_profile = finished.profile;
        }
    }

    /// Arm deterministic fault injection: every execution this session runs
    /// from now on shares `injector`, so its fired-once fault semantics span
    /// queries. Injected faults surface as ordinary [`RelError`]s from
    /// [`Session::execute`] (transient ones marked `transient fault:` for
    /// retry policies upstream) and, per the failure contract there, a
    /// failed execution leaves the session unchanged.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.faults = Some(injector);
    }

    /// The armed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Deterministically re-place a crashed machine's vertices: machine
    /// `m`'s vertices are reassigned, in vertex-id order, each to the
    /// currently least-loaded surviving machine (lowest machine id on
    /// ties), and any in-flight migration is dropped — its target was
    /// derived for loads that no longer exist. The machine count is
    /// unchanged (`m` simply ends up empty), so a replacement machine is
    /// refilled by later adaptation instead of by a special path. Returns
    /// the number of vertices evacuated. Errors — leaving the session
    /// unchanged — on a single-machine session or an out-of-range `m`.
    ///
    /// Determinism: the walk order (vertex id) and the tie-break (machine
    /// id) are both total orders independent of thread count or timing, so
    /// every session evacuating the same machine from the same placement
    /// lands on the identical new placement.
    pub fn evacuate_machine(&mut self, m: u16) -> Result<u64> {
        let Some(current) = self.partitioning.as_deref() else {
            return Err(RelError::Other(
                "evacuate_machine: a single-machine session has no surviving machine".into(),
            ));
        };
        let machines = current.machines();
        if m as usize >= machines {
            return Err(RelError::Other(format!(
                "evacuate_machine: machine {m} out of range for {machines} machines"
            )));
        }
        self.pending = None;
        let n = self.tag.graph().vertex_count();
        let mut assignment: Vec<u16> = (0..n).map(|v| current.machine_of(v as VertexId)).collect();
        let mut load = current.load();
        let mut moved = 0u64;
        for slot in assignment.iter_mut() {
            if *slot != m {
                continue;
            }
            let target = (0..machines as u16)
                .filter(|&t| t != m)
                .min_by_key(|&t| (load[t as usize], t))
                .expect("machines > 1 implies a surviving machine");
            *slot = target;
            load[m as usize] -= 1;
            load[target as usize] += 1;
            moved += 1;
        }
        self.partitioning = Some(Arc::new(Partitioning::from_assignment(assignment, machines)));
        Ok(moved)
    }

    /// The TAG graph this session serves.
    pub fn tag(&self) -> &TagGraph {
        &self.tag
    }

    /// The shared graph handle (clone to open further sessions over the
    /// same TAG).
    pub fn tag_handle(&self) -> &Arc<TagGraph> {
        &self.tag
    }

    /// Serialize the session's learned state — the accumulated
    /// [`TrafficProfile`] and, on a multi-machine session, the current
    /// [`Partitioning`] — to one text document, reusing the two existing
    /// line formats back to back. Feed the result to
    /// [`Session::load_profile`] on a fresh session over the same TAG to
    /// warm-start it: no re-calibration, no re-migration.
    pub fn save_profile(&self) -> String {
        let mut out = format!(
            "# vcsql session profile (machines={}, queries={})\n",
            self.config.machines, self.stats.queries
        );
        out.push_str(&self.accumulated.to_text());
        if let Some(p) = &self.partitioning {
            out.push_str(&p.to_text());
        }
        out
    }

    /// Restore state saved by [`Session::save_profile`]: the accumulated
    /// profile becomes both the session's observed traffic and its
    /// placement profile (a warm-started session is converged by
    /// construction), the saved placement replaces the current one, and any
    /// in-flight migration is dropped. Errors if the document is malformed
    /// or its placement was built for a different graph or machine count;
    /// the session is unchanged on error.
    pub fn load_profile(&mut self, text: &str) -> Result<()> {
        let err = |e: String| RelError::Other(format!("load_profile: {e}"));
        let (profile_text, placement_text) = match text.find("vcsql-partitioning v1") {
            Some(at) => (&text[..at], Some(&text[at..])),
            None => (text, None),
        };
        let profile = TrafficProfile::from_text(profile_text).map_err(err)?;
        let partitioning = match placement_text {
            Some(t) => {
                let p = Partitioning::from_text(t).map_err(err)?;
                if p.machines() != self.config.machines {
                    return Err(err(format!(
                        "placement saved for {} machines, session has {}",
                        p.machines(),
                        self.config.machines
                    )));
                }
                let vertices = self.tag.graph().vertex_count();
                if p.load().iter().sum::<usize>() != vertices {
                    return Err(err(format!(
                        "placement saved for a different graph (want {vertices} vertices)"
                    )));
                }
                Some(Arc::new(p))
            }
            None if self.config.machines > 1 => {
                return Err(err("no saved placement for a multi-machine session".into()))
            }
            None => None,
        };
        self.partitioning = partitioning;
        self.placement_profile = profile.clone();
        self.accumulated = profile;
        self.pending = None;
        Ok(())
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The current placement (`None` on a single machine). Mid-migration
    /// this is the in-between placement the next query will run under.
    pub fn partitioning(&self) -> Option<&Partitioning> {
        self.partitioning.as_deref()
    }

    /// The cross-query observed traffic profile (seeded with the initial
    /// strategy's calibration profile, if it had one).
    pub fn accumulated_profile(&self) -> &TrafficProfile {
        &self.accumulated
    }

    /// The profile the current placement was derived from.
    pub fn placement_profile(&self) -> &TrafficProfile {
        &self.placement_profile
    }

    /// True iff an adaptation is mid-walk (a target placement exists that
    /// the session has not fully migrated to yet).
    pub fn migration_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The plan cache (capacity, occupancy, hit/miss counters).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }
}

/// Best-effort text of a caught panic payload (`&str` and `String` cover
/// every `panic!` in this workspace). Public so `vcsql-server`'s failure
/// isolation renders the identical message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Wire size of one vertex's state, charged when the vertex migrates: the
/// same 8-byte-word-plus-aligned-strings model both engines charge for
/// messages (`Table::approx_bytes`, `unsafe_row_bytes`), plus one id word.
/// Public so `vcsql-server`'s arbitrated migration charges the identical
/// model.
pub fn vertex_state_bytes(tag: &TagGraph, v: VertexId) -> u64 {
    let value_words = |val: &Value| -> u64 {
        8 + match val {
            Value::Str(s) => (s.len() as u64).div_ceil(8) * 8,
            _ => 0,
        }
    };
    8 + match tag.tuple(v) {
        Some(t) => t.0.iter().map(value_words).sum::<u64>(),
        None => tag.attr_value(v).map(value_words).unwrap_or(8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_bsp::FaultPlan;
    use vcsql_workload::tpch;

    fn session(machines: usize) -> (Arc<TagGraph>, SessionConfig) {
        let db = tpch::generate(0.01, 42);
        let tag = Arc::new(TagGraph::build(&db));
        let config = SessionConfig {
            machines,
            engine: EngineConfig::sequential(),
            ..SessionConfig::default()
        };
        (tag, config)
    }

    const JOIN_SQL: &str = "SELECT c.c_name FROM customer c, orders o, lineitem l \
                            WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey";

    #[test]
    fn repeated_execution_reuses_session_workers() {
        let (tag, mut config) = session(1);
        // Threshold 0 forces the parallel phases so worker reuse is visible
        // even at this tiny scale.
        config.engine = EngineConfig::with_threads(3).with_parallel_threshold(0);
        let mut s = Session::open(&tag, config).unwrap();
        let prepared = s.prepare(JOIN_SQL).unwrap();
        let seq = TagJoinExecutor::new(&tag, EngineConfig::sequential()).run_sql(JOIN_SQL).unwrap();
        for round in 0..3 {
            let (out, _) = s.execute(&prepared).unwrap();
            assert!(out.relation.same_bag_approx(&seq.relation, 1e-9));
            let pool = s.worker_pool().expect("multi-thread session owns a pool");
            assert_eq!(pool.spawned_workers(), 2, "round {round}: workers spawn once");
            assert_eq!(pool.live_workers(), 2, "round {round}: workers parked between queries");
        }
    }

    #[test]
    fn sequential_session_owns_no_pool() {
        let (tag, config) = session(1);
        let mut s = Session::open(&tag, config).unwrap();
        assert!(s.worker_pool().is_none());
        let (out, _) = s.run_sql(JOIN_SQL).unwrap();
        assert!(!out.relation.is_empty());
    }

    #[test]
    fn open_validates_configuration() {
        let (tag, config) = session(1);
        assert!(Session::open(&tag, SessionConfig { machines: 0, ..config.clone() }).is_err());
        assert!(Session::open(&tag, SessionConfig { plan_cache_capacity: 0, ..config.clone() })
            .is_err());
        assert!(
            Session::open(&tag, SessionConfig { migration_budget: 0, ..config.clone() }).is_err()
        );
        assert!(
            Session::open(&tag, SessionConfig { drift_threshold: 0.0, ..config.clone() }).is_err()
        );
        assert!(Session::open(&tag, SessionConfig { drift_threshold: f64::NAN, ..config.clone() })
            .is_err());
        assert!(
            Session::open(&tag, SessionConfig { balance_slack: -0.1, ..config.clone() }).is_err()
        );
        assert!(Session::open(
            &tag,
            SessionConfig { profile_half_life: Some(0.0), ..config.clone() }
        )
        .is_err());
        assert!(Session::open(
            &tag,
            SessionConfig { profile_half_life: Some(f64::NAN), ..config.clone() }
        )
        .is_err());
        assert!(Session::open(&tag, config).is_ok());
    }

    #[test]
    fn profile_decay_forgets_old_traffic() {
        let (tag, mut config) = session(1);
        config.profile_half_life = Some(1.0);
        let mut s = Session::open(&tag, config).unwrap();
        let (_, _) = s.run_sql(JOIN_SQL).unwrap();
        let after_one = s.accumulated_profile().total_bytes();
        assert!(after_one > 0);
        // With a one-execution half-life the accumulated bytes converge to
        // roughly 2x one execution's traffic (geometric series), not 10x.
        for _ in 0..9 {
            s.run_sql(JOIN_SQL).unwrap();
        }
        let after_ten = s.accumulated_profile().total_bytes();
        assert!(
            after_ten < 3 * after_one,
            "decay must bound the accumulated profile: {after_ten} vs one-run {after_one}"
        );
        // Without decay the same ten runs accumulate linearly.
        let (tag2, config2) = session(1);
        let mut undecayed = Session::open(&tag2, config2).unwrap();
        for _ in 0..10 {
            undecayed.run_sql(JOIN_SQL).unwrap();
        }
        assert!(undecayed.accumulated_profile().total_bytes() >= 10 * after_one);
    }

    #[test]
    fn save_load_roundtrips_profile_and_placement() {
        let (tag, config) = session(4);
        let mut s = Session::open(&tag, config.clone()).unwrap();
        // Run until the self-tuning migration settles.
        for _ in 0..6 {
            s.run_sql(JOIN_SQL).unwrap();
        }
        let saved = s.save_profile();
        let placement = s.partitioning().unwrap().clone();
        let mut fresh = Session::open(&tag, config.clone()).unwrap();
        fresh.load_profile(&saved).unwrap();
        assert_eq!(fresh.accumulated_profile(), s.accumulated_profile());
        assert_eq!(fresh.placement_profile(), s.accumulated_profile());
        assert!(!fresh.migration_pending());
        let restored = fresh.partitioning().unwrap();
        for v in tag.graph().vertices() {
            assert_eq!(placement.machine_of(v), restored.machine_of(v));
        }
        // The warm session is converged: re-running the profiled workload
        // must not migrate.
        let (_, net) = fresh.run_sql(JOIN_SQL).unwrap();
        assert_eq!(net.migration_bytes, 0, "warm-started session re-migrated");

        // Mismatches are rejected and leave the session untouched.
        let mut two = Session::open(&tag, SessionConfig { machines: 2, ..config }).unwrap();
        assert!(two.load_profile(&saved).is_err(), "machine-count mismatch must fail");
        assert!(two.load_profile("garbage").is_err());
        let (tag_small, config_small) = {
            let db = tpch::generate(0.004, 7);
            (Arc::new(TagGraph::build(&db)), SessionConfig { machines: 4, ..Default::default() })
        };
        let mut other_graph = Session::open(&tag_small, config_small).unwrap();
        assert!(other_graph.load_profile(&saved).is_err(), "wrong graph must fail");
        // A single-machine session happily loads the profile part alone.
        let (tag1, config1) = session(1);
        let mut one = Session::open(&tag1, config1).unwrap();
        let solo_saved = {
            let (tag1b, config1b) = session(1);
            let mut solo = Session::open(&tag1b, config1b).unwrap();
            solo.run_sql(JOIN_SQL).unwrap();
            solo.save_profile()
        };
        one.load_profile(&solo_saved).unwrap();
        assert!(!one.accumulated_profile().is_empty());
    }

    #[test]
    fn prepared_execution_matches_one_shot_run_sql() {
        let (tag, config) = session(1);
        let mut s = Session::open(&tag, config.clone()).unwrap();
        let prepared = s.prepare(JOIN_SQL).unwrap();
        let (out, net) = s.execute(&prepared).unwrap();
        let oneshot =
            TagJoinExecutor::new(&tag, EngineConfig::sequential()).run_sql(JOIN_SQL).unwrap();
        assert!(out.relation.same_bag_approx(&oneshot.relation, 1e-9));
        assert_eq!(out.stats.total_messages(), oneshot.stats.total_messages());
        assert_eq!(net.network_bytes, 0, "single machine never uses the network");
        // Second execution reuses the cached plan.
        let again = s.prepare(JOIN_SQL).unwrap();
        assert_eq!(s.plan_cache().hits(), 1);
        let (out2, _) = s.execute(&again).unwrap();
        assert!(out2.relation.same_bag_approx(&oneshot.relation, 1e-9));
        assert_eq!(s.stats().queries, 2);
    }

    #[test]
    fn session_self_tunes_from_a_static_strategy() {
        let (tag, config) = session(6);
        let mut s = Session::open(&tag, config).unwrap();
        assert!(s.placement_profile().is_empty());
        let single =
            TagJoinExecutor::new(&tag, EngineConfig::sequential()).run_sql(JOIN_SQL).unwrap();
        let mut saw_migration = false;
        for _ in 0..4 {
            let (out, net) = s.run_sql(JOIN_SQL).unwrap();
            // Adaptation never changes results or total message counts.
            assert!(out.relation.same_bag_approx(&single.relation, 1e-9));
            assert_eq!(out.stats.total_messages(), single.stats.total_messages());
            saw_migration |= net.migration_bytes > 0;
            assert!(net.migration_bytes <= net.network_bytes);
        }
        // The empty placement profile drifts maximally against real traffic,
        // so the first executions must have started (and charged) an
        // adaptation.
        assert!(saw_migration, "self-tuning migration never happened");
        assert!(s.stats().adaptations >= 1);
        assert!(s.stats().migrated_vertices > 0);
        assert_eq!(s.stats().net.migration_bytes, s.stats().migration_bytes);
        // Once the placement profile matches the observed traffic, drift is
        // tiny and the session goes quiet: the same workload does not keep
        // migrating forever.
        let before = s.stats().migrated_vertices;
        let (_, net) = s.run_sql(JOIN_SQL).unwrap();
        assert_eq!(net.migration_bytes, 0, "steady workload must not thrash");
        assert_eq!(s.stats().migrated_vertices, before);
    }

    #[test]
    fn migration_budget_bounds_each_step() {
        let (tag, mut config) = session(4);
        config.migration_budget = 7;
        let mut s = Session::open(&tag, config).unwrap();
        for _ in 0..3 {
            let (_, net) = s.run_sql(JOIN_SQL).unwrap();
            assert!(
                net.migration_messages <= 7,
                "step migrated {} vertices over budget 7",
                net.migration_messages
            );
        }
        assert!(s.migration_pending(), "tiny budget cannot finish in three steps");
    }

    #[test]
    fn placement_hints_take_precedence_and_stay_per_query() {
        let (tag, config) = session(6);
        let mut s = Session::open(&tag, config).unwrap();
        // A hint profile that pulls lineitem toward part.
        let mut hint = TrafficProfile::new();
        hint.record(
            "lineitem.l_partkey",
            vcsql_bsp::LabelTraffic { messages: 1000, bytes: 100_000, ..Default::default() },
        );
        hint.record(
            "part.p_partkey",
            vcsql_bsp::LabelTraffic { messages: 1000, bytes: 100_000, ..Default::default() },
        );
        let q17 = "SELECT p.p_name FROM part p, lineitem l WHERE p.p_partkey = l.l_partkey";
        let unhinted = s.prepare(q17).unwrap();
        let hinted = s.prepare(q17).unwrap().with_placement_hint(hint);
        let session_placement = s.partitioning().unwrap().clone();
        let (out_h, net_h) = s.execute(&hinted).unwrap();
        // The hint did not touch the session's placement, and no migration
        // was charged to the hinted run.
        assert_eq!(net_h.migration_bytes, 0);
        let placement_after = s.partitioning().unwrap();
        for v in tag.graph().vertices() {
            assert_eq!(session_placement.machine_of(v), placement_after.machine_of(v));
        }
        let (out_u, _) = s.execute(&unhinted).unwrap();
        assert!(out_h.relation.same_bag_approx(&out_u.relation, 1e-9));
        assert_eq!(out_h.stats.total_messages(), out_u.stats.total_messages());
    }

    /// The failure contract: an execution aborted by an unrecoverable
    /// injected fault leaves every piece of session state — query count,
    /// accumulated profile, placement, pending migration — exactly as it
    /// was, and a retry (the fault fires once) succeeds normally.
    #[test]
    fn failed_execution_leaves_the_session_unchanged() {
        let (tag, config) = session(4);
        let mut s = Session::open(&tag, config).unwrap();
        let prepared = s.prepare(JOIN_SQL).unwrap();
        s.execute(&prepared).unwrap();
        let queries = s.stats().queries;
        let accumulated = s.accumulated_profile().clone();
        let net_before = s.stats().net;
        let pending_before = s.migration_pending();
        let placement: Vec<u16> =
            tag.graph().vertices().map(|v| s.partitioning().unwrap().machine_of(v)).collect();
        // Checkpointing disabled (interval 0): the crash is unrecoverable.
        s.set_fault_injector(Arc::new(FaultInjector::new(FaultPlan::new().crash(0, 1), 0)));
        let err = s.execute(&prepared).unwrap_err();
        assert!(format!("{err}").contains("fault"), "unexpected error: {err}");
        assert_eq!(s.stats().queries, queries, "failed run must not count as served");
        assert_eq!(s.accumulated_profile(), &accumulated, "partial traffic leaked into profile");
        assert_eq!(s.stats().net, net_before);
        assert_eq!(s.migration_pending(), pending_before);
        for (i, v) in tag.graph().vertices().enumerate() {
            assert_eq!(placement[i], s.partitioning().unwrap().machine_of(v));
        }
        // The fault fired once; the retry runs clean and is counted.
        let (out, _) = s.execute(&prepared).unwrap();
        assert!(!out.relation.is_empty());
        assert_eq!(s.stats().queries, queries + 1);
    }

    /// A panic inside execution is caught, surfaced as a per-query error,
    /// and honors the same unchanged-session contract as error returns.
    #[test]
    fn panicking_execution_is_isolated_and_leaves_the_session_unchanged() {
        let (tag, config) = session(2);
        let mut s = Session::open(&tag, config).unwrap();
        let prepared = s.prepare(JOIN_SQL).unwrap();
        s.set_fault_injector(Arc::new(FaultInjector::new(FaultPlan::new().compute_panic(1), 0)));
        let err = s.execute(&prepared).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("execution panicked"), "unexpected error: {msg}");
        assert!(msg.contains("injected compute fault"), "payload text lost: {msg}");
        assert_eq!(s.stats().queries, 0);
        assert!(s.accumulated_profile().is_empty(), "panicked run polluted the profile");
        assert!(!s.migration_pending());
        // The injector's panic fired once; the session stays usable.
        let (out, _) = s.execute(&prepared).unwrap();
        let oneshot =
            TagJoinExecutor::new(&tag, EngineConfig::sequential()).run_sql(JOIN_SQL).unwrap();
        assert!(out.relation.same_bag_approx(&oneshot.relation, 1e-9));
        assert_eq!(s.stats().queries, 1);
    }

    /// Checkpoint and recovery traffic reach the per-query `NetStats`
    /// itemized — checkpoints outside the network totals, recovery inside —
    /// and an injected crash changes neither results nor the fault-free
    /// network figure beyond the recovery re-ship.
    #[test]
    fn recovery_traffic_is_itemized_in_net_stats() {
        let (tag, config) = session(4);
        let mut free = Session::open(&tag, config.clone()).unwrap();
        let fp = free.prepare(JOIN_SQL).unwrap();
        let (free_out, free_net) = free.execute(&fp).unwrap();
        assert_eq!(free_net.checkpoint_bytes, 0, "fault-free run wrote checkpoints");
        assert_eq!(free_net.recovery_bytes, 0);
        assert_eq!(free_net.recovered_rounds, 0);

        let mut faulty = Session::open(&tag, config).unwrap();
        let prepared = faulty.prepare(JOIN_SQL).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().crash(1, 3), 2));
        faulty.set_fault_injector(Arc::clone(&inj));
        let (out, net) = faulty.execute(&prepared).unwrap();
        assert!(inj.any_fired(), "the planned crash never fired");
        assert!(out.relation.same_bag_approx(&free_out.relation, 1e-9));
        assert_eq!(out.stats.total_messages(), free_out.stats.total_messages());
        assert!(net.checkpoint_bytes > 0, "checkpointing session itemized no checkpoint bytes");
        assert!(net.recovery_bytes > 0, "recovered crash itemized no recovery bytes");
        assert!(net.recovery_bytes <= net.network_bytes);
        assert_eq!(
            net.network_bytes,
            free_net.network_bytes + net.recovery_bytes,
            "recovery must be the only network delta against the fault-free run"
        );
        assert_eq!(net.rounds, free_net.rounds, "replayed rounds were double-billed");
        assert_eq!(faulty.stats().net.recovery_bytes, net.recovery_bytes);
    }

    /// Evacuating a crashed machine re-places its vertices deterministically
    /// (vertex-id order, least-loaded survivor, lowest id on ties), drops
    /// any pending migration, preserves results, and rejects impossible
    /// requests without touching the session.
    #[test]
    fn evacuate_machine_is_deterministic_and_preserves_results() {
        let (tag, config) = session(4);
        let mut s = Session::open(&tag, config.clone()).unwrap();
        let prepared = s.prepare(JOIN_SQL).unwrap();
        let (before, _) = s.execute(&prepared).unwrap();
        let moved = s.evacuate_machine(2).unwrap();
        assert!(moved > 0, "machine 2 held no vertices");
        assert!(!s.migration_pending(), "stale migration target survived the evacuation");
        let placement = s.partitioning().unwrap();
        assert_eq!(placement.machines(), 4, "machine count must not change");
        assert_eq!(placement.load()[2], 0, "evacuated machine still owns vertices");
        let evacuated: Vec<u16> = tag.graph().vertices().map(|v| placement.machine_of(v)).collect();

        // A twin session following the same history lands on the identical
        // placement.
        let mut twin = Session::open(&tag, config.clone()).unwrap();
        let tp = twin.prepare(JOIN_SQL).unwrap();
        twin.execute(&tp).unwrap();
        assert_eq!(twin.evacuate_machine(2).unwrap(), moved);
        for (i, v) in tag.graph().vertices().enumerate() {
            assert_eq!(evacuated[i], twin.partitioning().unwrap().machine_of(v));
        }

        // Queries keep answering correctly under the evacuated placement.
        let (after, _) = s.execute(&prepared).unwrap();
        assert!(after.relation.same_bag_approx(&before.relation, 1e-9));
        assert_eq!(after.stats.total_messages(), before.stats.total_messages());

        // Impossible evacuations are rejected.
        assert!(s.evacuate_machine(9).is_err(), "out-of-range machine must fail");
        let (tag1, config1) = session(1);
        let mut one = Session::open(&tag1, config1).unwrap();
        assert!(one.evacuate_machine(0).is_err(), "single machine has no survivors");
    }

    /// A prepared statement's cached hint placement is keyed on the machine
    /// count: executing the same PreparedQuery on a session with a
    /// different cluster size rebuilds the placement instead of silently
    /// accounting against machines that don't exist.
    #[test]
    fn hint_placement_rebuilds_for_a_different_machine_count() {
        let (tag, config) = session(6);
        let mut hint = TrafficProfile::new();
        hint.record(
            "lineitem.l_partkey",
            vcsql_bsp::LabelTraffic { messages: 10, bytes: 1000, ..Default::default() },
        );
        let q = "SELECT p.p_name FROM part p, lineitem l WHERE p.p_partkey = l.l_partkey";
        let mut six = Session::open(&tag, config.clone()).unwrap();
        let hinted = six.prepare(q).unwrap().with_placement_hint(hint.clone());
        let (_, net6) = six.execute(&hinted).unwrap();

        // Same PreparedQuery value, executed on a 2-machine session: must
        // behave exactly like a hint prepared fresh on that session.
        let mut two = Session::open(&tag, SessionConfig { machines: 2, ..config }).unwrap();
        let (_, net_stale) = two.execute(&hinted).unwrap();
        let fresh = two.prepare(q).unwrap().with_placement_hint(hint);
        let (_, net_fresh) = two.execute(&fresh).unwrap();
        assert_eq!(
            net_stale.network_bytes, net_fresh.network_bytes,
            "stale 6-machine hint placement leaked into the 2-machine session"
        );
        assert_ne!(net6.network_bytes, 0, "6-machine hinted run should have used the network");
    }
}
