//! Join hypergraph, GYO ear-removal, and join-tree construction.
//!
//! A query's equi-join predicates induce *join variables* (equivalence
//! classes of table columns connected by `=`) and a hypergraph whose
//! hyperedges are the tables (each covering its join variables). GYO
//! reduction repeatedly removes "ears"; it empties the hypergraph iff the
//! query is acyclic, and the ear/witness pairs form the join tree the paper
//! builds its TAG plan from (Section 5.1).
//!
//! Cyclic queries: [`decompose`] breaks cycles by demoting join predicates to
//! residual filters until GYO succeeds (sound — the demoted equality is still
//! enforced when rows are assembled, exactly the "PK-FK cycle" treatment of
//! Section 6.1.1), and reports pure-cycle metadata so the dedicated
//! worst-case-optimal cycle executor can be used instead when applicable.

use crate::analyze::JoinPred;
use vcsql_relation::FxHashMap;

/// A join variable: an equivalence class of `(table, column)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinVar {
    pub id: usize,
    pub occurrences: Vec<(usize, usize)>,
}

impl JoinVar {
    /// The column of this variable in `table`, if any.
    pub fn column_in(&self, table: usize) -> Option<usize> {
        self.occurrences.iter().find(|&&(t, _)| t == table).map(|&(_, c)| c)
    }

    /// Tables containing this variable.
    pub fn tables(&self) -> impl Iterator<Item = usize> + '_ {
        let mut seen = Vec::new();
        self.occurrences.iter().filter_map(move |&(t, _)| {
            if seen.contains(&t) {
                None
            } else {
                seen.push(t);
                Some(t)
            }
        })
    }
}

/// A rooted join tree over table indices.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// Tables in this tree (a connected component of the join graph).
    pub tables: Vec<usize>,
    pub root: usize,
    /// Parent table of each member (None for the root). Indexed by table id.
    pub parent: FxHashMap<usize, Option<usize>>,
    /// Children in deterministic order.
    pub children: FxHashMap<usize, Vec<usize>>,
    /// Join variable linking each non-root table to its parent (canonical:
    /// the lowest-id shared variable).
    pub link_var: FxHashMap<usize, usize>,
    /// Additional variables shared with the parent beyond the canonical one
    /// (multi-attribute joins; enforced as residual equalities by executors
    /// that do not implement the Section 4.2 intersection protocol).
    pub extra_link_vars: FxHashMap<usize, Vec<usize>>,
}

impl JoinTree {
    /// Single-table tree.
    fn singleton(table: usize) -> JoinTree {
        let mut parent = FxHashMap::default();
        parent.insert(table, None);
        let mut children = FxHashMap::default();
        children.insert(table, Vec::new());
        JoinTree {
            tables: vec![table],
            root: table,
            parent,
            children,
            link_var: FxHashMap::default(),
            extra_link_vars: FxHashMap::default(),
        }
    }

    /// Re-root the tree at `new_root` (must be a member). Parent/child links
    /// along the path to the old root are reversed; link variables stay
    /// attached to the same tree *edges*.
    pub fn reroot(&mut self, new_root: usize) {
        assert!(self.tables.contains(&new_root), "reroot target not in tree");
        // Collect path new_root -> old root.
        let mut path = vec![new_root];
        while let Some(Some(p)) = self.parent.get(path.last().unwrap()) {
            path.push(*p);
        }
        // Collect the link info of every edge on the path *before* mutating:
        // each reversed edge re-attaches its variables to the other endpoint,
        // and doing removal and insertion interleaved would clobber links on
        // longer paths.
        let infos: Vec<(Option<usize>, Vec<usize>)> = path
            .windows(2)
            .map(|w| {
                (
                    self.link_var.remove(&w[0]),
                    self.extra_link_vars.remove(&w[0]).unwrap_or_default(),
                )
            })
            .collect();
        for (w, (var, extra)) in path.windows(2).zip(infos) {
            let (child, par) = (w[0], w[1]);
            // par loses child; child gains par as a child.
            self.children.get_mut(&par).unwrap().retain(|&c| c != child);
            self.children.get_mut(&child).unwrap().insert(0, par);
            if let Some(v) = var {
                self.link_var.insert(par, v);
            }
            if !extra.is_empty() {
                self.extra_link_vars.insert(par, extra);
            }
            self.parent.insert(par, Some(child));
        }
        self.parent.insert(new_root, None);
        self.root = new_root;
    }

    /// Tables in depth-first pre-order from the root.
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.tables.len());
        let mut stack = vec![self.root];
        while let Some(t) = stack.pop() {
            out.push(t);
            // Push children reversed so the first child is visited first.
            for &c in self.children[&t].iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

/// The result of join-graph decomposition.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// One join tree per connected component (singletons for unjoined
    /// tables). Components are combined with Cartesian products.
    pub components: Vec<JoinTree>,
    /// Join variables (indexed by `JoinVar::id`).
    pub vars: Vec<JoinVar>,
    /// `(table, column)` → variable id.
    pub var_of: FxHashMap<(usize, usize), usize>,
    /// Join predicates demoted to residual filters to break cycles.
    pub broken: Vec<JoinPred>,
    /// True iff the original join graph was cyclic.
    pub cyclic: bool,
    /// When the cyclic core was a pure cycle: the tables around it, in order.
    pub pure_cycle: Option<Vec<usize>>,
}

/// Union-find.
struct Uf(Vec<usize>);

impl Uf {
    fn new(n: usize) -> Uf {
        Uf((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let r = self.find(self.0[x]);
            self.0[x] = r;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Compute join variables from the predicates.
fn join_vars(
    n_tables: usize,
    joins: &[JoinPred],
) -> (Vec<JoinVar>, FxHashMap<(usize, usize), usize>) {
    // Index the (table, col) pairs that participate in joins.
    let mut pair_ids: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    let mut pairs = Vec::new();
    let id_of = |p: (usize, usize),
                 pairs: &mut Vec<(usize, usize)>,
                 map: &mut FxHashMap<(usize, usize), usize>| {
        *map.entry(p).or_insert_with(|| {
            pairs.push(p);
            pairs.len() - 1
        })
    };
    let mut edges = Vec::new();
    for j in joins {
        let a = id_of(j.left, &mut pairs, &mut pair_ids);
        let b = id_of(j.right, &mut pairs, &mut pair_ids);
        edges.push((a, b));
    }
    let mut uf = Uf::new(pairs.len());
    for (a, b) in edges {
        uf.union(a, b);
    }
    // Group pairs by root, deterministic order by first occurrence.
    let mut var_index: FxHashMap<usize, usize> = FxHashMap::default();
    let mut vars: Vec<JoinVar> = Vec::new();
    for (i, &p) in pairs.iter().enumerate() {
        let root = uf.find(i);
        let vid = *var_index.entry(root).or_insert_with(|| {
            vars.push(JoinVar { id: vars.len(), occurrences: Vec::new() });
            vars.len() - 1
        });
        vars[vid].occurrences.push(p);
    }
    let mut var_of = FxHashMap::default();
    for v in &vars {
        for &occ in &v.occurrences {
            var_of.insert(occ, v.id);
        }
    }
    let _ = n_tables;
    (vars, var_of)
}

/// Run GYO on one component; returns the join tree, or the residual
/// (non-ear-removable) tables on failure.
fn gyo_component(
    tables: &[usize],
    table_vars: &FxHashMap<usize, Vec<usize>>,
    vars: &[JoinVar],
) -> Result<JoinTree, Vec<usize>> {
    if tables.len() == 1 {
        return Ok(JoinTree::singleton(tables[0]));
    }
    let mut remaining: Vec<usize> = tables.to_vec();
    let mut parent: FxHashMap<usize, Option<usize>> = FxHashMap::default();
    let mut children: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    let mut link_var: FxHashMap<usize, usize> = FxHashMap::default();
    let mut extra_link_vars: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for &t in tables {
        children.insert(t, Vec::new());
    }

    // A variable is "live in others" for ear e if some other remaining table
    // contains it.
    while remaining.len() > 1 {
        let mut removed = None;
        'ears: for (i, &e) in remaining.iter().enumerate() {
            // Vars of e that occur in some other remaining table.
            let shared: Vec<usize> = table_vars[&e]
                .iter()
                .copied()
                .filter(|&v| vars[v].tables().any(|t| t != e && remaining.contains(&t)))
                .collect();
            if shared.is_empty() {
                // Disconnected within component cannot happen (components are
                // connected), but guard anyway: treat as ear of the first
                // other table with no link var.
                continue;
            }
            // A witness f contains all shared vars.
            for &f in remaining.iter() {
                if f == e {
                    continue;
                }
                if shared.iter().all(|v| table_vars[&f].contains(v)) {
                    // e is an ear with witness f.
                    parent.insert(e, Some(f));
                    children.get_mut(&f).unwrap().push(e);
                    let mut sh = shared.clone();
                    sh.sort_unstable();
                    link_var.insert(e, sh[0]);
                    if sh.len() > 1 {
                        extra_link_vars.insert(e, sh[1..].to_vec());
                    }
                    removed = Some(i);
                    break 'ears;
                }
            }
        }
        match removed {
            Some(i) => {
                remaining.remove(i);
            }
            None => return Err(remaining),
        }
    }
    let root = remaining[0];
    parent.insert(root, None);
    // Children were attached in removal order; reverse for a more natural
    // "first ear removed is deepest" ordering — keep removal order, it is
    // deterministic either way.
    Ok(JoinTree { tables: tables.to_vec(), root, parent, children, link_var, extra_link_vars })
}

/// Decompose a join graph over `n_tables` tables into join trees per
/// connected component, breaking cycles if necessary.
pub fn decompose(n_tables: usize, joins: &[JoinPred]) -> Decomposition {
    let mut active: Vec<JoinPred> = joins.to_vec();
    let mut broken = Vec::new();
    let mut cyclic = false;
    let mut pure_cycle = None;

    loop {
        let (vars, var_of) = join_vars(n_tables, &active);
        // Vars per table.
        let mut table_vars: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for t in 0..n_tables {
            table_vars.insert(t, Vec::new());
        }
        for v in &vars {
            for t in v.tables() {
                let tv = table_vars.get_mut(&t).unwrap();
                if !tv.contains(&v.id) {
                    tv.push(v.id);
                }
            }
        }
        // Connected components over shared vars.
        let mut comp_of: Vec<Option<usize>> = vec![None; n_tables];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for t in 0..n_tables {
            if comp_of[t].is_some() {
                continue;
            }
            let id = comps.len();
            let mut queue = vec![t];
            comp_of[t] = Some(id);
            let mut members = Vec::new();
            while let Some(x) = queue.pop() {
                members.push(x);
                for &v in &table_vars[&x] {
                    for u in vars[v].tables() {
                        if comp_of[u].is_none() {
                            comp_of[u] = Some(id);
                            queue.push(u);
                        }
                    }
                }
            }
            members.sort_unstable();
            comps.push(members);
        }

        let mut components = Vec::new();
        let mut failure: Option<Vec<usize>> = None;
        for comp in &comps {
            match gyo_component(comp, &table_vars, &vars) {
                Ok(tree) => components.push(tree),
                Err(residue) => {
                    failure = Some(residue);
                    break;
                }
            }
        }

        match failure {
            None => {
                return Decomposition { components, vars, var_of, broken, cyclic, pure_cycle };
            }
            Some(residue) => {
                cyclic = true;
                if pure_cycle.is_none() && is_pure_cycle(&residue, &table_vars, &vars) {
                    pure_cycle = Some(order_cycle(&residue, &table_vars, &vars));
                }
                // Break the cycle: demote one active join predicate whose
                // both sides lie in the residual core.
                let pick = active
                    .iter()
                    .position(|j| residue.contains(&j.left.0) && residue.contains(&j.right.0))
                    .expect("cyclic core must contain a join predicate");
                broken.push(active.remove(pick));
            }
        }
    }
}

/// True iff the residual hypergraph is a simple cycle: every table has
/// exactly two live vars, every var exactly two tables.
fn is_pure_cycle(
    residue: &[usize],
    table_vars: &FxHashMap<usize, Vec<usize>>,
    vars: &[JoinVar],
) -> bool {
    residue.iter().all(|t| {
        let live: Vec<usize> = table_vars[t]
            .iter()
            .copied()
            .filter(|&v| vars[v].tables().filter(|x| residue.contains(x)).count() == 2)
            .collect();
        live.len() == 2
    })
}

/// Order the tables of a pure cycle by walking neighbours.
fn order_cycle(
    residue: &[usize],
    table_vars: &FxHashMap<usize, Vec<usize>>,
    vars: &[JoinVar],
) -> Vec<usize> {
    let mut order = vec![residue[0]];
    let mut prev = None;
    while order.len() < residue.len() {
        let cur = *order.last().unwrap();
        let next = table_vars[&cur]
            .iter()
            .flat_map(|&v| vars[v].tables().collect::<Vec<_>>())
            .find(|&t| t != cur && Some(t) != prev && residue.contains(&t) && !order.contains(&t));
        match next {
            Some(n) => {
                prev = Some(cur);
                order.push(n);
            }
            None => break,
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jp(l: (usize, usize), r: (usize, usize)) -> JoinPred {
        JoinPred { left: l, right: r }
    }

    #[test]
    fn chain_is_acyclic() {
        // R(0) -x- S(1) -y- T(2)
        let d = decompose(3, &[jp((0, 0), (1, 0)), jp((1, 1), (2, 0))]);
        assert!(!d.cyclic);
        assert_eq!(d.components.len(), 1);
        let t = &d.components[0];
        assert_eq!(t.tables, vec![0, 1, 2]);
        // Every non-root has a link var.
        for &tb in &t.tables {
            if tb != t.root {
                assert!(t.link_var.contains_key(&tb), "missing link for {tb}");
            }
        }
    }

    #[test]
    fn star_schema_is_acyclic() {
        // fact(0) joined to dims 1,2,3 on distinct keys.
        let joins = [jp((0, 0), (1, 0)), jp((0, 1), (2, 0)), jp((0, 2), (3, 0))];
        let mut d = decompose(4, &joins);
        assert!(!d.cyclic);
        // GYO's root is whichever hyperedge survives last; re-root at the
        // fact table for the star shape.
        d.components[0].reroot(0);
        let t = &d.components[0];
        assert_eq!(t.children[&0].len(), 3);
        for dim in 1..4 {
            assert_eq!(t.parent[&dim], Some(0));
            assert!(t.link_var.contains_key(&dim));
        }
    }

    #[test]
    fn shared_variable_across_three_tables() {
        // S.b = T.b and S.b = V.b: one variable with 3 tables; acyclic.
        let joins = [jp((1, 1), (2, 0)), jp((1, 1), (3, 0)), jp((0, 0), (1, 0))];
        let d = decompose(4, &joins);
        assert!(!d.cyclic);
        assert_eq!(d.vars.len(), 2);
        let b_var = d.var_of[&(2, 0)];
        assert_eq!(d.vars[b_var].tables().count(), 3);
    }

    #[test]
    fn triangle_is_cyclic_and_detected_as_pure_cycle() {
        let joins = [jp((0, 1), (1, 0)), jp((1, 1), (2, 0)), jp((2, 1), (0, 0))];
        let d = decompose(3, &joins);
        assert!(d.cyclic);
        assert_eq!(d.broken.len(), 1);
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.components[0].tables.len(), 3);
        let cyc = d.pure_cycle.expect("pure cycle metadata");
        assert_eq!(cyc.len(), 3);
    }

    #[test]
    fn cartesian_product_components() {
        let d = decompose(3, &[jp((0, 0), (1, 0))]); // table 2 unjoined
        assert!(!d.cyclic);
        assert_eq!(d.components.len(), 2);
        assert!(d.components.iter().any(|c| c.tables == vec![2]));
    }

    #[test]
    fn multi_attribute_join_records_companions() {
        // R and S joined on two attributes.
        let joins = [jp((0, 0), (1, 0)), jp((0, 1), (1, 1))];
        let d = decompose(2, &joins);
        assert!(!d.cyclic, "two parallel edges are not a cycle for GYO");
        let t = &d.components[0];
        let child = *t.children[&t.root].first().unwrap();
        assert!(t.link_var.contains_key(&child));
        assert_eq!(t.extra_link_vars[&child].len(), 1);
    }

    #[test]
    fn reroot_preserves_edges() {
        let joins = [jp((0, 0), (1, 0)), jp((1, 1), (2, 0))];
        let mut d = decompose(3, &joins);
        let tree = &mut d.components[0];
        let old_root = tree.root;
        let target = *tree.tables.iter().find(|&&t| t != old_root).unwrap();
        tree.reroot(target);
        assert_eq!(tree.root, target);
        assert_eq!(tree.parent[&target], None);
        // Still a tree over the same tables: every non-root has a parent and
        // a link var.
        let mut non_roots = 0;
        for &t in &tree.tables {
            if t != tree.root {
                assert!(tree.parent[&t].is_some());
                assert!(tree.link_var.contains_key(&t), "no link for {t}");
                non_roots += 1;
            }
        }
        assert_eq!(non_roots, 2);
        // Preorder visits all tables.
        assert_eq!(tree.preorder().len(), 3);
    }

    #[test]
    fn five_way_cycle_breaks_into_acyclic_tree() {
        // TPC-H q5 shape: a 5-cycle.
        let joins = [
            jp((0, 1), (1, 0)),
            jp((1, 1), (2, 0)),
            jp((2, 1), (3, 0)),
            jp((3, 1), (4, 0)),
            jp((4, 1), (0, 0)),
        ];
        let d = decompose(5, &joins);
        assert!(d.cyclic);
        assert_eq!(d.broken.len(), 1);
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.pure_cycle.as_ref().unwrap().len(), 5);
    }
}
