//! # vcsql-query — SQL front-end and vertex-centric query planning
//!
//! The pipeline implemented here:
//!
//! 1. [`parse`] — a hand-rolled lexer + recursive-descent parser for the SQL
//!    subset used by the TPC-style workloads (SELECT/FROM with comma joins
//!    and explicit `[LEFT|RIGHT|FULL] JOIN ... ON`, WHERE with subqueries,
//!    GROUP BY, HAVING, CASE/LIKE/IN/BETWEEN, arithmetic, date functions).
//! 2. [`analyze::analyze`] — name resolution against a catalog, splitting the
//!    WHERE clause into per-table filters, equi-join predicates, cross-table
//!    residual filters and subquery predicates; classification of the
//!    aggregation style (none / local / global / scalar — the classes of
//!    paper Section 7 and Fig 15).
//! 3. [`gyo`] — join hypergraph + GYO ear-removal: acyclicity test and join
//!    tree construction; cyclic queries get a cycle-breaking fallback (the
//!    broken predicate is enforced as a residual filter) plus metadata for
//!    the dedicated cycle executor.
//! 4. [`tagplan`] — the paper's TAG plan (Section 5.1) built from the join
//!    tree, and `GenSteps` (Algorithm 1): the connected bottom-up traversal
//!    producing the edge-label list that drives the vertex program.

pub mod analyze;
pub mod ast;
pub mod gyo;
pub mod lexer;
pub mod parser;
pub mod tagplan;

pub use analyze::{
    analyze, AggClass, Analyzed, Correlation, JoinPred, OutputItem, SubqueryKind, SubqueryPred,
    TableBinding,
};
pub use ast::{HavingPred, JoinKind, QExpr, SelectItem, SelectStmt, TableRef};
pub use gyo::{decompose, Decomposition, JoinTree, JoinVar};
pub use parser::parse;
pub use tagplan::{PlanNode, Step, TagPlan};
