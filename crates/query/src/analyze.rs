//! Semantic analysis: name resolution and WHERE-clause decomposition.
//!
//! The analyzer turns a parsed [`SelectStmt`] into the normalized form both
//! executors (vertex-centric and relational baseline) consume:
//!
//! * **tables** — alias → relation bindings with their schemas and the
//!   conjunction of single-table filters (the predicates the paper pushes to
//!   attribute/tuple vertices during the reduction phase);
//! * **joins** — equi-join predicates `(table, col) = (table, col)` forming
//!   the join hypergraph;
//! * **residual** — cross-table predicates that are not equi-joins (OR
//!   groups, inequalities across tables, extra equalities between an already
//!   joined pair); applied while output rows are assembled;
//! * **subqueries** — EXISTS / IN / scalar-comparison subqueries, analyzed
//!   recursively with their correlation predicates extracted;
//! * **output** — select items resolved, aggregation class determined
//!   (none / local / global / scalar — paper Section 7).

use crate::ast::{HavingPred, JoinKind, QExpr, SelectItem, SelectStmt};
use vcsql_relation::agg::AggFunc;
use vcsql_relation::expr::{CmpOp, ColRef, Expr};
use vcsql_relation::{RelError, Schema};

type Result<T> = std::result::Result<T, RelError>;

/// One FROM-clause table binding.
#[derive(Debug, Clone)]
pub struct TableBinding {
    pub alias: String,
    pub relation: String,
    pub schema: Schema,
    /// Conjunction of single-table predicates over this table (column refs
    /// qualified with the alias).
    pub filters: Vec<Expr>,
}

/// An equi-join predicate between two table columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPred {
    pub left: (usize, usize),
    pub right: (usize, usize),
}

/// Aggregation style, following the paper's classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggClass {
    /// Pure select-project-join.
    NoAgg,
    /// GROUP BY whose key is one attribute (or attributes determined by
    /// one) — computable at the group-key attribute vertices in parallel.
    Local,
    /// Multi-attribute GROUP BY — needs the global aggregation vertex.
    Global,
    /// Aggregates without GROUP BY — a single global (scalar) result.
    Scalar,
}

/// A resolved output item.
#[derive(Debug, Clone)]
pub enum OutputItem {
    /// Plain column.
    Col { table: usize, col: usize, name: String },
    /// Scalar expression over the joined row.
    Expr { expr: Expr, name: String },
    /// Aggregate over the joined rows (per group if GROUP BY present).
    Agg { func: AggFunc, arg: Option<Expr>, name: String },
}

impl OutputItem {
    /// Output column name.
    pub fn name(&self) -> &str {
        match self {
            OutputItem::Col { name, .. }
            | OutputItem::Expr { name, .. }
            | OutputItem::Agg { name, .. } => name,
        }
    }
}

/// How a subquery predicate constrains the outer query.
#[derive(Debug, Clone)]
pub enum SubqueryKind {
    /// `[NOT] EXISTS (...)` — semi/anti join on the correlation columns.
    Exists { negated: bool },
    /// `outer_col [NOT] IN (SELECT inner_col ...)`.
    In { outer: (usize, usize), inner_item: usize, negated: bool },
    /// `outer_expr op (SELECT AGG(...) ...)` — scalar, possibly correlated.
    Scalar { outer_expr: Expr, op: CmpOp },
}

/// A correlation predicate `inner.(t,c) = outer.(t,c)` (tables indexed in
/// their own scopes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Correlation {
    pub inner: (usize, usize),
    pub outer: (usize, usize),
}

/// An analyzed subquery predicate.
#[derive(Debug, Clone)]
pub struct SubqueryPred {
    pub kind: SubqueryKind,
    pub sub: Box<Analyzed>,
    pub correlations: Vec<Correlation>,
}

/// The analyzer's output: a normalized query.
#[derive(Debug, Clone)]
pub struct Analyzed {
    pub tables: Vec<TableBinding>,
    pub joins: Vec<JoinPred>,
    pub residual: Vec<Expr>,
    pub subqueries: Vec<SubqueryPred>,
    pub items: Vec<OutputItem>,
    pub group_by: Vec<(usize, usize)>,
    pub having: Vec<HavingPred>,
    pub agg_class: AggClass,
}

impl Analyzed {
    /// Resolve an (alias-qualified or bare) column against this query's
    /// tables.
    pub fn resolve(&self, c: &ColRef) -> Result<(usize, usize)> {
        resolve_in(&self.tables, c)
    }

    /// The alias-qualified name of a resolved column.
    pub fn qualified(&self, table: usize, col: usize) -> ColRef {
        ColRef::qualified(
            self.tables[table].alias.clone(),
            self.tables[table].schema.columns[col].name.clone(),
        )
    }

    /// Output column names in order.
    pub fn output_names(&self) -> Vec<String> {
        self.items.iter().map(|i| i.name().to_string()).collect()
    }

    /// True if any aggregate appears in the output.
    pub fn has_aggregates(&self) -> bool {
        self.items.iter().any(|i| matches!(i, OutputItem::Agg { .. }))
    }
}

fn resolve_in(tables: &[TableBinding], c: &ColRef) -> Result<(usize, usize)> {
    match &c.qualifier {
        Some(q) => {
            let t = tables
                .iter()
                .position(|b| &b.alias == q)
                .ok_or_else(|| RelError::UnknownColumn(format!("{q}.{}", c.name)))?;
            let col = tables[t].schema.column_index(&c.name)?;
            Ok((t, col))
        }
        None => {
            let mut hit = None;
            for (t, b) in tables.iter().enumerate() {
                if let Ok(col) = b.schema.column_index(&c.name) {
                    if hit.is_some() {
                        return Err(RelError::UnknownColumn(format!("ambiguous `{}`", c.name)));
                    }
                    hit = Some((t, col));
                }
            }
            hit.ok_or_else(|| RelError::UnknownColumn(c.name.clone()))
        }
    }
}

/// Rewrite every column reference in `e` to its alias-qualified form,
/// resolving through `inner` first and `outer` second. Returns the rewritten
/// expression and the set of inner tables it mentions; columns resolved to
/// the outer scope are reported in `outer_cols`.
fn qualify(
    e: &Expr,
    inner: &[TableBinding],
    outer: Option<&[TableBinding]>,
    inner_tables: &mut Vec<usize>,
    outer_cols: &mut Vec<(usize, usize)>,
) -> Result<Expr> {
    let mut rewrite = |c: &ColRef| -> Result<ColRef> {
        match resolve_in(inner, c) {
            Ok((t, col)) => {
                if !inner_tables.contains(&t) {
                    inner_tables.push(t);
                }
                Ok(ColRef::qualified(
                    inner[t].alias.clone(),
                    inner[t].schema.columns[col].name.clone(),
                ))
            }
            Err(inner_err) => match outer {
                Some(out) => {
                    let (t, col) = resolve_in(out, c).map_err(|_| inner_err)?;
                    outer_cols.push((t, col));
                    Ok(ColRef::qualified(
                        out[t].alias.clone(),
                        out[t].schema.columns[col].name.clone(),
                    ))
                }
                None => Err(inner_err),
            },
        }
    };
    map_cols(e, &mut rewrite)
}

/// Structural map over column references.
fn map_cols(e: &Expr, f: &mut impl FnMut(&ColRef) -> Result<ColRef>) -> Result<Expr> {
    Ok(match e {
        Expr::Col(c) => Expr::Col(f(c)?),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(map_cols(a, f)?), Box::new(map_cols(b, f)?)),
        Expr::And(es) => Expr::And(es.iter().map(|e| map_cols(e, f)).collect::<Result<_>>()?),
        Expr::Or(es) => Expr::Or(es.iter().map(|e| map_cols(e, f)).collect::<Result<_>>()?),
        Expr::Not(e) => Expr::Not(Box::new(map_cols(e, f)?)),
        Expr::Arith(op, a, b) => {
            Expr::Arith(*op, Box::new(map_cols(a, f)?), Box::new(map_cols(b, f)?))
        }
        Expr::Neg(e) => Expr::Neg(Box::new(map_cols(e, f)?)),
        Expr::Case { branches, otherwise } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, t)| Ok((map_cols(c, f)?, map_cols(t, f)?)))
                .collect::<Result<_>>()?,
            otherwise: match otherwise {
                Some(e) => Some(Box::new(map_cols(e, f)?)),
                None => None,
            },
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(map_cols(expr, f)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(map_cols(expr, f)?),
            list: list.clone(),
            negated: *negated,
        },
        Expr::Between { expr, low, high } => Expr::Between {
            expr: Box::new(map_cols(expr, f)?),
            low: Box::new(map_cols(low, f)?),
            high: Box::new(map_cols(high, f)?),
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(map_cols(expr, f)?), negated: *negated }
        }
        Expr::Func(func, args) => {
            Expr::Func(*func, args.iter().map(|e| map_cols(e, f)).collect::<Result<_>>()?)
        }
    })
}

/// Analyze a statement against a catalog of schemas.
pub fn analyze(stmt: &SelectStmt, catalog: &[Schema]) -> Result<Analyzed> {
    let (analyzed, correlations) = analyze_scoped(stmt, catalog, None)?;
    debug_assert!(correlations.is_empty(), "top-level query cannot be correlated");
    Ok(analyzed)
}

/// Returns the analyzed query plus any correlation predicates that referred
/// to the `outer` scope (empty for top-level queries).
fn analyze_scoped(
    stmt: &SelectStmt,
    catalog: &[Schema],
    outer: Option<&[TableBinding]>,
) -> Result<(Analyzed, Vec<Correlation>)> {
    // ---- bind tables ------------------------------------------------------
    let mut tables = Vec::new();
    let mut all_from = stmt.from.clone();
    for j in &stmt.joins {
        if j.kind != JoinKind::Inner {
            return Err(RelError::Other(format!(
                "{} is supported via the dedicated outer-join executor, not the general planner",
                j.kind
            )));
        }
        all_from.push(j.table.clone());
    }
    for t in &all_from {
        let schema = catalog
            .iter()
            .find(|s| s.name == t.relation)
            .ok_or_else(|| RelError::UnknownRelation(t.relation.clone()))?;
        if tables.iter().any(|b: &TableBinding| b.alias == t.alias) {
            return Err(RelError::Other(format!("duplicate alias `{}`", t.alias)));
        }
        tables.push(TableBinding {
            alias: t.alias.clone(),
            relation: t.relation.clone(),
            schema: schema.clone(),
            filters: Vec::new(),
        });
    }

    // ---- gather WHERE conjuncts (ON conditions of inner joins fold in) ----
    let mut conjuncts: Vec<QExpr> = Vec::new();
    for j in &stmt.joins {
        conjuncts.extend(QExpr::Base(j.on.clone()).conjuncts());
    }
    if let Some(w) = &stmt.where_clause {
        conjuncts.extend(w.clone().conjuncts());
    }

    let mut joins = Vec::new();
    let mut residual = Vec::new();
    let mut subqueries = Vec::new();
    let mut correlations = Vec::new();

    for conj in conjuncts {
        match conj {
            QExpr::Base(e) => {
                // Equi-join?
                if let Expr::Cmp(CmpOp::Eq, a, b) = &e {
                    if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                        let ra = resolve_in(&tables, ca);
                        let rb = resolve_in(&tables, cb);
                        match (ra, rb) {
                            (Ok(left), Ok(right)) if left.0 != right.0 => {
                                joins.push(JoinPred { left, right });
                                continue;
                            }
                            _ if outer.is_some() => {
                                // Possibly a correlation with the outer query.
                                if let Some(corr) = correlation_of(ca, cb, &tables, outer.unwrap())?
                                {
                                    correlations.push(corr);
                                    continue;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                let mut used = Vec::new();
                let mut outer_cols = Vec::new();
                let q = qualify(&e, &tables, outer, &mut used, &mut outer_cols)?;
                if !outer_cols.is_empty() {
                    return Err(RelError::Other(
                        "only equality correlations with the outer query are supported".into(),
                    ));
                }
                match used.len() {
                    0 | 1 => {
                        let t = used.first().copied().unwrap_or(0);
                        if tables.is_empty() {
                            return Err(RelError::Other("filter without tables".into()));
                        }
                        tables[t].filters.push(q);
                    }
                    _ => residual.push(q),
                }
            }
            QExpr::Exists { query, negated } => {
                let (sub, corr) = analyze_scoped(&query, catalog, Some(&tables))?;
                subqueries.push(SubqueryPred {
                    kind: SubqueryKind::Exists { negated },
                    sub: Box::new(sub),
                    correlations: corr,
                });
            }
            QExpr::InSubquery { expr, query, negated } => {
                let col = match &expr {
                    Expr::Col(c) => resolve_in(&tables, c)?,
                    _ => {
                        return Err(RelError::Other(
                            "IN (subquery) requires a plain column on the left".into(),
                        ))
                    }
                };
                let (sub, corr) = analyze_scoped(&query, catalog, Some(&tables))?;
                if sub.items.len() != 1 {
                    return Err(RelError::Other("IN subquery must select one column".into()));
                }
                subqueries.push(SubqueryPred {
                    kind: SubqueryKind::In { outer: col, inner_item: 0, negated },
                    sub: Box::new(sub),
                    correlations: corr,
                });
            }
            QExpr::CmpSubquery { expr, op, query } => {
                let mut used = Vec::new();
                let mut outer_cols = Vec::new();
                let outer_expr = qualify(&expr, &tables, None, &mut used, &mut outer_cols)?;
                let (sub, corr) = analyze_scoped(&query, catalog, Some(&tables))?;
                if sub.items.len() != 1 || !matches!(sub.items[0], OutputItem::Agg { .. }) {
                    return Err(RelError::Other(
                        "scalar subquery must select exactly one aggregate".into(),
                    ));
                }
                subqueries.push(SubqueryPred {
                    kind: SubqueryKind::Scalar { outer_expr, op },
                    sub: Box::new(sub),
                    correlations: corr,
                });
            }
            QExpr::And(_) => unreachable!("conjuncts() flattens AND"),
            other @ (QExpr::Or(_) | QExpr::Not(_)) => {
                // OR/NOT containing subqueries is out of scope; subquery-free
                // ones were handled as Base by the parser only when directly
                // constructed — handle the residual case here.
                match other.into_base() {
                    Some(e) => {
                        let mut used = Vec::new();
                        let mut outer_cols = Vec::new();
                        let q = qualify(&e, &tables, outer, &mut used, &mut outer_cols)?;
                        if !outer_cols.is_empty() {
                            return Err(RelError::Other(
                                "correlated OR predicates are not supported".into(),
                            ));
                        }
                        if used.len() <= 1 {
                            tables[used.first().copied().unwrap_or(0)].filters.push(q);
                        } else {
                            residual.push(q);
                        }
                    }
                    None => {
                        return Err(RelError::Other(
                            "OR/NOT over subqueries is not supported".into(),
                        ))
                    }
                }
            }
        }
    }

    let mut analyzed = Analyzed {
        tables,
        joins,
        residual,
        subqueries,
        items: Vec::new(),
        group_by: Vec::new(),
        having: stmt.having.clone(),
        agg_class: AggClass::NoAgg,
    };

    // ---- output items ------------------------------------------------------
    let mut items = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        let name = item.output_name(i);
        match item {
            SelectItem::Expr { expr, .. } => {
                if let Expr::Col(c) = expr {
                    let (t, col) = analyzed.resolve(c)?;
                    items.push(OutputItem::Col { table: t, col, name });
                } else {
                    let mut used = Vec::new();
                    let mut outer_cols = Vec::new();
                    let q = qualify(expr, &analyzed.tables, None, &mut used, &mut outer_cols)?;
                    items.push(OutputItem::Expr { expr: q, name });
                }
            }
            SelectItem::Agg { func, arg, .. } => {
                let arg = match arg {
                    Some(e) => {
                        let mut used = Vec::new();
                        let mut outer_cols = Vec::new();
                        Some(qualify(e, &analyzed.tables, None, &mut used, &mut outer_cols)?)
                    }
                    None => None,
                };
                items.push(OutputItem::Agg { func: *func, arg, name });
            }
        }
    }
    analyzed.items = items;

    // ---- group by / having / classification --------------------------------
    for c in &stmt.group_by {
        analyzed.group_by.push(analyzed.resolve(c)?);
    }
    let mut having = Vec::new();
    for h in &stmt.having {
        let arg = match &h.arg {
            Some(e) => {
                let mut used = Vec::new();
                let mut outer_cols = Vec::new();
                Some(qualify(e, &analyzed.tables, None, &mut used, &mut outer_cols)?)
            }
            None => None,
        };
        having.push(HavingPred { func: h.func, arg, op: h.op, rhs: h.rhs.clone() });
    }
    analyzed.having = having;
    analyzed.agg_class = classify(&analyzed);
    Ok((analyzed, correlations))
}

/// A subquery lowered to an executable shape shared by both executors
/// (relational baseline and vertex-centric): run `sub`, then interpret its
/// output rows per the variant.
#[derive(Debug, Clone)]
pub enum LoweredSubquery {
    /// Run `sub`; its output rows form a key set; the outer row qualifies iff
    /// its `outer_cols` key is (not) in the set.
    KeySet { sub: Analyzed, outer_cols: Vec<(usize, usize)>, negated: bool },
    /// Run `sub` (grouped by the correlation columns); its rows are
    /// `(key..., scalar)`; the outer row qualifies iff
    /// `outer_expr op map[outer_cols]`.
    ScalarMap {
        sub: Analyzed,
        outer_cols: Vec<(usize, usize)>,
        outer_expr: Expr,
        op: CmpOp,
        key_arity: usize,
    },
}

/// Lower a subquery predicate into the executable shape: EXISTS projects the
/// correlation columns, IN prepends the matched column, scalar subqueries
/// group by the correlation key (the paper's reverse-lookup strategy, where
/// the subquery is evaluated first and the outer query probes its result).
pub fn lower_subquery(sq: &SubqueryPred) -> LoweredSubquery {
    match &sq.kind {
        SubqueryKind::Exists { negated } => {
            let mut sub = (*sq.sub).clone();
            sub.items = sq
                .correlations
                .iter()
                .map(|c| OutputItem::Col {
                    table: c.inner.0,
                    col: c.inner.1,
                    name: format!("k{}_{}", c.inner.0, c.inner.1),
                })
                .collect();
            sub.group_by.clear();
            sub.having.clear();
            sub.agg_class = classify(&sub);
            LoweredSubquery::KeySet {
                sub,
                outer_cols: sq.correlations.iter().map(|c| c.outer).collect(),
                negated: *negated,
            }
        }
        SubqueryKind::In { outer, inner_item, negated } => {
            let mut sub = (*sq.sub).clone();
            let mut items = vec![sub.items[*inner_item].clone()];
            for c in &sq.correlations {
                items.push(OutputItem::Col {
                    table: c.inner.0,
                    col: c.inner.1,
                    name: format!("k{}_{}", c.inner.0, c.inner.1),
                });
            }
            sub.items = items;
            sub.agg_class = classify(&sub);
            let mut outer_cols = vec![*outer];
            outer_cols.extend(sq.correlations.iter().map(|c| c.outer));
            LoweredSubquery::KeySet { sub, outer_cols, negated: *negated }
        }
        SubqueryKind::Scalar { outer_expr, op } => {
            let mut sub = (*sq.sub).clone();
            let agg_item = sub.items[0].clone();
            let mut items: Vec<OutputItem> = sq
                .correlations
                .iter()
                .map(|c| OutputItem::Col {
                    table: c.inner.0,
                    col: c.inner.1,
                    name: format!("k{}_{}", c.inner.0, c.inner.1),
                })
                .collect();
            items.push(agg_item);
            sub.items = items;
            sub.group_by = sq.correlations.iter().map(|c| c.inner).collect();
            sub.agg_class = classify(&sub);
            LoweredSubquery::ScalarMap {
                sub,
                outer_cols: sq.correlations.iter().map(|c| c.outer).collect(),
                outer_expr: outer_expr.clone(),
                op: *op,
                key_arity: sq.correlations.len(),
            }
        }
    }
}

/// Decide whether `a = b` is a correlation between `inner` and `outer`
/// scopes (one side resolves only in each).
fn correlation_of(
    a: &ColRef,
    b: &ColRef,
    inner: &[TableBinding],
    outer: &[TableBinding],
) -> Result<Option<Correlation>> {
    let (ia, oa) = (resolve_in(inner, a).ok(), resolve_in(outer, a).ok());
    let (ib, ob) = (resolve_in(inner, b).ok(), resolve_in(outer, b).ok());
    // Prefer the inner interpretation when both resolve (SQL scoping rule).
    match (ia, ib, oa, ob) {
        (Some(i), None, _, Some(o)) => Ok(Some(Correlation { inner: i, outer: o })),
        (None, Some(i), Some(o), _) => Ok(Some(Correlation { inner: i, outer: o })),
        _ => Ok(None),
    }
}

/// Aggregation classification per paper Section 7: local aggregation when a
/// single attribute keys the groups (or one group key functionally
/// determines the rest, approximated via primary keys); global when several
/// independent attributes key the groups; scalar when there is no GROUP BY.
fn classify(a: &Analyzed) -> AggClass {
    let has_agg = a.has_aggregates() || !a.having.is_empty();
    if a.group_by.is_empty() {
        return if has_agg { AggClass::Scalar } else { AggClass::NoAgg };
    }
    if a.group_by.len() == 1 {
        return AggClass::Local;
    }
    // Multiple keys: local iff all come from one table and one of them is a
    // single-column primary key of that table (it determines the others).
    let t0 = a.group_by[0].0;
    let same_table = a.group_by.iter().all(|&(t, _)| t == t0);
    if same_table {
        let pk = &a.tables[t0].schema.primary_key;
        if pk.len() == 1 && a.group_by.iter().any(|&(_, c)| c == pk[0]) {
            return AggClass::Local;
        }
    }
    AggClass::Global
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use vcsql_relation::schema::Column;
    use vcsql_relation::DataType;

    fn catalog() -> Vec<Schema> {
        vec![
            Schema::new(
                "nation",
                vec![Column::new("nationkey", DataType::Int), Column::new("n_name", DataType::Str)],
            )
            .with_primary_key(&["nationkey"]),
            Schema::new(
                "customer",
                vec![
                    Column::new("custkey", DataType::Int),
                    Column::new("c_nationkey", DataType::Int),
                    Column::new("c_name", DataType::Str),
                ],
            )
            .with_primary_key(&["custkey"]),
            Schema::new(
                "orders",
                vec![
                    Column::new("orderkey", DataType::Int),
                    Column::new("o_custkey", DataType::Int),
                    Column::new("total", DataType::Float),
                ],
            )
            .with_primary_key(&["orderkey"]),
        ]
    }

    #[test]
    fn splits_filters_joins_residual() {
        let stmt = parse(
            "SELECT c.c_name FROM customer c, orders o, nation n \
             WHERE c.custkey = o.o_custkey AND n.nationkey = c.c_nationkey \
             AND o.total > 100 AND c.c_name < n.n_name",
        )
        .unwrap();
        let a = analyze(&stmt, &catalog()).unwrap();
        assert_eq!(a.tables.len(), 3);
        assert_eq!(a.joins.len(), 2);
        assert_eq!(a.residual.len(), 1);
        assert_eq!(a.tables[1].filters.len(), 1); // o.total > 100
        assert_eq!(a.agg_class, AggClass::NoAgg);
    }

    #[test]
    fn bare_columns_resolve_uniquely() {
        let stmt = parse(
            "SELECT c_name FROM customer c, orders o WHERE custkey = o_custkey AND total > 5",
        )
        .unwrap();
        let a = analyze(&stmt, &catalog()).unwrap();
        assert_eq!(a.joins.len(), 1);
        assert!(matches!(a.items[0], OutputItem::Col { table: 0, col: 2, .. }));
    }

    #[test]
    fn ambiguity_and_unknowns_error() {
        let cat = vec![
            Schema::new("a", vec![Column::new("x", DataType::Int)]),
            Schema::new("b", vec![Column::new("x", DataType::Int)]),
        ];
        let stmt = parse("SELECT x FROM a, b").unwrap();
        assert!(analyze(&stmt, &cat).is_err());
        let stmt = parse("SELECT y FROM a").unwrap();
        assert!(analyze(&stmt, &cat).is_err());
        let stmt = parse("SELECT x FROM missing").unwrap();
        assert!(analyze(&stmt, &cat).is_err());
    }

    #[test]
    fn agg_classification() {
        let cat = catalog();
        let scalar = parse("SELECT SUM(o.total) FROM orders o").unwrap();
        assert_eq!(analyze(&scalar, &cat).unwrap().agg_class, AggClass::Scalar);
        let local = parse(
            "SELECT n.n_name, SUM(o.total) FROM nation n, customer c, orders o \
             WHERE n.nationkey = c.c_nationkey AND c.custkey = o.o_custkey GROUP BY n.n_name",
        )
        .unwrap();
        assert_eq!(analyze(&local, &cat).unwrap().agg_class, AggClass::Local);
        // Two group keys from one table including its PK → still local.
        let local2 = parse(
            "SELECT c.custkey, c.c_name, COUNT(*) FROM customer c \
             GROUP BY c.custkey, c.c_name",
        )
        .unwrap();
        assert_eq!(analyze(&local2, &cat).unwrap().agg_class, AggClass::Local);
        // Keys from two tables → global.
        let global = parse(
            "SELECT n.n_name, c.c_name, COUNT(*) FROM nation n, customer c \
             WHERE n.nationkey = c.c_nationkey GROUP BY n.n_name, c.c_name",
        )
        .unwrap();
        assert_eq!(analyze(&global, &cat).unwrap().agg_class, AggClass::Global);
    }

    #[test]
    fn correlated_exists_extracts_correlation() {
        let stmt = parse(
            "SELECT c.c_name FROM customer c WHERE EXISTS \
             (SELECT o.orderkey FROM orders o WHERE o.o_custkey = c.custkey AND o.total > 10)",
        )
        .unwrap();
        let a = analyze(&stmt, &catalog()).unwrap();
        assert_eq!(a.subqueries.len(), 1);
        let sq = &a.subqueries[0];
        assert!(matches!(sq.kind, SubqueryKind::Exists { negated: false }));
        assert_eq!(sq.correlations.len(), 1);
        // inner orders.o_custkey (table 0 of subquery, col 1) = outer
        // customer.custkey (table 0, col 0).
        assert_eq!(sq.correlations[0].inner, (0, 1));
        assert_eq!(sq.correlations[0].outer, (0, 0));
        // Subquery keeps its own filter.
        assert_eq!(sq.sub.tables[0].filters.len(), 1);
    }

    #[test]
    fn scalar_subquery_shape_enforced() {
        let ok = parse(
            "SELECT o.orderkey FROM orders o WHERE o.total < \
             (SELECT AVG(o2.total) FROM orders o2)",
        )
        .unwrap();
        assert!(analyze(&ok, &catalog()).is_ok());
        let bad = parse(
            "SELECT o.orderkey FROM orders o WHERE o.total < \
             (SELECT o2.total FROM orders o2)",
        )
        .unwrap();
        assert!(analyze(&bad, &catalog()).is_err());
    }
}
