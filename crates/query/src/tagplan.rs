//! TAG plans (paper Section 5.1) and traversal-step generation
//! (Algorithm 1, `GenSteps`).
//!
//! A TAG plan is a tree that interleaves **relation nodes** (one per join
//! tree bag) with **attribute nodes** (one per join variable); the edge
//! between an attribute node for variable `X` and the relation node for `R`
//! is labelled `R.A` where `A` is `X`'s column in `R`.
//!
//! `GenSteps` linearizes the plan into a list of edge labels by a *connected
//! bottom-up traversal* starting at the rightmost leaf. The list drives the
//! vertex program: at superstep `i` active vertices send messages along their
//! edges labelled `steps[i]` (paper Algorithm 2). Reversing the list gives
//! the top-down reduction pass; reversing again drives the collection phase.

use crate::gyo::{Decomposition, JoinTree};

/// A node of the TAG plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanNode {
    /// The relation node for a FROM table (by table index).
    Rel { table: usize },
    /// The attribute node for a join variable.
    Attr { var: usize },
}

/// One traversal step: the TAG edge label `table.column` to message along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    pub table: usize,
    pub col: usize,
}

/// A TAG plan tree for one join-tree component.
#[derive(Debug, Clone)]
pub struct TagPlan {
    pub nodes: Vec<PlanNode>,
    pub children: Vec<Vec<usize>>,
    pub parent: Vec<Option<usize>>,
    /// Label of the edge from `parent[n]` into `n` (None for the root). The
    /// label always references the relation side of the edge.
    pub in_label: Vec<Option<Step>>,
    pub root: usize,
}

impl TagPlan {
    /// Build the TAG plan from a join tree (paper Section 5.1): one relation
    /// node per bag, one attribute node per join variable, attribute nodes
    /// spliced between a bag and its children.
    pub fn from_join_tree(tree: &JoinTree, dec: &Decomposition) -> TagPlan {
        let mut plan = TagPlan {
            nodes: Vec::new(),
            children: Vec::new(),
            parent: Vec::new(),
            in_label: Vec::new(),
            root: 0,
        };
        let root_rel = plan.add_node(PlanNode::Rel { table: tree.root }, None, None);
        plan.root = root_rel;
        // Map table -> its rel node; var -> its attr node (created when first
        // needed, under the rel node of the *parent* side so the connected
        // subtree property of GHDs maps to a tree here).
        let mut rel_node = vcsql_relation::FxHashMap::default();
        rel_node.insert(tree.root, root_rel);
        let mut attr_node: vcsql_relation::FxHashMap<usize, usize> =
            vcsql_relation::FxHashMap::default();

        for t in tree.preorder() {
            if t == tree.root {
                continue;
            }
            let parent_table = tree.parent[&t].expect("non-root has a parent");
            let var = tree.link_var[&t];
            let parent_rel = rel_node[&parent_table];
            let a = *attr_node.entry(var).or_insert_with(|| {
                let col_in_parent =
                    dec.vars[var].column_in(parent_table).expect("link var occurs in parent");
                plan.add_node(
                    PlanNode::Attr { var },
                    Some(parent_rel),
                    Some(Step { table: parent_table, col: col_in_parent }),
                )
            });
            let col_in_child = dec.vars[var].column_in(t).expect("link var occurs in child");
            let r = plan.add_node(
                PlanNode::Rel { table: t },
                Some(a),
                Some(Step { table: t, col: col_in_child }),
            );
            rel_node.insert(t, r);
        }
        plan
    }

    fn add_node(&mut self, node: PlanNode, parent: Option<usize>, label: Option<Step>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(node);
        self.children.push(Vec::new());
        self.parent.push(parent);
        self.in_label.push(label);
        if let Some(p) = parent {
            self.children[p].push(id);
        }
        id
    }

    /// The rightmost leaf: follow the last child from the root.
    pub fn rightmost_leaf(&self) -> usize {
        let mut n = self.root;
        while let Some(&c) = self.children[n].last() {
            n = c;
        }
        n
    }

    /// The set of nodes on the rightmost root-leaf path.
    fn rightmost_path(&self) -> Vec<usize> {
        let mut path = vec![self.root];
        let mut n = self.root;
        while let Some(&c) = self.children[n].last() {
            path.push(c);
            n = c;
        }
        path
    }

    /// `GenSteps` (paper Algorithm 1): the list of edge labels for the
    /// connected bottom-up traversal, in execution order (first step first).
    ///
    /// The traversal starts at the rightmost leaf, fully explores each
    /// subtree before moving to the parent, and revisits edges as needed to
    /// stay connected (each revisited edge contributes its label twice).
    pub fn gen_steps(&self) -> Vec<Step> {
        let rightmost = self.rightmost_path();
        let mut stack: Vec<Step> = Vec::new();
        self.dfs(self.root, &rightmost, &mut stack);
        stack.reverse(); // LIFO pop order = execution order
        stack
    }

    fn dfs(&self, node: usize, rightmost: &[usize], stack: &mut Vec<Step>) {
        if let Some(label) = self.in_label[node] {
            stack.push(label);
        }
        for &c in &self.children[node] {
            self.dfs(c, rightmost, stack);
        }
        if self.parent[node].is_some() && !rightmost.contains(&node) {
            stack.push(self.in_label[node].expect("non-root has an in label"));
        }
    }

    /// The table of the plan's root relation node.
    pub fn root_table(&self) -> usize {
        match self.nodes[self.root] {
            PlanNode::Rel { table } => table,
            PlanNode::Attr { .. } => unreachable!("plan roots are relation nodes"),
        }
    }

    /// The table of the starting relation (the rightmost leaf must be a
    /// relation node for join plans).
    pub fn start_table(&self) -> usize {
        match self.nodes[self.rightmost_leaf()] {
            PlanNode::Rel { table } => table,
            PlanNode::Attr { .. } => {
                unreachable!("attribute nodes always have relation children in join plans")
            }
        }
    }

    /// Number of plan nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the plan is a single relation node (no joins).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::JoinPred;
    use crate::gyo::decompose;

    fn jp(l: (usize, usize), r: (usize, usize)) -> JoinPred {
        JoinPred { left: l, right: r }
    }

    /// Reproduce the paper's Figure 4: tables R=0, S=1, T=2, V=3 with
    /// R.A = S.A (cols: R.0 = S.0) and S.B = T.B = V.B (S.1 = T.0 = V.0).
    fn figure4() -> (Decomposition, TagPlan) {
        let joins = [jp((1, 1), (2, 0)), jp((1, 1), (3, 0)), jp((0, 0), (1, 0))];
        let mut dec = decompose(4, &joins);
        assert!(!dec.cyclic);
        dec.components[0].reroot(0);
        // Normalize child order so S's children are [T, V] as in the figure.
        let tree = &mut dec.components[0];
        for lists in [&mut tree.children] {
            for (_, cs) in lists.iter_mut() {
                cs.sort_unstable();
            }
        }
        let plan = TagPlan::from_join_tree(&dec.components[0], &dec);
        (dec, plan)
    }

    #[test]
    fn figure4_plan_shape() {
        let (_, plan) = figure4();
        // Nodes: R, A, S, B, T, V.
        assert_eq!(plan.len(), 6);
        assert!(matches!(plan.nodes[plan.root], PlanNode::Rel { table: 0 }));
        // Exactly two attribute nodes.
        let attrs = plan.nodes.iter().filter(|n| matches!(n, PlanNode::Attr { .. })).count();
        assert_eq!(attrs, 2);
        // Rightmost leaf is V (table 3).
        assert_eq!(plan.start_table(), 3);
    }

    #[test]
    fn figure4_gen_steps_matches_paper() {
        let (_, plan) = figure4();
        let steps = plan.gen_steps();
        // Expected: V.B, T.B, T.B, S.B, S.A, R.A (paper Fig 4(c)), where
        // B is col 0 of T/V and col 1 of S; A is col 0 of R and S.
        let expect = [
            Step { table: 3, col: 0 }, // V.B
            Step { table: 2, col: 0 }, // T.B (enter T)
            Step { table: 2, col: 0 }, // T.B (back to B)
            Step { table: 1, col: 1 }, // S.B
            Step { table: 1, col: 0 }, // S.A
            Step { table: 0, col: 0 }, // R.A
        ];
        assert_eq!(steps, expect);
    }

    #[test]
    fn lemma51_semantics_odd_projections_even_semijoins() {
        // The steps list alternates: starting from tuple vertices, step 1
        // activates attribute vertices (projection), step 2 tuple vertices
        // (semi-join), ... — so consecutive steps must alternate between
        // "label of the relation we stand on" and "label of the relation we
        // move to". We verify the step tables follow the connected traversal
        // order of Figure 4: V, B, T, B, S, A, R.
        let (_, plan) = figure4();
        let steps = plan.gen_steps();
        let tables: Vec<usize> = steps.iter().map(|s| s.table).collect();
        assert_eq!(tables, vec![3, 2, 2, 1, 1, 0]);
    }

    #[test]
    fn chain_plan_steps() {
        // R(0) -x- S(1) -y- T(2), rooted at R.
        let joins = [jp((0, 0), (1, 0)), jp((1, 1), (2, 0))];
        let mut dec = decompose(3, &joins);
        dec.components[0].reroot(0);
        let plan = TagPlan::from_join_tree(&dec.components[0], &dec);
        let steps = plan.gen_steps();
        // Pure chain: no revisits; length = #edges = 4.
        assert_eq!(steps.len(), 4);
        assert_eq!(plan.start_table(), 2);
        // Bottom-up: T.y, S.y, S.x, R.x.
        assert_eq!(
            steps,
            vec![
                Step { table: 2, col: 0 },
                Step { table: 1, col: 1 },
                Step { table: 1, col: 0 },
                Step { table: 0, col: 0 },
            ]
        );
    }

    #[test]
    fn star_plan_revisits_center() {
        // fact(0) with three dims; root at fact.
        let joins = [jp((0, 0), (1, 0)), jp((0, 1), (2, 0)), jp((0, 2), (3, 0))];
        let mut dec = decompose(4, &joins);
        dec.components[0].reroot(0);
        let plan = TagPlan::from_join_tree(&dec.components[0], &dec);
        let steps = plan.gen_steps();
        // Edges: 6; two non-rightmost dim subtrees are revisited (+2 each on
        // their two-edge paths... each dim leaf contributes enter+exit for
        // both its edges except the rightmost path).
        // The start table is whichever dimension ended up rightmost.
        let start = plan.start_table();
        assert!((1..4).contains(&start));
        // First step must leave the rightmost leaf; last must enter the root.
        assert_eq!(steps[0].table, start);
        assert_eq!(steps.last().unwrap().table, 0);
        // Connectivity: the labels of non-rightmost dimensions appear twice
        // (enter + backtrack); the rightmost dimension's label appears once.
        let count = |s: Step| steps.iter().filter(|&&x| x == s).count();
        for dim in 1..4 {
            let expected = if dim == start { 1 } else { 2 };
            assert_eq!(count(Step { table: dim, col: 0 }), expected, "dim {dim}");
        }
    }

    #[test]
    fn singleton_plan() {
        let dec = decompose(1, &[]);
        let plan = TagPlan::from_join_tree(&dec.components[0], &dec);
        assert!(plan.is_empty());
        assert!(plan.gen_steps().is_empty());
        assert_eq!(plan.start_table(), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::analyze::JoinPred;
    use crate::gyo::decompose;
    use proptest::prelude::*;

    /// Random acyclic chain/star mixtures: table i joins some earlier table
    /// on fresh columns, guaranteeing acyclicity by construction.
    fn arb_acyclic_joins(n: usize) -> impl Strategy<Value = Vec<JoinPred>> {
        prop::collection::vec(0usize..n.max(1), n - 1..n).prop_map(move |parents| {
            (1..n)
                .map(|t| {
                    let p = parents[t - 1] % t; // earlier table
                    JoinPred { left: (p, t), right: (t, 0) }
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        /// GenSteps invariants (Algorithm 1): every plan edge's label occurs
        /// once (rightmost path) or twice (revisited subtree); the traversal
        /// is connected (consecutive steps share a plan node); the final
        /// step enters the root relation.
        #[test]
        fn gen_steps_structural_invariants(
            (n, joins) in (2usize..7).prop_flat_map(|n| {
                arb_acyclic_joins(n).prop_map(move |j| (n, j))
            }),
        ) {
            let dec = decompose(n, &joins);
            prop_assert!(!dec.cyclic);
            prop_assert_eq!(dec.components.len(), 1);
            let plan = TagPlan::from_join_tree(&dec.components[0], &dec);
            let steps = plan.gen_steps();

            // Edge count: plan has len()-1 edges; steps length is between
            // edges (pure chain) and 2*edges (full backtracking).
            let edges = plan.len() - 1;
            prop_assert!(steps.len() >= edges);
            prop_assert!(steps.len() <= 2 * edges);

            // Each label occurs once or twice.
            for s in &steps {
                let count = steps.iter().filter(|&&x| x == *s).count();
                prop_assert!(count == 1 || count == 2, "label {s:?} occurs {count} times");
            }

            // The last step's table is the root relation.
            prop_assert_eq!(steps.last().unwrap().table, plan.root_table());
            // The first step's table is the start relation.
            prop_assert_eq!(steps.first().unwrap().table, plan.start_table());
        }

        /// Decomposition covers every table exactly once across components.
        #[test]
        fn decomposition_partitions_tables(n in 1usize..8, extra in 0usize..3) {
            let mut joins = Vec::new();
            for t in 1..n.saturating_sub(extra) {
                joins.push(JoinPred { left: (t - 1, 1), right: (t, 0) });
            }
            let dec = decompose(n, &joins);
            let mut seen: Vec<usize> =
                dec.components.iter().flat_map(|c| c.tables.clone()).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }
    }
}
