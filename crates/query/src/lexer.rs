//! SQL lexer: identifiers, keywords (case-insensitive), numeric and string
//! literals, and punctuation.

use vcsql_relation::RelError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, normalized to upper case in `keyword`.
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Punctuation / operators: `( ) , . * = < > <= >= <> + - /`
    Sym(&'static str),
}

impl Token {
    /// Keyword view: the identifier upper-cased (SQL keywords are
    /// case-insensitive), or `None` for non-identifiers.
    pub fn keyword(&self) -> Option<String> {
        match self {
            Token::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// Tokenize SQL text.
pub fn lex(input: &str) -> Result<Vec<Token>, RelError> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // line comment
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => return Err(RelError::Parse("unterminated string".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|e| {
                        RelError::Parse(format!("bad float literal `{text}`: {e}"))
                    })?));
                } else {
                    out.push(Token::Int(
                        text.parse().map_err(|e| {
                            RelError::Parse(format!("bad int literal `{text}`: {e}"))
                        })?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            '<' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym("<="));
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'>') => {
                out.push(Token::Sym("<>"));
                i += 2;
            }
            '>' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym(">="));
                i += 2;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym("<>"));
                i += 2;
            }
            '(' | ')' | ',' | '.' | '*' | '=' | '<' | '>' | '+' | '-' | '/' | ';' => {
                out.push(Token::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    _ => ";",
                }));
                i += 1;
            }
            other => return Err(RelError::Parse(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = lex("SELECT a.b, 'it''s', 1.5, 42 FROM t WHERE x <= 3 AND y <> 4").unwrap();
        assert!(toks.contains(&Token::Str("it's".into())));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Int(42)));
        assert!(toks.contains(&Token::Sym("<=")));
        assert!(toks.contains(&Token::Sym("<>")));
    }

    #[test]
    fn comments_and_case() {
        let toks = lex("select -- comment\n x").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].keyword().unwrap(), "SELECT");
    }

    #[test]
    fn bang_equals_normalizes() {
        assert_eq!(lex("a != b").unwrap()[1], Token::Sym("<>"));
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ? b").is_err());
    }
}
