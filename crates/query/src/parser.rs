//! Recursive-descent parser for the SQL subset.
//!
//! Grammar sketch (keywords case-insensitive):
//!
//! ```text
//! stmt      := SELECT item (',' item)* FROM from WHERE? groupby? having?
//! item      := aggfunc '(' ('*'|expr) ')' alias? | expr alias?
//! from      := table (jk JOIN table ON expr)* (',' table (jk JOIN ...)*)*
//! qexpr     := qand (OR qand)*          -- boolean level, may hold subqueries
//! qand      := qnot (AND qnot)*
//! qnot      := NOT qnot | qprim
//! qprim     := EXISTS '(' stmt ')' | '(' qexpr ')' | predicate
//! predicate := expr ( cmp (expr | '(' stmt ')')
//!            | [NOT] IN '(' (stmt | literal+) ')'
//!            | [NOT] LIKE str | BETWEEN expr AND expr | IS [NOT] NULL )
//! expr      := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)*
//! factor    := '-' factor | primary
//! primary   := literal | DATE str | CASE..END | YEAR/MONTH '(' expr ')'
//!            | ident ['.' ident] | '(' expr ')'
//! ```

use crate::ast::{JoinKind, JoinSpec, QExpr, SelectItem, SelectStmt, TableRef};
use crate::lexer::{lex, Token};
use vcsql_relation::agg::AggFunc;
use vcsql_relation::expr::{ArithOp, CmpOp, ColRef, Expr, Func};
use vcsql_relation::{io, RelError, Value};

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> Result<SelectStmt, RelError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select_stmt()?;
    p.eat_sym(";"); // optional trailing semicolon
    if !p.at_end() {
        return Err(RelError::Parse(format!("trailing tokens at {:?}", p.peek())));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AND", "OR", "NOT", "AS", "ON", "JOIN",
    "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "EXISTS", "IN", "LIKE", "BETWEEN", "IS", "NULL",
    "CASE", "WHEN", "THEN", "ELSE", "END", "DATE", "COUNT", "SUM", "AVG", "MIN", "MAX", "YEAR",
    "MONTH", "TRUE", "FALSE",
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().and_then(Token::keyword).as_deref() == Some(kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), RelError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(RelError::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn peek_sym(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Token::Sym(x)) if *x == s)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek_sym(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), RelError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(RelError::Parse(format!("expected `{s}`, found {:?}", self.peek())))
        }
    }

    /// A non-reserved identifier.
    fn ident(&mut self) -> Result<String, RelError> {
        match self.peek() {
            Some(Token::Ident(s)) if !RESERVED.contains(&s.to_ascii_uppercase().as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(RelError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    // ------------------------------------------------------------ statements

    fn select_stmt(&mut self) -> Result<SelectStmt, RelError> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.select_item()?];
        while self.eat_sym(",") {
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let (from, joins) = self.parse_from_clause()?;
        let where_clause = if self.eat_keyword("WHERE") { Some(self.qexpr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.colref()?);
            while self.eat_sym(",") {
                group_by.push(self.colref()?);
            }
        }
        let mut having = Vec::new();
        if self.eat_keyword("HAVING") {
            having.push(self.having_pred()?);
            while self.eat_keyword("AND") {
                having.push(self.having_pred()?);
            }
        }
        Ok(SelectStmt { items, from, joins, where_clause, group_by, having })
    }

    /// `FUNC(arg) op rhs` — the aggregate-comparison form of HAVING.
    fn having_pred(&mut self) -> Result<crate::ast::HavingPred, RelError> {
        let func = self.peek_agg_func().ok_or_else(|| {
            RelError::Parse(format!("expected aggregate in HAVING, found {:?}", self.peek()))
        })?;
        self.pos += 1;
        self.expect_sym("(")?;
        let (func, arg) =
            if self.eat_sym("*") { (AggFunc::CountStar, None) } else { (func, Some(self.expr()?)) };
        self.expect_sym(")")?;
        let op = match self.advance() {
            Some(Token::Sym("=")) => CmpOp::Eq,
            Some(Token::Sym("<>")) => CmpOp::Ne,
            Some(Token::Sym("<")) => CmpOp::Lt,
            Some(Token::Sym("<=")) => CmpOp::Le,
            Some(Token::Sym(">")) => CmpOp::Gt,
            Some(Token::Sym(">=")) => CmpOp::Ge,
            other => {
                return Err(RelError::Parse(format!(
                    "expected comparison in HAVING, found {other:?}"
                )))
            }
        };
        let rhs = self.expr()?;
        Ok(crate::ast::HavingPred { func, arg, op, rhs })
    }

    fn select_item(&mut self) -> Result<SelectItem, RelError> {
        if let Some(func) = self.peek_agg_func() {
            self.pos += 1;
            self.expect_sym("(")?;
            let (func, arg) = if self.eat_sym("*") {
                if func != AggFunc::Count {
                    return Err(RelError::Parse(format!("{func}(*) is not valid")));
                }
                (AggFunc::CountStar, None)
            } else {
                (func, Some(self.expr()?))
            };
            self.expect_sym(")")?;
            let alias = self.alias()?;
            return Ok(SelectItem::Agg { func, arg, alias });
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn peek_agg_func(&self) -> Option<AggFunc> {
        // Only treat as an aggregate when followed by `(`.
        if !matches!(self.tokens.get(self.pos + 1), Some(Token::Sym("("))) {
            return None;
        }
        match self.peek().and_then(Token::keyword).as_deref() {
            Some("COUNT") => Some(AggFunc::Count),
            Some("SUM") => Some(AggFunc::Sum),
            Some("AVG") => Some(AggFunc::Avg),
            Some("MIN") => Some(AggFunc::Min),
            Some("MAX") => Some(AggFunc::Max),
            _ => None,
        }
    }

    fn alias(&mut self) -> Result<Option<String>, RelError> {
        if self.eat_keyword("AS") {
            return Ok(Some(self.ident()?));
        }
        // Bare alias: a non-reserved identifier right after the expression.
        if let Some(Token::Ident(s)) = self.peek() {
            if !RESERVED.contains(&s.to_ascii_uppercase().as_str()) {
                let s = s.clone();
                self.pos += 1;
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    fn parse_from_clause(&mut self) -> Result<(Vec<TableRef>, Vec<JoinSpec>), RelError> {
        let mut from = Vec::new();
        let mut joins = Vec::new();
        loop {
            from.push(self.table_ref()?);
            loop {
                let kind = if self.eat_keyword("JOIN") || self.eat_keyword("INNER") {
                    if self.peek_keyword("JOIN") {
                        self.expect_keyword("JOIN")?;
                    }
                    JoinKind::Inner
                } else if self.eat_keyword("LEFT") {
                    self.eat_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    JoinKind::Left
                } else if self.eat_keyword("RIGHT") {
                    self.eat_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    JoinKind::Right
                } else if self.eat_keyword("FULL") {
                    self.eat_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    JoinKind::Full
                } else {
                    break;
                };
                let table = self.table_ref()?;
                self.expect_keyword("ON")?;
                let on = self.expr_predicate()?;
                joins.push(JoinSpec { kind, table, on });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok((from, joins))
    }

    fn table_ref(&mut self) -> Result<TableRef, RelError> {
        let relation = self.ident()?;
        let alias = self.alias()?.unwrap_or_else(|| relation.clone());
        Ok(TableRef { relation, alias })
    }

    fn colref(&mut self) -> Result<ColRef, RelError> {
        let first = self.ident()?;
        if self.eat_sym(".") {
            let second = self.ident()?;
            Ok(ColRef::qualified(first, second))
        } else {
            Ok(ColRef::bare(first))
        }
    }

    // ------------------------------------------------------ boolean level

    fn qexpr(&mut self) -> Result<QExpr, RelError> {
        let mut parts = vec![self.qand()?];
        while self.eat_keyword("OR") {
            parts.push(self.qand()?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { QExpr::Or(parts) })
    }

    fn qand(&mut self) -> Result<QExpr, RelError> {
        let mut parts = vec![self.qnot()?];
        while self.eat_keyword("AND") {
            parts.push(self.qnot()?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { QExpr::And(parts) })
    }

    fn qnot(&mut self) -> Result<QExpr, RelError> {
        if self.peek_keyword("NOT") && !self.not_starts_predicate() {
            self.expect_keyword("NOT")?;
            return Ok(QExpr::Not(Box::new(self.qnot()?)));
        }
        self.qprim()
    }

    /// `NOT EXISTS (...)` is handled inside qprim; plain `NOT <pred>` here.
    fn not_starts_predicate(&self) -> bool {
        matches!(self.tokens.get(self.pos + 1).and_then(Token::keyword).as_deref(), Some("EXISTS"))
    }

    fn qprim(&mut self) -> Result<QExpr, RelError> {
        if self.eat_keyword("EXISTS") {
            self.expect_sym("(")?;
            let q = self.select_stmt()?;
            self.expect_sym(")")?;
            return Ok(QExpr::Exists { query: Box::new(q), negated: false });
        }
        if self.peek_keyword("NOT") && self.not_starts_predicate() {
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
            self.expect_sym("(")?;
            let q = self.select_stmt()?;
            self.expect_sym(")")?;
            return Ok(QExpr::Exists { query: Box::new(q), negated: true });
        }
        // `( ... )` can open a boolean group or a parenthesized scalar
        // expression; try the boolean parse first and backtrack.
        if self.peek_sym("(") {
            let save = self.pos;
            self.expect_sym("(")?;
            if let Ok(inner) = self.qexpr() {
                if self.eat_sym(")") && !self.continues_scalar() {
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        self.predicate()
    }

    /// After a candidate boolean group, these tokens mean we actually
    /// consumed a scalar expression (e.g. `(a + b) > c` parses `a + b` as a
    /// degenerate predicate) — reject the boolean interpretation.
    fn continues_scalar(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Sym("=" | "<" | ">" | "<=" | ">=" | "<>" | "+" | "-" | "*" | "/"))
        ) || self.peek_keyword("BETWEEN")
            || self.peek_keyword("IN")
            || self.peek_keyword("LIKE")
            || self.peek_keyword("IS")
    }

    fn predicate(&mut self) -> Result<QExpr, RelError> {
        let lhs = self.expr()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(QExpr::Base(Expr::IsNull { expr: Box::new(lhs), negated }));
        }
        // [NOT] IN / LIKE / BETWEEN
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_sym("(")?;
            if self.peek_keyword("SELECT") {
                let q = self.select_stmt()?;
                self.expect_sym(")")?;
                return Ok(QExpr::InSubquery { expr: lhs, query: Box::new(q), negated });
            }
            let mut list = vec![self.literal()?];
            while self.eat_sym(",") {
                list.push(self.literal()?);
            }
            self.expect_sym(")")?;
            return Ok(QExpr::Base(Expr::InList { expr: Box::new(lhs), list, negated }));
        }
        if self.eat_keyword("LIKE") {
            let pattern = match self.advance() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(RelError::Parse(format!("expected LIKE pattern, found {other:?}")))
                }
            };
            return Ok(QExpr::Base(Expr::Like { expr: Box::new(lhs), pattern, negated }));
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.expr()?;
            self.expect_keyword("AND")?;
            let high = self.expr()?;
            return Ok(QExpr::Base(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
            }));
        }
        if negated {
            return Err(RelError::Parse("expected IN/LIKE after NOT".into()));
        }
        // comparison, possibly against a scalar subquery
        let op = match self.peek() {
            Some(Token::Sym("=")) => CmpOp::Eq,
            Some(Token::Sym("<>")) => CmpOp::Ne,
            Some(Token::Sym("<")) => CmpOp::Lt,
            Some(Token::Sym("<=")) => CmpOp::Le,
            Some(Token::Sym(">")) => CmpOp::Gt,
            Some(Token::Sym(">=")) => CmpOp::Ge,
            other => return Err(RelError::Parse(format!("expected predicate, found {other:?}"))),
        };
        self.pos += 1;
        if self.peek_sym("(")
            && self.tokens.get(self.pos + 1).and_then(Token::keyword).as_deref() == Some("SELECT")
        {
            self.expect_sym("(")?;
            let q = self.select_stmt()?;
            self.expect_sym(")")?;
            return Ok(QExpr::CmpSubquery { expr: lhs, op, query: Box::new(q) });
        }
        let rhs = self.expr()?;
        Ok(QExpr::Base(lhs.cmp(op, rhs)))
    }

    /// Parse a subquery-free predicate (for JOIN ... ON).
    fn expr_predicate(&mut self) -> Result<Expr, RelError> {
        let q = self.qexpr()?;
        q.into_base().ok_or_else(|| RelError::Parse("subquery not allowed in ON".into()))
    }

    // ------------------------------------------------------- scalar level

    fn expr(&mut self) -> Result<Expr, RelError> {
        let mut lhs = self.term()?;
        loop {
            let op = if self.eat_sym("+") {
                ArithOp::Add
            } else if self.eat_sym("-") {
                ArithOp::Sub
            } else {
                break;
            };
            let rhs = self.term()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, RelError> {
        let mut lhs = self.factor()?;
        loop {
            let op = if self.eat_sym("*") {
                ArithOp::Mul
            } else if self.eat_sym("/") {
                ArithOp::Div
            } else {
                break;
            };
            let rhs = self.factor()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, RelError> {
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.factor()?)));
        }
        self.primary()
    }

    fn literal(&mut self) -> Result<Value, RelError> {
        match self.advance() {
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Float(f)) => Ok(Value::Float(f)),
            Some(Token::Str(s)) => Ok(Value::str(s)),
            Some(Token::Ident(id)) => match id.to_ascii_uppercase().as_str() {
                "NULL" => Ok(Value::Null),
                "TRUE" => Ok(Value::Bool(true)),
                "FALSE" => Ok(Value::Bool(false)),
                "DATE" => match self.advance() {
                    Some(Token::Str(s)) => Ok(Value::Date(io::parse_date(&s)?)),
                    other => Err(RelError::Parse(format!("expected date string, got {other:?}"))),
                },
                other => Err(RelError::Parse(format!("expected literal, found `{other}`"))),
            },
            other => Err(RelError::Parse(format!("expected literal, found {other:?}"))),
        }
    }

    fn primary(&mut self) -> Result<Expr, RelError> {
        match self.peek().cloned() {
            Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Str(_)) => {
                Ok(Expr::Lit(self.literal()?))
            }
            Some(Token::Sym("(")) => {
                self.expect_sym("(")?;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Ident(id)) => {
                let kw = id.to_ascii_uppercase();
                match kw.as_str() {
                    "NULL" | "TRUE" | "FALSE" | "DATE" => Ok(Expr::Lit(self.literal()?)),
                    "CASE" => self.case_expr(),
                    "YEAR" | "MONTH" => {
                        self.pos += 1;
                        self.expect_sym("(")?;
                        let arg = self.expr()?;
                        self.expect_sym(")")?;
                        let f = if kw == "YEAR" { Func::Year } else { Func::Month };
                        Ok(Expr::Func(f, vec![arg]))
                    }
                    _ => Ok(Expr::Col(self.colref()?)),
                }
            }
            other => Err(RelError::Parse(format!("expected expression, found {other:?}"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr, RelError> {
        self.expect_keyword("CASE")?;
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let cond = self
                .qexpr()?
                .into_base()
                .ok_or_else(|| RelError::Parse("subquery not allowed in CASE".into()))?;
            self.expect_keyword("THEN")?;
            let then = self.expr()?;
            branches.push((cond, then));
        }
        if branches.is_empty() {
            return Err(RelError::Parse("CASE requires at least one WHEN".into()));
        }
        let otherwise = if self.eat_keyword("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_keyword("END")?;
        Ok(Expr::Case { branches, otherwise })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_join_query() {
        let q = parse(
            "SELECT c.name, o.total FROM customer c, orders o \
             WHERE c.custkey = o.custkey AND o.total > 100.5",
        )
        .unwrap();
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0], TableRef::aliased("customer", "c"));
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse(
            "SELECT n.name, SUM(o.total) AS revenue, COUNT(*) \
             FROM nation n, orders o WHERE n.nk = o.nk \
             GROUP BY n.name HAVING SUM(o.total) > 0",
        );
        // HAVING with aggregates: the parser treats SUM(...) inside HAVING as
        // an error for now? No — HAVING parses qexpr; SUM( is an ident
        // followed by '(' which primary() parses as a column ref... ensure it
        // errors clearly rather than mis-parsing.
        match q {
            Ok(stmt) => {
                assert_eq!(stmt.group_by.len(), 1);
                assert_eq!(stmt.items.len(), 3);
            }
            Err(e) => panic!("should parse: {e}"),
        }
    }

    #[test]
    fn explicit_joins() {
        let q =
            parse("SELECT a.x FROM r a LEFT JOIN s b ON a.k = b.k FULL OUTER JOIN t ON b.j = t.j")
                .unwrap();
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].kind, JoinKind::Left);
        assert_eq!(q.joins[1].kind, JoinKind::Full);
        assert_eq!(q.joins[1].table, TableRef::plain("t"));
    }

    #[test]
    fn subqueries() {
        let q = parse(
            "SELECT o.k FROM orders o WHERE EXISTS (SELECT l.k FROM lineitem l WHERE l.k = o.k) \
             AND o.q < (SELECT AVG(l2.q) FROM lineitem l2 WHERE l2.p = o.p) \
             AND o.k IN (SELECT x.k FROM x)",
        )
        .unwrap();
        let conj = q.where_clause.unwrap().conjuncts();
        assert_eq!(conj.len(), 3);
        assert!(matches!(conj[0], QExpr::Exists { negated: false, .. }));
        assert!(matches!(conj[1], QExpr::CmpSubquery { op: CmpOp::Lt, .. }));
        assert!(matches!(conj[2], QExpr::InSubquery { negated: false, .. }));
    }

    #[test]
    fn not_exists() {
        let q = parse("SELECT a.x FROM a WHERE NOT EXISTS (SELECT b.y FROM b WHERE b.y = a.x)")
            .unwrap();
        assert!(matches!(q.where_clause.unwrap(), QExpr::Exists { negated: true, .. }));
    }

    #[test]
    fn boolean_grouping_and_or() {
        let q =
            parse("SELECT t.a FROM t WHERE (t.a = 1 OR t.b = 2) AND (t.c = 3 OR t.d = 4)").unwrap();
        let conj = q.where_clause.unwrap().conjuncts();
        assert_eq!(conj.len(), 2);
        assert!(matches!(&conj[0], QExpr::Or(es) if es.len() == 2));
    }

    #[test]
    fn parenthesized_arithmetic_is_not_boolean_group() {
        let q = parse("SELECT t.a FROM t WHERE (t.a + t.b) > 3").unwrap();
        match q.where_clause.unwrap() {
            QExpr::Base(Expr::Cmp(CmpOp::Gt, _, _)) => {}
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn case_like_between_in() {
        let q = parse(
            "SELECT CASE WHEN t.a LIKE 'PROMO%' THEN t.b ELSE 0 END AS x FROM t \
             WHERE t.d BETWEEN DATE '1995-01-01' AND DATE '1996-01-01' \
             AND t.m IN ('A', 'B') AND t.n IS NOT NULL",
        )
        .unwrap();
        assert!(matches!(q.items[0], SelectItem::Expr { expr: Expr::Case { .. }, alias: Some(_) }));
        let conj = q.where_clause.unwrap().conjuncts();
        assert_eq!(conj.len(), 3);
    }

    #[test]
    fn roundtrip_through_display() {
        let sql = "SELECT n.name, SUM(o.total) AS rev FROM nation n, orders o \
                   WHERE n.nk = o.nk AND o.d >= DATE '1995-01-01' GROUP BY n.name";
        let q1 = parse(sql).unwrap();
        let q2 = parse(&q1.to_string()).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a.b FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE a >").is_err());
        assert!(parse("SELECT a FROM t extra junk +").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn count_star_and_year() {
        let q = parse("SELECT COUNT(*), YEAR(o.d) FROM orders o GROUP BY o.d").unwrap();
        assert!(matches!(q.items[0], SelectItem::Agg { func: AggFunc::CountStar, .. }));
        assert!(matches!(q.items[1], SelectItem::Expr { expr: Expr::Func(Func::Year, _), .. }));
    }
}
