//! Abstract syntax for the SQL subset.

use std::fmt;
use vcsql_relation::agg::AggFunc;
use vcsql_relation::expr::{CmpOp, ColRef, Expr};

/// A table reference with an alias (`lineitem l`; alias defaults to the
/// relation name).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub relation: String,
    pub alias: String,
}

impl TableRef {
    /// Reference with an explicit alias.
    pub fn aliased(relation: impl Into<String>, alias: impl Into<String>) -> TableRef {
        TableRef { relation: relation.into(), alias: alias.into() }
    }

    /// Reference aliased by its own name.
    pub fn plain(relation: impl Into<String>) -> TableRef {
        let r = relation.into();
        TableRef { alias: r.clone(), relation: r }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.alias == self.relation {
            write!(f, "{}", self.relation)
        } else {
            write!(f, "{} {}", self.relation, self.alias)
        }
    }
}

/// Explicit join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinKind::Inner => "JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Full => "FULL JOIN",
        })
    }
}

/// An explicit `kind JOIN table ON condition` attached to the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    pub kind: JoinKind,
    pub table: TableRef,
    pub on: Expr,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A scalar expression (usually a plain column).
    Expr { expr: Expr, alias: Option<String> },
    /// An aggregate call `FUNC(arg)`; `arg` is `None` for `COUNT(*)`.
    Agg { func: AggFunc, arg: Option<Expr>, alias: Option<String> },
}

impl SelectItem {
    /// The output column name for this item.
    pub fn output_name(&self, index: usize) -> String {
        match self {
            SelectItem::Expr { alias: Some(a), .. } | SelectItem::Agg { alias: Some(a), .. } => {
                a.clone()
            }
            SelectItem::Expr { expr: Expr::Col(c), .. } => c.name.clone(),
            SelectItem::Agg { func, .. } => format!("{func}_{index}").to_lowercase(),
            _ => format!("col_{index}"),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            SelectItem::Agg { func, arg, alias } => {
                match (func, arg) {
                    (AggFunc::CountStar, _) => write!(f, "COUNT(*)")?,
                    (_, Some(e)) => write!(f, "{func}({e})")?,
                    (_, None) => write!(f, "{func}(*)")?,
                }
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

/// WHERE/HAVING-level expression: scalar expressions plus subquery
/// predicates, combined with AND/OR/NOT.
#[derive(Debug, Clone, PartialEq)]
pub enum QExpr {
    /// A subquery-free scalar predicate.
    Base(Expr),
    /// `[NOT] EXISTS (subquery)` — possibly correlated.
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        expr: Expr,
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// `expr op (scalar subquery)`.
    CmpSubquery {
        expr: Expr,
        op: CmpOp,
        query: Box<SelectStmt>,
    },
    And(Vec<QExpr>),
    Or(Vec<QExpr>),
    Not(Box<QExpr>),
}

impl QExpr {
    /// Flatten a conjunction into its conjuncts.
    pub fn conjuncts(self) -> Vec<QExpr> {
        match self {
            QExpr::And(es) => es.into_iter().flat_map(QExpr::conjuncts).collect(),
            other => vec![other],
        }
    }

    /// True iff no subquery occurs anywhere inside.
    pub fn is_base(&self) -> bool {
        match self {
            QExpr::Base(_) => true,
            QExpr::And(es) | QExpr::Or(es) => es.iter().all(QExpr::is_base),
            QExpr::Not(e) => e.is_base(),
            _ => false,
        }
    }

    /// Convert to a plain [`Expr`] if subquery-free.
    pub fn into_base(self) -> Option<Expr> {
        match self {
            QExpr::Base(e) => Some(e),
            QExpr::And(es) => {
                let parts: Option<Vec<Expr>> = es.into_iter().map(QExpr::into_base).collect();
                parts.map(Expr::And)
            }
            QExpr::Or(es) => {
                let parts: Option<Vec<Expr>> = es.into_iter().map(QExpr::into_base).collect();
                parts.map(Expr::Or)
            }
            QExpr::Not(e) => e.into_base().map(|e| Expr::Not(Box::new(e))),
            _ => None,
        }
    }
}

impl fmt::Display for QExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QExpr::Base(e) => write!(f, "{e}"),
            QExpr::Exists { query, negated } => {
                write!(f, "{}EXISTS ({query})", if *negated { "NOT " } else { "" })
            }
            QExpr::InSubquery { expr, query, negated } => {
                write!(f, "{expr} {}IN ({query})", if *negated { "NOT " } else { "" })
            }
            QExpr::CmpSubquery { expr, op, query } => write!(f, "{expr} {op} ({query})"),
            QExpr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            QExpr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            QExpr::Not(e) => write!(f, "NOT ({e})"),
        }
    }
}

/// One HAVING conjunct: `FUNC(arg) op rhs` (the shape used throughout the
/// TPC workloads, e.g. `HAVING SUM(l_quantity) > 300`).
#[derive(Debug, Clone, PartialEq)]
pub struct HavingPred {
    pub func: AggFunc,
    pub arg: Option<Expr>,
    pub op: CmpOp,
    pub rhs: Expr,
}

impl fmt::Display for HavingPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.func, &self.arg) {
            (AggFunc::CountStar, _) => write!(f, "COUNT(*)")?,
            (func, Some(e)) => write!(f, "{func}({e})")?,
            (func, None) => write!(f, "{func}(*)")?,
        }
        write!(f, " {} {}", self.op, self.rhs)
    }
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    /// Explicit `JOIN ... ON` clauses (in FROM order).
    pub joins: Vec<JoinSpec>,
    pub where_clause: Option<QExpr>,
    pub group_by: Vec<ColRef>,
    /// Conjunction of aggregate comparisons.
    pub having: Vec<HavingPred>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        for j in &self.joins {
            write!(f, " {} {} ON {}", j.kind, j.table, j.on)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        for (i, h) in self.having.iter().enumerate() {
            write!(f, " {} {h}", if i == 0 { "HAVING" } else { "AND" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::Value;

    #[test]
    fn conjunct_flattening() {
        let a = QExpr::Base(Expr::Lit(Value::Bool(true)));
        let b = QExpr::Base(Expr::Lit(Value::Bool(false)));
        let c = QExpr::Base(Expr::Lit(Value::Null));
        let e = QExpr::And(vec![a.clone(), QExpr::And(vec![b.clone(), c.clone()])]);
        assert_eq!(e.conjuncts().len(), 3);
        assert_eq!(a.conjuncts().len(), 1);
    }

    #[test]
    fn output_names() {
        let item = SelectItem::Agg { func: AggFunc::Sum, arg: None, alias: None };
        assert_eq!(item.output_name(2), "sum_2");
        let item = SelectItem::Expr { expr: Expr::col(ColRef::qualified("l", "qty")), alias: None };
        assert_eq!(item.output_name(0), "qty");
    }
}
