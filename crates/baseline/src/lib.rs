//! # vcsql-baseline — reference relational executors
//!
//! The comparison systems of the paper's evaluation, rebuilt in miniature:
//!
//! * [`row`] — classical row-store operators: selection, projection, hash
//!   join, sort-merge join, (index) nested-loop join, semi/anti join, hash
//!   aggregation, and a sequential Yannakakis semi-join reducer;
//! * [`exec`] — a binary-join-at-a-time query executor over an
//!   [`Analyzed`](vcsql_query::Analyzed) query (greedy smallest-first join
//!   order), playing the role of PostgreSQL / RDBMS-X / RDBMS-Y row stores.
//!   It doubles as the **correctness oracle** for the vertex-centric
//!   executor;
//! * [`columnar`] — a dictionary-encoded in-memory column store with
//!   vectorized scan/filter/aggregate fast paths, playing the role of
//!   RDBMS-X IM (the in-memory column store the paper loses to on scans and
//!   scalar aggregation);
//! * [`index`] — hash indexes on PK/FK columns, standing in for the B-tree
//!   indexes the TPC protocol prescribes (used for index-nested-loop joins
//!   and for the loading-cost experiments).

pub mod columnar;
pub mod exec;
pub mod index;
pub mod row;

pub use columnar::ColumnarDatabase;
pub use exec::{execute, ExecConfig, JoinAlgo};
pub use index::HashIndex;
