//! A binary-join-at-a-time executor over analyzed queries.
//!
//! This is the stand-in for the paper's reference RDBMSs: filters are pushed
//! to base tables, joins run one at a time in a greedy smallest-first order
//! (hash or sort-merge per [`ExecConfig`]), subqueries are evaluated first
//! and turned into semi/anti-join key sets or scalar(-map) comparisons, and
//! grouping/aggregation runs over the final joined result. It is also the
//! correctness oracle for the vertex-centric executor: both must produce
//! identical bags.

use crate::row::{self, ColId, Inter};
use vcsql_query::analyze::{Analyzed, OutputItem, SubqueryPred};
use vcsql_relation::agg::{Accumulator, AggFunc};
use vcsql_relation::expr::{BoundExpr, CmpOp, ColRef, Expr};
use vcsql_relation::schema::{Column, Schema};
use vcsql_relation::{DataType, Database, RelError, Relation, Tuple, Value};

type Result<T> = std::result::Result<T, RelError>;

/// Which join algorithm the executor uses (the paper's RDBMSs pick among
/// hash, sort-merge and nested-loop; we expose the choice for benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    #[default]
    Hash,
    SortMerge,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecConfig {
    pub join: JoinAlgo,
}

/// Execute an analyzed query against a database.
pub fn execute(a: &Analyzed, db: &Database, cfg: ExecConfig) -> Result<Relation> {
    // ---- subqueries first: reduce to key sets / scalar filters -------------
    let mut derived: Vec<DerivedPred> = Vec::new();
    for sq in &a.subqueries {
        derived.push(eval_subquery(sq, a, db, cfg)?);
    }

    // ---- base tables with pushed-down filters -------------------------------
    let mut inters: Vec<Inter> = Vec::with_capacity(a.tables.len());
    for (t, binding) in a.tables.iter().enumerate() {
        let rel = db.get(&binding.relation)?;
        let mut inter = Inter::from_relation(t, binding.schema.arity(), &rel.tuples);
        for f in &binding.filters {
            let bound = bind_expr(f, a, &inter.cols)?;
            inter = inter.filter(|row| bound.passes(row))?;
        }
        // Subquery-derived constraints that touch only this table.
        for d in &derived {
            if d.single_table == Some(t) {
                inter = d.apply(a, inter)?;
            }
        }
        inters.push(inter);
    }

    // ---- greedy join order ---------------------------------------------------
    let n = inters.len();
    let mut joined: Option<(Inter, Vec<bool>)> = None;
    if n > 0 {
        let start = (0..n).min_by_key(|&i| inters[i].len()).unwrap();
        let mut in_set = vec![false; n];
        in_set[start] = true;
        let mut cur = inters[start].clone();
        for _ in 1..n {
            // Tables connected to the current set by some join predicate.
            let mut candidates: Vec<usize> = (0..n)
                .filter(|&t| {
                    !in_set[t]
                        && a.joins.iter().any(|j| {
                            (in_set[j.left.0] && j.right.0 == t)
                                || (in_set[j.right.0] && j.left.0 == t)
                        })
                })
                .collect();
            candidates.sort_by_key(|&t| inters[t].len());
            let next = match candidates.first() {
                Some(&t) => t,
                // Disconnected: cross product with the smallest remaining.
                None => (0..n).filter(|&t| !in_set[t]).min_by_key(|&t| inters[t].len()).unwrap(),
            };
            let on: Vec<(ColId, ColId)> = a
                .joins
                .iter()
                .filter_map(|j| {
                    if in_set[j.left.0] && j.right.0 == next {
                        Some((j.left, j.right))
                    } else if in_set[j.right.0] && j.left.0 == next {
                        Some((j.right, j.left))
                    } else {
                        None
                    }
                })
                .collect();
            cur = if on.is_empty() {
                row::cross_join(&cur, &inters[next])
            } else {
                match cfg.join {
                    JoinAlgo::Hash => row::hash_join(&cur, &inters[next], &on)?,
                    JoinAlgo::SortMerge => row::sort_merge_join(&cur, &inters[next], &on)?,
                }
            };
            in_set[next] = true;
        }
        joined = Some((cur, in_set));
    }
    let mut result = joined.map(|(i, _)| i).unwrap_or(Inter { cols: vec![], rows: vec![] });

    // ---- residual predicates --------------------------------------------------
    for f in &a.residual {
        let bound = bind_expr(f, a, &result.cols)?;
        result = result.filter(|row| bound.passes(row))?;
    }
    for d in &derived {
        if d.single_table.is_none() {
            result = d.apply(a, result)?;
        }
    }

    finishing(a, result)
}

/// Positions of `cols` inside an intermediate's layout.
fn inter_cols_positions(layout: &[ColId], cols: &[ColId]) -> Vec<usize> {
    cols.iter()
        .map(|c| layout.iter().position(|x| x == c).expect("derived predicate column present"))
        .collect()
}

/// Grouping, aggregation, HAVING and projection.
pub fn finishing(a: &Analyzed, result: Inter) -> Result<Relation> {
    let has_group = !a.group_by.is_empty();
    let has_agg = a.has_aggregates() || !a.having.is_empty();

    if !has_group && !has_agg {
        // Plain projection.
        let mut rows = Vec::with_capacity(result.len());
        let items: Vec<ProjItem> = a
            .items
            .iter()
            .map(|item| ProjItem::bind(item, a, &result.cols))
            .collect::<Result<_>>()?;
        for row in &result.rows {
            let mut out = Vec::with_capacity(items.len());
            for item in &items {
                out.push(item.eval_row(row)?);
            }
            rows.push(out);
        }
        return build_output(a, rows);
    }

    // Hash aggregation over group keys (a single global group when GROUP BY
    // is absent).
    let key_pos: Vec<usize> =
        a.group_by.iter().map(|c| result.col_index(*c)).collect::<Result<_>>()?;
    let items: Vec<ProjItem> =
        a.items.iter().map(|item| ProjItem::bind(item, a, &result.cols)).collect::<Result<_>>()?;
    let having_args: Vec<(AggFunc, Option<BoundExpr>, CmpOp, BoundExpr)> = a
        .having
        .iter()
        .map(|h| {
            let arg = match &h.arg {
                Some(e) => Some(bind_expr(e, a, &result.cols)?),
                None => None,
            };
            let rhs = bind_expr(&h.rhs, a, &result.cols)?;
            Ok((h.func, arg, h.op, rhs))
        })
        .collect::<Result<_>>()?;

    struct Group {
        rep: Vec<Value>,
        accs: Vec<Accumulator>,
        having: Vec<Accumulator>,
    }
    let mut groups: vcsql_relation::FxHashMap<Vec<Value>, Group> =
        vcsql_relation::FxHashMap::default();
    // A scalar aggregate over zero rows must still produce one output row.
    if !has_group {
        groups.insert(
            Vec::new(),
            Group {
                rep: vec![Value::Null; result.cols.len()],
                accs: init_accs(&items),
                having: a.having.iter().map(|h| Accumulator::new(h.func)).collect(),
            },
        );
    }
    for row in &result.rows {
        let key: Vec<Value> = key_pos.iter().map(|&i| row[i].clone()).collect();
        let g = groups.entry(key).or_insert_with(|| Group {
            rep: row.clone(),
            accs: init_accs(&items),
            having: a.having.iter().map(|h| Accumulator::new(h.func)).collect(),
        });
        for (item, acc) in items.iter().zip(&mut g.accs) {
            if let ProjItem::Agg { arg, .. } = item {
                let v = match arg {
                    Some(e) => e.eval(row)?,
                    None => Value::Int(1),
                };
                acc.update(&v)?;
            }
        }
        for ((_, arg, _, _), acc) in having_args.iter().zip(&mut g.having) {
            let v = match arg {
                Some(e) => e.eval(row)?,
                None => Value::Int(1),
            };
            acc.update(&v)?;
        }
    }

    // Deterministic output order: sort groups by key.
    let mut entries: Vec<(Vec<Value>, Group)> = groups.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    let mut rows = Vec::with_capacity(entries.len());
    'groups: for (_, g) in entries {
        for ((_, _, op, rhs), acc) in having_args.iter().zip(&g.having) {
            let rv = rhs.eval(&g.rep)?;
            if acc.finish().sql_cmp(&rv).map(|o| op.holds(o)) != Some(true) {
                continue 'groups;
            }
        }
        let mut out = Vec::with_capacity(items.len());
        for (item, acc) in items.iter().zip(&g.accs) {
            out.push(match item {
                ProjItem::Agg { .. } => acc.finish(),
                other => other.eval_row(&g.rep)?,
            });
        }
        rows.push(out);
    }
    build_output(a, rows)
}

fn init_accs(items: &[ProjItem]) -> Vec<Accumulator> {
    items
        .iter()
        .map(|i| match i {
            ProjItem::Agg { func, .. } => Accumulator::new(*func),
            _ => Accumulator::new(AggFunc::CountStar), // placeholder, unused
        })
        .collect()
}

/// A bound select item.
enum ProjItem {
    Col(usize),
    Expr(BoundExpr),
    Agg { func: AggFunc, arg: Option<BoundExpr> },
}

impl ProjItem {
    fn bind(item: &OutputItem, a: &Analyzed, layout: &[ColId]) -> Result<ProjItem> {
        Ok(match item {
            OutputItem::Col { table, col, .. } => {
                let pos = layout
                    .iter()
                    .position(|&c| c == (*table, *col))
                    .ok_or_else(|| RelError::Other("output column missing from result".into()))?;
                ProjItem::Col(pos)
            }
            OutputItem::Expr { expr, .. } => ProjItem::Expr(bind_expr_cols(expr, a, layout)?),
            OutputItem::Agg { func, arg, .. } => ProjItem::Agg {
                func: *func,
                arg: match arg {
                    Some(e) => Some(bind_expr_cols(e, a, layout)?),
                    None => None,
                },
            },
        })
    }

    fn eval_row(&self, row: &[Value]) -> Result<Value> {
        match self {
            ProjItem::Col(i) => Ok(row[*i].clone()),
            ProjItem::Expr(e) => e.eval(row),
            ProjItem::Agg { .. } => Err(RelError::Other("aggregate outside grouping".into())),
        }
    }
}

/// Bind an (alias-qualified) expression against an intermediate layout.
pub fn bind_expr(e: &Expr, a: &Analyzed, layout: &[ColId]) -> Result<BoundExpr> {
    bind_expr_cols(e, a, layout)
}

fn bind_expr_cols(e: &Expr, a: &Analyzed, layout: &[ColId]) -> Result<BoundExpr> {
    e.bind(&|c: &ColRef| {
        let tc = a.resolve(c)?;
        layout
            .iter()
            .position(|&x| x == tc)
            .ok_or_else(|| RelError::Other(format!("column {c} not in intermediate layout")))
    })
}

/// Build the output relation, inferring column types from the first
/// non-NULL value of each column.
fn build_output(a: &Analyzed, rows: Vec<Vec<Value>>) -> Result<Relation> {
    let names = a.output_names();
    let mut types: Vec<DataType> = Vec::with_capacity(names.len());
    for i in 0..names.len() {
        let ty = rows.iter().filter_map(|r| r[i].data_type()).next().unwrap_or(DataType::Int);
        types.push(ty);
    }
    let schema = Schema::new(
        "result",
        names.iter().zip(&types).map(|(n, t)| Column::new(n.clone(), *t)).collect(),
    );
    let mut rel = Relation::empty(schema);
    for r in rows {
        rel.push(Tuple::new(r))?;
    }
    Ok(rel)
}

// --------------------------------------------------------------------------
// Subqueries
// --------------------------------------------------------------------------

/// Subquery results lowered to checkable predicates.
pub struct DerivedPred {
    /// Outer columns the predicate reads (in fixed order).
    outer_cols: Vec<ColId>,
    pred: LoweredPred,
    /// When all outer columns live on one table, the predicate is pushed to
    /// that table's scan.
    single_table: Option<usize>,
}

/// The lowered predicate forms.
pub enum LoweredPred {
    /// Key-set membership (EXISTS / IN → semi; negated → anti).
    InSet { keys: vcsql_relation::FxHashSet<Vec<Value>>, negated: bool },
    /// `expr op scalar` with a per-correlation-key scalar map (empty
    /// correlation = one global key).
    ScalarCmp {
        op: CmpOp,
        map: vcsql_relation::FxHashMap<Vec<Value>, Value>,
        /// Positions: the LAST outer col positions are the correlation key;
        /// the expression is bound separately during checking.
        expr: Expr,
    },
}

impl LoweredPred {
    /// Check a row. `pos` maps `outer_cols` order to row positions.
    fn check(&self, row: &[Value], pos: &[usize]) -> Result<bool> {
        match self {
            LoweredPred::InSet { keys, negated } => {
                let mut key = Vec::with_capacity(pos.len());
                for &i in pos {
                    if row[i].is_null() {
                        // NULL never equals anything: EXISTS fails, NOT
                        // EXISTS over an equality correlation holds.
                        return Ok(*negated);
                    }
                    key.push(row[i].clone());
                }
                Ok(keys.contains(&key) != *negated)
            }
            LoweredPred::ScalarCmp { .. } => {
                unreachable!("ScalarCmp checked via check_scalar with a bound expression")
            }
        }
    }
}

/// Evaluate a subquery into a [`DerivedPred`] against the outer query.
fn eval_subquery(
    sq: &SubqueryPred,
    _outer: &Analyzed,
    db: &Database,
    cfg: ExecConfig,
) -> Result<DerivedPred> {
    match vcsql_query::analyze::lower_subquery(sq) {
        vcsql_query::analyze::LoweredSubquery::KeySet { sub, outer_cols, negated } => {
            let rel = execute(&sub, db, cfg)?;
            let keys = rel.tuples.iter().map(|t| t.0.to_vec()).collect();
            let single = single_table_of(&outer_cols);
            Ok(DerivedPred {
                outer_cols,
                pred: LoweredPred::InSet { keys, negated },
                single_table: single,
            })
        }
        vcsql_query::analyze::LoweredSubquery::ScalarMap {
            sub,
            outer_cols,
            outer_expr,
            op,
            key_arity,
        } => {
            let rel = execute(&sub, db, cfg)?;
            let mut map = vcsql_relation::FxHashMap::default();
            for t in &rel.tuples {
                map.insert(t.0[..key_arity].to_vec(), t.0[key_arity].clone());
            }
            Ok(DerivedPred {
                outer_cols,
                pred: LoweredPred::ScalarCmp { op, map, expr: outer_expr },
                single_table: None,
            })
        }
    }
}

fn single_table_of(cols: &[ColId]) -> Option<usize> {
    let first = cols.first()?.0;
    cols.iter().all(|c| c.0 == first).then_some(first)
}

impl DerivedPred {
    /// Apply this predicate to an intermediate result (used for scalar
    /// comparisons and multi-table key sets).
    pub fn apply(&self, a: &Analyzed, inter: Inter) -> Result<Inter> {
        match &self.pred {
            LoweredPred::InSet { .. } => {
                let pos = inter_cols_positions(&inter.cols, &self.outer_cols);
                inter.filter(|row| self.pred.check(row, &pos))
            }
            LoweredPred::ScalarCmp { op, map, expr } => {
                let bound = bind_expr(expr, a, &inter.cols)?;
                let pos = inter_cols_positions(&inter.cols, &self.outer_cols);
                inter.filter(|row| {
                    let key: Vec<Value> = pos.iter().map(|&i| row[i].clone()).collect();
                    let rhs = match map.get(&key) {
                        Some(v) => v,
                        None => return Ok(false), // no qualifying inner rows
                    };
                    let lhs = bound.eval(row)?;
                    Ok(lhs.sql_cmp(rhs).map(|o| op.holds(o)) == Some(true))
                })
            }
        }
    }
}
