//! Hash indexes on relation columns.
//!
//! Stand-ins for the B-tree PK/FK indexes the TPC protocol prescribes for
//! the RDBMS contenders: built after load (their build time and size feed
//! the Table 1/2 and Fig 14 experiments) and used by index-nested-loop
//! lookups.

use vcsql_relation::{fx, FxHashMap, Relation, Value};

/// A hash index from one column's values to tuple positions.
#[derive(Debug, Clone)]
pub struct HashIndex {
    pub relation: String,
    pub column: usize,
    map: FxHashMap<Value, Vec<u32>>,
}

impl HashIndex {
    /// Build over a relation column (NULLs are not indexed).
    pub fn build(rel: &Relation, column: usize) -> HashIndex {
        let mut map: FxHashMap<Value, Vec<u32>> = fx::map_with_capacity(rel.len());
        for (i, t) in rel.tuples.iter().enumerate() {
            let v = t.get(column);
            if !v.is_null() {
                map.entry(v.clone()).or_default().push(i as u32);
            }
        }
        HashIndex { relation: rel.name().to_string(), column, map }
    }

    /// Tuple positions with the given value.
    pub fn lookup(&self, v: &Value) -> &[u32] {
        self.map.get(v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Approximate footprint in bytes.
    pub fn deep_size(&self) -> usize {
        self.map.iter().map(|(k, v)| k.deep_size() + v.len() * 4 + 48).sum::<usize>()
    }
}

/// Build the PK/FK indexes the TPC protocol prescribes: one per primary-key
/// column and one per foreign-key column.
pub fn build_pk_fk_indexes(rel: &Relation) -> Vec<HashIndex> {
    let mut cols: Vec<usize> = rel.schema.primary_key.clone();
    for fk in &rel.schema.foreign_keys {
        for c in &fk.columns {
            if let Ok(i) = rel.schema.column_index(c) {
                if !cols.contains(&i) {
                    cols.push(i);
                }
            }
        }
    }
    cols.into_iter().map(|c| HashIndex::build(rel, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::{Column, Schema};
    use vcsql_relation::{DataType, Tuple};

    fn rel() -> Relation {
        let schema = Schema::new(
            "orders",
            vec![Column::new("ok", DataType::Int), Column::new("ck", DataType::Int)],
        )
        .with_primary_key(&["ok"])
        .with_foreign_key(&["ck"], "customer", &["ck"]);
        Relation::from_tuples(
            schema,
            vec![
                Tuple::new(vec![Value::Int(1), Value::Int(10)]),
                Tuple::new(vec![Value::Int(2), Value::Int(10)]),
                Tuple::new(vec![Value::Int(3), Value::Null]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_and_nulls() {
        let idx = HashIndex::build(&rel(), 1);
        assert_eq!(idx.lookup(&Value::Int(10)), &[0, 1]);
        assert!(idx.lookup(&Value::Int(99)).is_empty());
        assert!(idx.lookup(&Value::Null).is_empty());
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn pk_fk_indexes() {
        let idxs = build_pk_fk_indexes(&rel());
        assert_eq!(idxs.len(), 2);
        assert_eq!(idxs[0].column, 0);
        assert_eq!(idxs[1].column, 1);
        assert!(idxs[0].deep_size() > 0);
    }
}
