//! Row-store operators: the classical join/selection/aggregation toolbox.
//!
//! All operators work on a lightweight `(columns, rows)` representation where
//! columns are identified by `(table, col)` pairs from the analyzed query, so
//! intermediate results of multi-table plans can name their provenance.

use vcsql_relation::{RelError, Tuple, Value};

type Result<T> = std::result::Result<T, RelError>;

/// A column of an intermediate result: `(table index, column index)` from the
/// analyzed query's FROM list.
pub type ColId = (usize, usize);

/// An intermediate result: a bag of rows with provenance-tagged columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Inter {
    pub cols: Vec<ColId>,
    pub rows: Vec<Vec<Value>>,
}

impl Inter {
    /// Build from a base relation's tuples (table index `t`).
    pub fn from_relation(t: usize, arity: usize, tuples: &[Tuple]) -> Inter {
        Inter {
            cols: (0..arity).map(|c| (t, c)).collect(),
            rows: tuples.iter().map(|tp| tp.0.to_vec()).collect(),
        }
    }

    /// Index of a column.
    pub fn col_index(&self, c: ColId) -> Result<usize> {
        self.cols
            .iter()
            .position(|&x| x == c)
            .ok_or_else(|| RelError::Other(format!("column {c:?} not in intermediate result")))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Keep rows satisfying `pred`.
    pub fn filter(mut self, mut pred: impl FnMut(&[Value]) -> Result<bool>) -> Result<Inter> {
        let mut err = None;
        self.rows.retain(|r| match pred(r) {
            Ok(keep) => keep,
            Err(e) => {
                err.get_or_insert(e);
                false
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(self),
        }
    }
}

/// Hash join `left ⋈ right` on the given column pairs (equi-join; NULL keys
/// never match, per SQL).
pub fn hash_join(left: &Inter, right: &Inter, on: &[(ColId, ColId)]) -> Result<Inter> {
    let lkeys: Vec<usize> = on.iter().map(|&(l, _)| left.col_index(l)).collect::<Result<_>>()?;
    let rkeys: Vec<usize> = on.iter().map(|&(_, r)| right.col_index(r)).collect::<Result<_>>()?;
    // Build on the smaller side.
    let (build, probe, bkeys, pkeys, build_is_left) = if left.len() <= right.len() {
        (left, right, &lkeys, &rkeys, true)
    } else {
        (right, left, &rkeys, &lkeys, false)
    };
    let mut table: vcsql_relation::FxHashMap<Vec<Value>, Vec<usize>> =
        vcsql_relation::fx::map_with_capacity(build.len());
    'rows: for (i, row) in build.rows.iter().enumerate() {
        let mut key = Vec::with_capacity(bkeys.len());
        for &k in bkeys {
            if row[k].is_null() {
                continue 'rows;
            }
            key.push(row[k].clone());
        }
        table.entry(key).or_default().push(i);
    }
    let mut out = Inter {
        cols: left.cols.iter().chain(right.cols.iter()).copied().collect(),
        rows: Vec::new(),
    };
    let mut key = Vec::with_capacity(pkeys.len());
    'probe: for prow in &probe.rows {
        key.clear();
        for &k in pkeys {
            if prow[k].is_null() {
                continue 'probe;
            }
            key.push(prow[k].clone());
        }
        if let Some(matches) = table.get(&key) {
            for &bi in matches {
                let brow = &build.rows[bi];
                let mut row = Vec::with_capacity(left.cols.len() + right.cols.len());
                if build_is_left {
                    row.extend_from_slice(brow);
                    row.extend_from_slice(prow);
                } else {
                    row.extend_from_slice(prow);
                    row.extend_from_slice(brow);
                }
                out.rows.push(row);
            }
        }
    }
    Ok(out)
}

/// Sort-merge join on a single column pair (the classic RDBMS alternative;
/// multi-key joins fall back to composite sort keys).
pub fn sort_merge_join(left: &Inter, right: &Inter, on: &[(ColId, ColId)]) -> Result<Inter> {
    let lkeys: Vec<usize> = on.iter().map(|&(l, _)| left.col_index(l)).collect::<Result<_>>()?;
    let rkeys: Vec<usize> = on.iter().map(|&(_, r)| right.col_index(r)).collect::<Result<_>>()?;
    let key_of = |row: &Vec<Value>, keys: &[usize]| -> Option<Vec<Value>> {
        let mut k = Vec::with_capacity(keys.len());
        for &i in keys {
            if row[i].is_null() {
                return None;
            }
            k.push(row[i].clone());
        }
        Some(k)
    };
    let mut ls: Vec<(Vec<Value>, &Vec<Value>)> =
        left.rows.iter().filter_map(|r| key_of(r, &lkeys).map(|k| (k, r))).collect();
    let mut rs: Vec<(Vec<Value>, &Vec<Value>)> =
        right.rows.iter().filter_map(|r| key_of(r, &rkeys).map(|k| (k, r))).collect();
    ls.sort_by(|a, b| a.0.cmp(&b.0));
    rs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Inter {
        cols: left.cols.iter().chain(right.cols.iter()).copied().collect(),
        rows: Vec::new(),
    };
    let (mut i, mut j) = (0, 0);
    while i < ls.len() && j < rs.len() {
        match ls[i].0.cmp(&rs[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // find the equal runs
                let ie = ls[i..].partition_point(|x| x.0 == ls[i].0) + i;
                let je = rs[j..].partition_point(|x| x.0 == rs[j].0) + j;
                for l in &ls[i..ie] {
                    for r in &rs[j..je] {
                        let mut row = l.1.clone();
                        row.extend_from_slice(r.1);
                        out.rows.push(row);
                    }
                }
                i = ie;
                j = je;
            }
        }
    }
    Ok(out)
}

/// Nested-loop join with an arbitrary row predicate (used for non-equi
/// conditions and as the brute-force oracle in property tests).
pub fn nested_loop_join(
    left: &Inter,
    right: &Inter,
    mut pred: impl FnMut(&[Value], &[Value]) -> Result<bool>,
) -> Result<Inter> {
    let mut out = Inter {
        cols: left.cols.iter().chain(right.cols.iter()).copied().collect(),
        rows: Vec::new(),
    };
    for l in &left.rows {
        for r in &right.rows {
            if pred(l, r)? {
                let mut row = l.clone();
                row.extend_from_slice(r);
                out.rows.push(row);
            }
        }
    }
    Ok(out)
}

/// Cartesian product.
pub fn cross_join(left: &Inter, right: &Inter) -> Inter {
    let mut out = Inter {
        cols: left.cols.iter().chain(right.cols.iter()).copied().collect(),
        rows: Vec::with_capacity(left.len() * right.len()),
    };
    for l in &left.rows {
        for r in &right.rows {
            let mut row = l.clone();
            row.extend_from_slice(r);
            out.rows.push(row);
        }
    }
    out
}

/// Semi-join: rows of `left` with at least one `right` partner on `on`.
/// With `anti = true`, rows with **no** partner (NULL keys never match, so a
/// NULL-keyed left row survives an anti-join — matching `NOT EXISTS`
/// semantics with an equality correlation).
pub fn semi_join(left: Inter, right: &Inter, on: &[(ColId, ColId)], anti: bool) -> Result<Inter> {
    let lkeys: Vec<usize> = on.iter().map(|&(l, _)| left.col_index(l)).collect::<Result<_>>()?;
    let rkeys: Vec<usize> = on.iter().map(|&(_, r)| right.col_index(r)).collect::<Result<_>>()?;
    let mut keys: vcsql_relation::FxHashSet<Vec<Value>> =
        vcsql_relation::fx::set_with_capacity(right.len());
    'rows: for row in &right.rows {
        let mut key = Vec::with_capacity(rkeys.len());
        for &k in &rkeys {
            if row[k].is_null() {
                continue 'rows;
            }
            key.push(row[k].clone());
        }
        keys.insert(key);
    }
    left.filter(|row| {
        let mut key = Vec::with_capacity(lkeys.len());
        for &k in &lkeys {
            if row[k].is_null() {
                return Ok(anti); // NULL never matches
            }
            key.push(row[k].clone());
        }
        Ok(keys.contains(&key) != anti)
    })
}

/// One join-tree edge for [`yannakakis_reduce`]: `(child, parent, on)` with
/// `on` the child-to-parent column equalities.
pub type JoinTreeEdge = (usize, usize, Vec<(ColId, ColId)>);

/// One semi-join reduction pass of Yannakakis' algorithm over a join tree:
/// children reduce parents bottom-up, then parents reduce children top-down.
/// `edges` lists `(child, parent, on)` in bottom-up order. Returns the
/// reduced relations.
pub fn yannakakis_reduce(mut rels: Vec<Inter>, edges: &[JoinTreeEdge]) -> Result<Vec<Inter>> {
    // Bottom-up: parent ⋉ child.
    for (child, parent, on) in edges {
        let flipped: Vec<(ColId, ColId)> = on.iter().map(|&(c, p)| (p, c)).collect();
        let reduced = semi_join(rels[*parent].clone(), &rels[*child], &flipped, false)?;
        rels[*parent] = reduced;
    }
    // Top-down: child ⋉ parent.
    for (child, parent, on) in edges.iter().rev() {
        let reduced = semi_join(rels[*child].clone(), &rels[*parent], on, false)?;
        rels[*child] = reduced;
    }
    Ok(rels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inter(t: usize, rows: Vec<Vec<i64>>) -> Inter {
        Inter {
            cols: (0..rows.first().map_or(0, Vec::len)).map(|c| (t, c)).collect(),
            rows: rows.into_iter().map(|r| r.into_iter().map(Value::Int).collect()).collect(),
        }
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let l = inter(0, vec![vec![1, 10], vec![2, 20], vec![2, 21], vec![3, 30]]);
        let r = inter(1, vec![vec![2, 200], vec![3, 300], vec![3, 301], vec![4, 400]]);
        let on = [((0, 0), (1, 0))];
        let h = hash_join(&l, &r, &on).unwrap();
        let s = sort_merge_join(&l, &r, &on).unwrap();
        let n = nested_loop_join(&l, &r, |a, b| Ok(a[0].sql_eq(&b[0]) == Some(true))).unwrap();
        let norm = |mut i: Inter| {
            i.rows.sort();
            i.rows
        };
        assert_eq!(norm(h.clone()), norm(n));
        assert_eq!(norm(h), norm(s));
    }

    #[test]
    fn null_keys_never_match() {
        let mut l = inter(0, vec![vec![1, 10]]);
        l.rows.push(vec![Value::Null, Value::Int(99)]);
        let mut r = inter(1, vec![vec![1, 100]]);
        r.rows.push(vec![Value::Null, Value::Int(88)]);
        let on = [((0, 0), (1, 0))];
        assert_eq!(hash_join(&l, &r, &on).unwrap().len(), 1);
        assert_eq!(sort_merge_join(&l, &r, &on).unwrap().len(), 1);
    }

    #[test]
    fn semi_and_anti_partition() {
        let l = inter(0, vec![vec![1], vec![2], vec![3]]);
        let r = inter(1, vec![vec![2], vec![2], vec![4]]);
        let on = [((0, 0), (1, 0))];
        let semi = semi_join(l.clone(), &r, &on, false).unwrap();
        let anti = semi_join(l.clone(), &r, &on, true).unwrap();
        assert_eq!(semi.len() + anti.len(), l.len());
        assert_eq!(semi.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn multi_key_join() {
        let l = inter(0, vec![vec![1, 1, 7], vec![1, 2, 8]]);
        let r = inter(1, vec![vec![1, 1, 9], vec![1, 3, 9]]);
        let on = [((0, 0), (1, 0)), ((0, 1), (1, 1))];
        let j = hash_join(&l, &r, &on).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.rows[0][2], Value::Int(7));
    }

    #[test]
    fn yannakakis_removes_dangling() {
        // R(a) - S(a,b) - T(b): chain; only a=2 b=5 survives everywhere.
        let r = inter(0, vec![vec![1], vec![2]]);
        let s = inter(1, vec![vec![2, 5], vec![2, 6], vec![9, 5]]);
        let t = inter(2, vec![vec![5], vec![7]]);
        // Edges bottom-up: (R child of S on a), (T child of S on b) then root S.
        let edges = vec![(0, 1, vec![((0, 0), (1, 0))]), (2, 1, vec![((2, 0), (1, 1))])];
        let reduced = yannakakis_reduce(vec![r, s, t], &edges).unwrap();
        assert_eq!(reduced[1].rows, vec![vec![Value::Int(2), Value::Int(5)]]);
        assert_eq!(reduced[0].rows, vec![vec![Value::Int(2)]]);
        assert_eq!(reduced[2].rows, vec![vec![Value::Int(5)]]);
    }

    #[test]
    fn cross_join_cardinality() {
        let l = inter(0, vec![vec![1], vec![2]]);
        let r = inter(1, vec![vec![3], vec![4], vec![5]]);
        assert_eq!(cross_join(&l, &r).len(), 6);
    }
}
