//! A dictionary-encoded in-memory column store ("RDBMS-X IM" stand-in).
//!
//! Each column is stored as a dictionary of distinct values plus a vector of
//! u32 codes — the compressed columnar format the paper credits for the IM
//! engine's fast scans, filters and scalar aggregation. The store offers
//! vectorized selection (predicate over one column → row-id bitmap) and
//! column-at-a-time aggregation; joins materialize rows and reuse the row
//! engine (like the hybrid row/column execution of real systems).

use vcsql_relation::{fx, Database, FxHashMap, Relation, Value};

/// One dictionary-encoded column.
#[derive(Debug, Clone)]
pub struct ColumnChunk {
    pub dict: Vec<Value>,
    pub codes: Vec<u32>,
}

/// Code reserved for NULL.
pub const NULL_CODE: u32 = u32::MAX;

impl ColumnChunk {
    /// Encode a column of values.
    pub fn encode(values: impl Iterator<Item = Value>) -> ColumnChunk {
        let mut dict = Vec::new();
        let mut codes = Vec::new();
        let mut seen: FxHashMap<Value, u32> = fx::map_with_capacity(64);
        for v in values {
            if v.is_null() {
                codes.push(NULL_CODE);
                continue;
            }
            let code = *seen.entry(v.clone()).or_insert_with(|| {
                dict.push(v);
                (dict.len() - 1) as u32
            });
            codes.push(code);
        }
        ColumnChunk { dict, codes }
    }

    /// Decode one row's value.
    pub fn get(&self, row: usize) -> Value {
        match self.codes[row] {
            NULL_CODE => Value::Null,
            c => self.dict[c as usize].clone(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Vectorized selection: evaluate `pred` once per *dictionary entry*,
    /// then scan codes — the classic dictionary-scan trick that makes
    /// column stores fast on low-cardinality filters.
    pub fn select(&self, mut pred: impl FnMut(&Value) -> bool) -> Vec<bool> {
        let dict_pass: Vec<bool> = self.dict.iter().map(&mut pred).collect();
        self.codes
            .iter()
            .map(|&c| if c == NULL_CODE { false } else { dict_pass[c as usize] })
            .collect()
    }

    /// Column-at-a-time SUM over the selected rows (Int/Float columns).
    pub fn sum(&self, selected: Option<&[bool]>) -> (f64, u64) {
        // Pre-decode dictionary to f64 once.
        let as_f64: Vec<Option<f64>> = self.dict.iter().map(Value::as_f64).collect();
        let mut total = 0.0;
        let mut n = 0;
        for (i, &c) in self.codes.iter().enumerate() {
            if c == NULL_CODE || selected.is_some_and(|s| !s[i]) {
                continue;
            }
            if let Some(x) = as_f64[c as usize] {
                total += x;
                n += 1;
            }
        }
        (total, n)
    }

    /// Approximate footprint in bytes (codes + dictionary).
    pub fn deep_size(&self) -> usize {
        self.codes.len() * 4 + self.dict.iter().map(Value::deep_size).sum::<usize>()
    }
}

/// A dictionary-encoded table.
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    pub name: String,
    pub columns: Vec<ColumnChunk>,
    pub rows: usize,
}

impl ColumnarTable {
    /// Encode a row-store relation.
    pub fn from_relation(rel: &Relation) -> ColumnarTable {
        let columns = (0..rel.schema.arity())
            .map(|c| ColumnChunk::encode(rel.tuples.iter().map(|t| t.get(c).clone())))
            .collect();
        ColumnarTable { name: rel.name().to_string(), columns, rows: rel.len() }
    }

    /// Decode back to rows (used when handing off to the row engine for
    /// joins).
    pub fn materialize_rows(&self, selected: Option<&[bool]>) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for r in 0..self.rows {
            if selected.is_some_and(|s| !s[r]) {
                continue;
            }
            out.push(self.columns.iter().map(|c| c.get(r)).collect());
        }
        out
    }

    /// Approximate footprint in bytes.
    pub fn deep_size(&self) -> usize {
        self.columns.iter().map(ColumnChunk::deep_size).sum()
    }
}

/// A database of columnar tables.
#[derive(Debug, Clone, Default)]
pub struct ColumnarDatabase {
    pub tables: Vec<ColumnarTable>,
}

impl ColumnarDatabase {
    /// Encode a whole row database.
    pub fn from_database(db: &Database) -> ColumnarDatabase {
        ColumnarDatabase { tables: db.relations().map(ColumnarTable::from_relation).collect() }
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Option<&ColumnarTable> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Total compressed size in bytes (the paper's Table 15 quantity).
    pub fn deep_size(&self) -> usize {
        self.tables.iter().map(ColumnarTable::deep_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::{Column, Schema};
    use vcsql_relation::{DataType, Tuple};

    fn rel() -> Relation {
        let schema = Schema::new(
            "t",
            vec![Column::new("k", DataType::Int), Column::new("s", DataType::Str)],
        );
        Relation::from_tuples(
            schema,
            vec![
                Tuple::new(vec![Value::Int(1), Value::str("a")]),
                Tuple::new(vec![Value::Int(2), Value::str("a")]),
                Tuple::new(vec![Value::Int(1), Value::Null]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn encode_dedups_dictionary() {
        let t = ColumnarTable::from_relation(&rel());
        assert_eq!(t.columns[0].dict.len(), 2); // 1, 2
        assert_eq!(t.columns[1].dict.len(), 1); // "a"
        assert_eq!(t.columns[1].codes[2], NULL_CODE);
        assert_eq!(t.columns[0].get(2), Value::Int(1));
        assert_eq!(t.columns[1].get(2), Value::Null);
    }

    #[test]
    fn select_and_sum() {
        let t = ColumnarTable::from_relation(&rel());
        let sel = t.columns[0].select(|v| v.as_i64() == Some(1));
        assert_eq!(sel, vec![true, false, true]);
        let (total, n) = t.columns[0].sum(Some(&sel));
        assert_eq!(total, 2.0);
        assert_eq!(n, 2);
        let (total_all, n_all) = t.columns[0].sum(None);
        assert_eq!(total_all, 4.0);
        assert_eq!(n_all, 3);
    }

    #[test]
    fn roundtrip_materialize() {
        let r = rel();
        let t = ColumnarTable::from_relation(&r);
        let rows = t.materialize_rows(None);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::Int(1), Value::str("a")]);
        // Compressed size is smaller than naive row size for repetitive data.
        assert!(t.deep_size() > 0);
    }

    #[test]
    fn database_wrapper() {
        let mut db = Database::new();
        db.add(rel());
        let cdb = ColumnarDatabase::from_database(&db);
        assert!(cdb.get("t").is_some());
        assert!(cdb.get("missing").is_none());
        assert!(cdb.deep_size() > 0);
    }
}
