//! # vcsql-dist — distributed-cluster simulation (paper Section 8.6)
//!
//! The paper's headline distributed claim is about *communication*: on a
//! 6-machine cluster, Spark's shuffle joins ship roughly 9x more data over
//! the network than TAG-join, whose reduction/collection traversals only
//! ever send along TAG edges (most of which a hash partitioning keeps
//! local) and whose collection messages carry already-reduced tables. The
//! framing follows Beame–Koutris–Suciu's communication-cost model for
//! parallel query processing; the relational-vs-graph comparison mirrors
//! Jindal et al.'s Vertica-vs-graph-engine studies.
//!
//! This crate makes the claim reproducible without a cluster:
//!
//! * [`tag_distributed`] — run the real TAG-join executor under a hash
//!   [`Partitioning`] of the TAG graph over `k`
//!   simulated machines, counting every message whose source and target
//!   vertices live on different machines;
//! * [`tag_calibrate`] / [`tag_profiled`] — the two-phase workload-aware
//!   loop: a calibration run under the hash baseline observes per-edge-label
//!   traffic (a [`TrafficProfile`]), which re-partitions the TAG under
//!   [`PartitionStrategy::Workload`] for the measured run;
//! * [`SparkModel`] — a shuffle-join network-cost model that executes the
//!   same plan with exact intermediate cardinalities and charges Spark-style
//!   exchanges (hash shuffles, broadcasts below the threshold);
//! * [`modelled_runtime`] — combine measured local compute with modelled
//!   network time at a given bandwidth (the paper's Fig 16 runtime model).
//!
//! The multi-query lifecycle — prepared statements behind a plan cache, one
//! placement shared across queries, *online* repartitioning as the mix
//! drifts — lives in the `vcsql-session` crate (`Session` / `Cluster`); its
//! `Cluster` builder subsumes the older strategy-taking free functions that
//! once lived here.

pub mod netstats;
pub mod spark;

pub use netstats::{unsafe_row_bytes, NetStats};
pub use spark::SparkModel;
pub use vcsql_bsp::{PartitionDiagnostics, PartitionStrategy, TrafficProfile};

use vcsql_bsp::{EngineConfig, Partitioning};
use vcsql_core::{ExecOutput, TagJoinExecutor};
use vcsql_query::analyze::Analyzed;
use vcsql_relation::RelError;
use vcsql_tag::TagGraph;

type Result<T> = std::result::Result<T, RelError>;

/// Build a machine partitioning of `tag` with the given strategy. The TAG's
/// attribute vertices are the anchors: under `CoLocate`/`Refined` they
/// hash-place and tuple vertices cluster around them.
pub fn tag_partitioning(
    tag: &TagGraph,
    machines: usize,
    strategy: &PartitionStrategy,
) -> Partitioning {
    strategy.partition(tag.graph(), machines, &|v| !tag.is_tuple_vertex(v))
}

/// Phase 1 of the workload-aware loop: run `workload` once under the hash
/// baseline on `machines` simulated machines and return the observed
/// per-edge-label [`TrafficProfile`], covering every edge label of the TAG
/// (labels the workload never traversed get explicit zeros, so the
/// `Workload` placement spends no locality on them rather than falling back
/// to static weights).
///
/// The profile records *total* per-label traffic, not the network share, so
/// it is independent of the calibration placement; hash is used only because
/// it is the cheap untuned baseline.
pub fn tag_calibrate(
    tag: &TagGraph,
    workload: &[Analyzed],
    machines: usize,
    config: EngineConfig,
) -> Result<TrafficProfile> {
    if machines == 0 {
        return Err(RelError::Other("cluster needs at least one machine".into()));
    }
    let p = tag_partitioning(tag, machines, &PartitionStrategy::Hash);
    let mut profile = TrafficProfile::new();
    for a in workload {
        let (out, _) = execute_under(tag, a, p.clone(), config)?;
        profile.absorb(&TrafficProfile::from_run(&out.stats, tag.graph()));
    }
    profile.cover_graph(tag.graph());
    Ok(profile)
}

/// What a calibrate-then-measure run produces: the traffic profile observed
/// during calibration, the workload-aware partitioning built from it, and
/// each measured query's output with its network-traffic share.
pub type ProfiledRun = (TrafficProfile, Partitioning, Vec<(ExecOutput, NetStats)>);

/// Phase 2 of the workload-aware loop: calibrate on `calibrate_on`, build a
/// [`PartitionStrategy::Workload`] partitioning from the observed profile,
/// and execute every query of `measure` under it. Returns the profile, the
/// partitioning it produced, and the per-query outputs as a [`ProfiledRun`].
///
/// Calibrating and measuring the *same* workload demonstrates the gain;
/// passing a different calibration workload demonstrates skew sensitivity
/// (a mis-profiled placement decays toward the static `Refined` one).
pub fn tag_profiled(
    tag: &TagGraph,
    calibrate_on: &[Analyzed],
    measure: &[Analyzed],
    machines: usize,
    config: EngineConfig,
) -> Result<ProfiledRun> {
    let profile = tag_calibrate(tag, calibrate_on, machines, config)?;
    let strategy = PartitionStrategy::Workload(profile.clone());
    let partitioning = tag_partitioning(tag, machines, &strategy);
    let mut outputs = Vec::with_capacity(measure.len());
    for a in measure {
        outputs.push(execute_under(tag, a, partitioning.clone(), config)?);
    }
    Ok((profile, partitioning, outputs))
}

/// Execute `a` with the vertex-centric TAG-join executor under a hash
/// partitioning of the TAG over `machines` simulated machines.
///
/// Returns the full execution output (result relation + run statistics) and
/// the network share of its traffic. Partitioning is pure accounting: the
/// result bag and total message counts are identical to a single-machine
/// run (see `tests/robustness.rs`).
pub fn tag_distributed(
    tag: &TagGraph,
    a: &Analyzed,
    machines: usize,
    config: EngineConfig,
) -> Result<(ExecOutput, NetStats)> {
    if machines == 0 {
        return Err(RelError::Other("cluster needs at least one machine".into()));
    }
    execute_under(tag, a, tag_partitioning(tag, machines, &PartitionStrategy::Hash), config)
}

/// Shared body of the one-shot entry points: run under a prebuilt
/// partitioning and split out the network share of the traffic.
fn execute_under(
    tag: &TagGraph,
    a: &Analyzed,
    partitioning: Partitioning,
    config: EngineConfig,
) -> Result<(ExecOutput, NetStats)> {
    let out = TagJoinExecutor::new(tag, config).with_partitioning(partitioning).execute(a)?;
    let net = NetStats {
        network_messages: out.stats.totals.network_messages,
        network_bytes: out.stats.totals.network_bytes,
        rounds: out.stats.supersteps,
        ..Default::default()
    };
    Ok((out, net))
}

/// Modelled end-to-end runtime: local compute plus network transfer at
/// `bandwidth_bytes_per_sec` (the paper's Fig 16 combines both the same
/// way; latency per round is dominated by transfer at these sizes).
///
/// Bandwidth comes from callers' configuration (e.g. `repro --bandwidth`),
/// so a non-positive or non-finite value is an error, not a panic.
pub fn modelled_runtime(
    compute_secs: f64,
    net: &NetStats,
    bandwidth_bytes_per_sec: f64,
) -> Result<f64> {
    if !bandwidth_bytes_per_sec.is_finite() || bandwidth_bytes_per_sec <= 0.0 {
        return Err(RelError::Other(format!(
            "bandwidth must be a positive number of bytes/sec, got {bandwidth_bytes_per_sec}"
        )));
    }
    Ok(compute_secs + net.network_bytes as f64 / bandwidth_bytes_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_query::{analyze::analyze, parse};
    use vcsql_workload::tpch;

    fn analyzed(tag: &TagGraph, sql: &str) -> Analyzed {
        analyze(&parse(sql).unwrap(), tag.schemas()).unwrap()
    }

    /// Strategy-driven run via the shared body.
    fn run_with(
        tag: &TagGraph,
        a: &Analyzed,
        machines: usize,
        strategy: &PartitionStrategy,
        config: EngineConfig,
    ) -> Result<(ExecOutput, NetStats)> {
        execute_under(tag, a, tag_partitioning(tag, machines, strategy), config)
    }

    const JOIN_SQL: &str = "SELECT c.c_name FROM customer c, orders o, lineitem l \
                            WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey";

    #[test]
    fn tag_distributed_matches_local_results() {
        let db = tpch::generate(0.01, 11);
        let tag = TagGraph::build(&db);
        let a = analyzed(&tag, JOIN_SQL);
        let local = TagJoinExecutor::new(&tag, EngineConfig::sequential()).execute(&a).unwrap();
        let (out, net) = tag_distributed(&tag, &a, 6, EngineConfig::sequential()).unwrap();
        assert!(out.relation.same_bag_approx(&local.relation, 1e-9));
        assert!(net.network_bytes > 0, "a 6-machine run must use the network");
        assert!(net.network_bytes <= out.stats.total_bytes());
        assert_eq!(net.rounds, out.stats.supersteps);
    }

    #[test]
    fn one_machine_means_no_network() {
        let db = tpch::generate(0.01, 11);
        let tag = TagGraph::build(&db);
        let a = analyzed(&tag, JOIN_SQL);
        let (_, net) = tag_distributed(&tag, &a, 1, EngineConfig::sequential()).unwrap();
        assert_eq!(net.network_bytes, 0);
        assert_eq!(net.network_messages, 0);
        assert!(tag_distributed(&tag, &a, 0, EngineConfig::sequential()).is_err());
    }

    #[test]
    fn locality_strategies_preserve_results_and_cut_traffic() {
        let db = tpch::generate(0.02, 42);
        let tag = TagGraph::build(&db);
        let a = analyzed(&tag, JOIN_SQL);
        let local = TagJoinExecutor::new(&tag, EngineConfig::sequential()).execute(&a).unwrap();
        let (_, hash) =
            run_with(&tag, &a, 6, &PartitionStrategy::Hash, EngineConfig::sequential()).unwrap();
        for strategy in [PartitionStrategy::CoLocate, PartitionStrategy::Refined] {
            let (out, net) = run_with(&tag, &a, 6, &strategy, EngineConfig::sequential()).unwrap();
            assert!(
                out.relation.same_bag_approx(&local.relation, 1e-9),
                "{}: partitioning changed the result",
                strategy.name()
            );
            assert_eq!(out.stats.total_messages(), local.stats.total_messages());
            assert!(
                net.network_bytes <= hash.network_bytes,
                "{}: {} > hash {}",
                strategy.name(),
                net.network_bytes,
                hash.network_bytes
            );
        }
    }

    #[test]
    fn refined_partitioning_has_lower_edge_cut_than_hash() {
        let db = tpch::generate(0.01, 7);
        let tag = TagGraph::build(&db);
        let g = tag.graph();
        let hash = tag_partitioning(&tag, 6, &PartitionStrategy::Hash).diagnostics(g);
        let refined = tag_partitioning(&tag, 6, &PartitionStrategy::Refined).diagnostics(g);
        assert!(
            refined.edge_cut_fraction < hash.edge_cut_fraction,
            "refined {:.3} vs hash {:.3}",
            refined.edge_cut_fraction,
            hash.edge_cut_fraction
        );
        // Balance stays bounded by the strategies' slack.
        assert!(refined.load_imbalance <= 1.0 + vcsql_bsp::DEFAULT_BALANCE_SLACK + 0.05);
    }

    #[test]
    fn spark_model_ships_more_than_tag_on_joins() {
        let db = tpch::generate(0.02, 42);
        let tag = TagGraph::build(&db);
        let a = analyzed(&tag, JOIN_SQL);
        let (_, tag_net) = tag_distributed(&tag, &a, 6, EngineConfig::with_threads(4)).unwrap();
        let spark = SparkModel { machines: 6, broadcast_threshold: 0 };
        let spark_net = spark.run(&a, &db).unwrap();
        assert!(
            spark_net.network_bytes > tag_net.network_bytes,
            "spark {} <= tag {}",
            spark_net.network_bytes,
            tag_net.network_bytes
        );
    }

    #[test]
    fn broadcast_threshold_changes_traffic() {
        let db = tpch::generate(0.02, 42);
        let tag = TagGraph::build(&db);
        // nation is tiny: with a generous threshold it broadcasts (m-1
        // copies of a small table) instead of shuffling the big side.
        let a = analyzed(
            &tag,
            "SELECT n.n_name FROM nation n, customer c WHERE n.n_nationkey = c.c_nationkey",
        );
        let shuffle = SparkModel { machines: 6, broadcast_threshold: 0 }.run(&a, &db).unwrap();
        let bcast = SparkModel { machines: 6, broadcast_threshold: 10 << 20 }.run(&a, &db).unwrap();
        assert!(bcast.network_bytes < shuffle.network_bytes);
    }

    #[test]
    fn single_machine_spark_model_is_free() {
        let db = tpch::generate(0.01, 5);
        let tag = TagGraph::build(&db);
        let a = analyzed(&tag, JOIN_SQL);
        let net = SparkModel { machines: 1, broadcast_threshold: 0 }.run(&a, &db).unwrap();
        assert_eq!(net.network_bytes, 0);
    }

    #[test]
    fn whole_workload_runs_under_both_models() {
        let db = tpch::generate(0.01, 42);
        let tag = TagGraph::build(&db);
        let spark = SparkModel { machines: 6, broadcast_threshold: 0 };
        for q in tpch::queries() {
            let a = analyzed(&tag, q.sql);
            let (_, tag_net) = tag_distributed(&tag, &a, 6, EngineConfig::with_threads(4))
                .unwrap_or_else(|e| panic!("{}: tag_distributed: {e}", q.id));
            let spark_net =
                spark.run(&a, &db).unwrap_or_else(|e| panic!("{}: spark model: {e}", q.id));
            // Both sides of the comparison must produce *some* accounting.
            assert!(spark_net.rounds > 0, "{}: no exchanges modelled", q.id);
            let _ = tag_net;
        }
    }

    #[test]
    fn modelled_runtime_adds_transfer_time() {
        let net = NetStats {
            network_messages: 1,
            network_bytes: 2_000_000_000,
            rounds: 1,
            ..Default::default()
        };
        let t = modelled_runtime(0.5, &net, 1e9).unwrap();
        assert!((t - 2.5).abs() < 1e-9);
    }

    #[test]
    fn modelled_runtime_rejects_bad_bandwidth() {
        let net = NetStats { network_bytes: 1, ..NetStats::default() };
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(modelled_runtime(0.5, &net, bad).is_err(), "bandwidth {bad} accepted");
        }
    }

    #[test]
    fn calibration_profile_covers_graph_and_sees_join_labels() {
        let db = tpch::generate(0.01, 11);
        let tag = TagGraph::build(&db);
        let a = analyzed(&tag, JOIN_SQL);
        let profile =
            tag_calibrate(&tag, std::slice::from_ref(&a), 6, EngineConfig::sequential()).unwrap();
        // Every edge label of the graph is covered (explicit zeros included).
        assert_eq!(profile.len(), tag.graph().edge_labels().len());
        // The traversed join columns carried traffic; untouched columns did
        // not.
        assert!(profile.get("lineitem.l_orderkey").unwrap().bytes > 0);
        assert!(profile.get("orders.o_custkey").unwrap().bytes > 0);
        assert_eq!(profile.get("part.p_name").unwrap().bytes, 0);
        // And it round-trips through the text hand-off format.
        let text = profile.to_text();
        assert_eq!(TrafficProfile::from_text(&text).unwrap(), profile);
    }

    #[test]
    fn profiled_run_preserves_results_and_beats_hash() {
        let db = tpch::generate(0.02, 42);
        let tag = TagGraph::build(&db);
        let a = analyzed(&tag, JOIN_SQL);
        let local = TagJoinExecutor::new(&tag, EngineConfig::sequential()).execute(&a).unwrap();
        let (_, hash) =
            run_with(&tag, &a, 6, &PartitionStrategy::Hash, EngineConfig::sequential()).unwrap();
        let workload = std::slice::from_ref(&a);
        let (profile, partitioning, outputs) =
            tag_profiled(&tag, workload, workload, 6, EngineConfig::sequential()).unwrap();
        assert!(!profile.is_empty());
        assert_eq!(partitioning.machines(), 6);
        let (out, net) = &outputs[0];
        assert!(out.relation.same_bag_approx(&local.relation, 1e-9));
        assert_eq!(out.stats.total_messages(), local.stats.total_messages());
        assert!(
            net.network_bytes <= hash.network_bytes,
            "workload {} > hash {}",
            net.network_bytes,
            hash.network_bytes
        );
    }
}
