//! Network-traffic accounting shared by the TAG distributed run and the
//! shuffle-join model.
//!
//! The paper (Section 8.6) measures *total network traffic during query
//! execution* with `sar` on a 6-machine cluster. Both simulated engines here
//! report that quantity as a [`NetStats`]: bytes (and message/tuple counts)
//! that crossed a machine boundary. Both sides charge the same wire model —
//! one 8-byte word per value plus 8-byte-aligned variable-length string
//! payloads: the TAG executor through `Table::approx_bytes` (see
//! `vcsql_core::table`), the Spark model through [`unsafe_row_bytes`] —
//! so the byte comparison is like for like.

use vcsql_relation::Value;

/// Traffic that crossed simulated machine boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages (TAG) or shuffled/broadcast tuples (Spark model) sent over
    /// the network.
    pub network_messages: u64,
    /// Bytes sent over the network.
    pub network_bytes: u64,
    /// Communication rounds: BSP supersteps (TAG) or exchange stages —
    /// shuffles plus broadcasts (Spark model).
    pub rounds: u64,
    /// Of `network_messages`, those that were *vertex migrations*: online
    /// repartitioning relocating a vertex's state to another machine
    /// (`vcsql-session`'s adaptation loop). Itemized so adaptation cost is
    /// visible, but included in the totals — shipping state is real traffic.
    pub migration_messages: u64,
    /// Of `network_bytes`, the bytes of migrated vertex state. Invariant:
    /// `migration_bytes <= network_bytes`.
    pub migration_bytes: u64,
    /// Bytes written to superstep checkpoints (fault tolerance). **Not**
    /// included in `network_bytes`: checkpoints go to (simulated) stable
    /// storage local to each machine, not over the wire — itemized here so
    /// the checkpoint-interval tradeoff is measurable without corrupting
    /// the paper's network-traffic figure.
    pub checkpoint_bytes: u64,
    /// Of `network_bytes`, bytes re-shipped to restore crashed partitions
    /// from a checkpoint (confined recovery: only the lost machine's share
    /// travels). Invariant: `recovery_bytes <= network_bytes`.
    pub recovery_bytes: u64,
    /// Supersteps replayed after crash rollbacks. **Not** included in
    /// `rounds`: the replayed rounds' traffic is recorded once (the replay
    /// is bit-identical), so counting them again would double-bill; they
    /// are itemized here as the recovery's latency cost.
    pub recovered_rounds: u64,
}

impl NetStats {
    /// Fold another run's traffic into this one (e.g. a subquery's).
    pub fn absorb(&mut self, other: &NetStats) {
        self.network_messages += other.network_messages;
        self.network_bytes += other.network_bytes;
        self.rounds += other.rounds;
        self.migration_messages += other.migration_messages;
        self.migration_bytes += other.migration_bytes;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.recovery_bytes += other.recovery_bytes;
        self.recovered_rounds += other.recovered_rounds;
    }

    /// Record one exchange of `tuples` totalling `bytes`.
    pub fn record_exchange(&mut self, tuples: u64, bytes: u64) {
        self.network_messages += tuples;
        self.network_bytes += bytes;
        self.rounds += 1;
    }

    /// Charge the relocation of `vertices` vertices totalling `bytes` of
    /// state to the network (online repartitioning). Grows both the totals
    /// and the itemized migration counters; migrations ride along existing
    /// supersteps, so `rounds` is untouched.
    pub fn record_migration(&mut self, vertices: u64, bytes: u64) {
        self.network_messages += vertices;
        self.network_bytes += bytes;
        self.migration_messages += vertices;
        self.migration_bytes += bytes;
    }

    /// Charge `bytes` of checkpoint writes. Itemized only — checkpoints are
    /// stable-storage writes, not network traffic (see the field doc).
    pub fn record_checkpoint(&mut self, bytes: u64) {
        self.checkpoint_bytes += bytes;
    }

    /// Charge a crash recovery: `vertices` restored vertices totalling
    /// `bytes` of re-shipped checkpoint state (network traffic, like
    /// migrations), after rolling back `rounds` supersteps (itemized, not
    /// added to `rounds` — the replayed traffic is recorded once).
    pub fn record_recovery(&mut self, vertices: u64, bytes: u64, rounds: u64) {
        self.network_messages += vertices;
        self.network_bytes += bytes;
        self.recovery_bytes += bytes;
        self.recovered_rounds += rounds;
    }
}

/// Modelled size of one row in Spark's `UnsafeRow` shuffle format: an
/// 8-byte null bitmap word (per 64 columns), one 8-byte word per field, and
/// 8-byte-aligned variable-length data for strings. This is what Spark's
/// shuffle serializer actually writes, so the shuffle-join model charges it
/// instead of an idealized packed encoding.
pub fn unsafe_row_bytes(row: &[Value]) -> u64 {
    let bitmap = 8 * (row.len() as u64).div_ceil(64).max(1);
    let fixed = 8 * row.len() as u64;
    let variable: u64 = row
        .iter()
        .map(|v| match v {
            Value::Str(s) => (s.len() as u64).div_ceil(8) * 8,
            _ => 0,
        })
        .sum();
    bitmap + fixed + variable
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_row_sizes() {
        // 1 bitmap word + 3 fields + "0123456789" padded to 16.
        assert_eq!(
            unsafe_row_bytes(&[Value::Int(1), Value::Null, Value::str("0123456789")]),
            8 + 24 + 16
        );
        // Empty row still pays the bitmap word.
        assert_eq!(unsafe_row_bytes(&[]), 8);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = NetStats::default();
        a.record_exchange(10, 100);
        let mut b = NetStats::default();
        b.record_exchange(5, 50);
        a.absorb(&b);
        assert_eq!(
            a,
            NetStats { network_messages: 15, network_bytes: 150, rounds: 2, ..Default::default() }
        );
    }

    #[test]
    fn migration_is_itemized_and_counted_in_totals() {
        let mut n = NetStats::default();
        n.record_exchange(10, 100);
        n.record_migration(3, 48);
        assert_eq!(n.network_messages, 13);
        assert_eq!(n.network_bytes, 148);
        assert_eq!(n.migration_messages, 3);
        assert_eq!(n.migration_bytes, 48);
        assert_eq!(n.rounds, 1, "migration must not add a round");
        assert!(n.migration_bytes <= n.network_bytes);
        let mut m = NetStats::default();
        m.absorb(&n);
        assert_eq!(m.migration_bytes, 48);
    }

    #[test]
    fn checkpoints_are_itemized_outside_totals() {
        let mut n = NetStats::default();
        n.record_exchange(10, 100);
        n.record_checkpoint(64);
        assert_eq!(n.checkpoint_bytes, 64);
        assert_eq!(n.network_bytes, 100, "checkpoints are not network traffic");
        assert_eq!(n.network_messages, 10);
        assert_eq!(n.rounds, 1);
    }

    #[test]
    fn recovery_is_itemized_and_counted_in_totals() {
        let mut n = NetStats::default();
        n.record_exchange(10, 100);
        n.record_recovery(4, 32, 2);
        assert_eq!(n.network_messages, 14);
        assert_eq!(n.network_bytes, 132, "restored state travels the network");
        assert_eq!(n.recovery_bytes, 32);
        assert_eq!(n.recovered_rounds, 2);
        assert_eq!(n.rounds, 1, "replayed rounds are recorded once, not re-billed");
        assert!(n.recovery_bytes <= n.network_bytes);
        let mut m = NetStats::default();
        m.absorb(&n);
        assert_eq!(m.recovery_bytes, 32);
        assert_eq!(m.checkpoint_bytes, 0);
        assert_eq!(m.recovered_rounds, 2);
    }
}
