//! Network-traffic accounting shared by the TAG distributed run and the
//! shuffle-join model.
//!
//! The paper (Section 8.6) measures *total network traffic during query
//! execution* with `sar` on a 6-machine cluster. Both simulated engines here
//! report that quantity as a [`NetStats`]: bytes (and message/tuple counts)
//! that crossed a machine boundary. Both sides charge the same wire model —
//! one 8-byte word per value plus 8-byte-aligned variable-length string
//! payloads: the TAG executor through `Table::approx_bytes` (see
//! `vcsql_core::table`), the Spark model through [`unsafe_row_bytes`] —
//! so the byte comparison is like for like.

use vcsql_relation::Value;

/// Traffic that crossed simulated machine boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages (TAG) or shuffled/broadcast tuples (Spark model) sent over
    /// the network.
    pub network_messages: u64,
    /// Bytes sent over the network.
    pub network_bytes: u64,
    /// Communication rounds: BSP supersteps (TAG) or exchange stages —
    /// shuffles plus broadcasts (Spark model).
    pub rounds: u64,
}

impl NetStats {
    /// Fold another run's traffic into this one (e.g. a subquery's).
    pub fn absorb(&mut self, other: &NetStats) {
        self.network_messages += other.network_messages;
        self.network_bytes += other.network_bytes;
        self.rounds += other.rounds;
    }

    /// Record one exchange of `tuples` totalling `bytes`.
    pub fn record_exchange(&mut self, tuples: u64, bytes: u64) {
        self.network_messages += tuples;
        self.network_bytes += bytes;
        self.rounds += 1;
    }
}

/// Modelled size of one row in Spark's `UnsafeRow` shuffle format: an
/// 8-byte null bitmap word (per 64 columns), one 8-byte word per field, and
/// 8-byte-aligned variable-length data for strings. This is what Spark's
/// shuffle serializer actually writes, so the shuffle-join model charges it
/// instead of an idealized packed encoding.
pub fn unsafe_row_bytes(row: &[Value]) -> u64 {
    let bitmap = 8 * (row.len() as u64).div_ceil(64).max(1);
    let fixed = 8 * row.len() as u64;
    let variable: u64 = row
        .iter()
        .map(|v| match v {
            Value::Str(s) => (s.len() as u64).div_ceil(8) * 8,
            _ => 0,
        })
        .sum();
    bitmap + fixed + variable
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_row_sizes() {
        // 1 bitmap word + 3 fields + "0123456789" padded to 16.
        assert_eq!(
            unsafe_row_bytes(&[Value::Int(1), Value::Null, Value::str("0123456789")]),
            8 + 24 + 16
        );
        // Empty row still pays the bitmap word.
        assert_eq!(unsafe_row_bytes(&[]), 8);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = NetStats::default();
        a.record_exchange(10, 100);
        let mut b = NetStats::default();
        b.record_exchange(5, 50);
        a.absorb(&b);
        assert_eq!(a, NetStats { network_messages: 15, network_bytes: 150, rounds: 2 });
    }
}
