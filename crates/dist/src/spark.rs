//! A Spark-like shuffle-join network-cost model (the paper's Section 8.6
//! baseline).
//!
//! Spark executes a join tree as a sequence of exchanges: each shuffle join
//! hash-partitions both inputs on the join key (every tuple moves to the
//! machine owning its key's hash — an expected `(m-1)/m` of all bytes cross
//! the network), unless one side is small enough to broadcast (its bytes are
//! replicated to the other `m-1` machines). An input already partitioned on
//! the join key — the output of the previous shuffle on the same key — is
//! *not* re-shuffled, mirroring Spark's `outputPartitioning` reuse.
//!
//! The model executes the query plan for real (filters pushed below the
//! exchange, exact intermediate cardinalities via in-memory hash joins,
//! residual predicates applied as soon as their tables are joined) so the
//! byte counts reflect true data sizes rather than estimates; only the
//! *placement* of tuples is modelled statistically.

use crate::netstats::{unsafe_row_bytes, NetStats};
use vcsql_query::analyze::{lower_subquery, Analyzed, LoweredSubquery, TableBinding};
use vcsql_relation::expr::{BoundExpr, ColRef, Expr};
use vcsql_relation::{Database, FxHashMap, FxHashSet, RelError, Value};

type Result<T> = std::result::Result<T, RelError>;

/// One equi-join equality: `(left (table, col), right (table, col))`.
type EquiKey = ((usize, usize), (usize, usize));

/// Cluster parameters of the modelled Spark deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparkModel {
    /// Number of machines in the simulated cluster.
    pub machines: usize,
    /// Inputs at or below this many bytes are broadcast instead of shuffled
    /// (Spark's `autoBroadcastJoinThreshold`). `0` disables broadcasting.
    pub broadcast_threshold: u64,
}

impl Default for SparkModel {
    fn default() -> SparkModel {
        // The paper's cluster has 6 machines. Broadcasting is disabled by
        // default: at the paper's scale no join input fits under Spark's
        // 10 MiB broadcast threshold, so its measured traffic is
        // shuffle-dominated — while at this reproduction's laptop scale
        // *every* table would fit, which would silently model a different
        // (broadcast-join) plan than the one the paper compares against.
        // Set `broadcast_threshold` explicitly to study broadcasting.
        SparkModel { machines: 6, broadcast_threshold: 0 }
    }
}

/// An intermediate result: rows over a set of `(table, column)` positions,
/// remembering which key it is currently hash-partitioned on.
struct Inter {
    /// `(table, col)` provenance of each position.
    cols: Vec<(usize, usize)>,
    rows: Vec<Box<[Value]>>,
    /// Tables folded in so far.
    tables: FxHashSet<usize>,
    /// The (sorted) key columns this intermediate is hash-partitioned on,
    /// if any.
    part_key: Option<Vec<(usize, usize)>>,
}

impl Inter {
    fn bytes(&self) -> u64 {
        self.rows.iter().map(|r| unsafe_row_bytes(r)).sum()
    }

    fn pos(&self, key: (usize, usize)) -> Option<usize> {
        self.cols.iter().position(|&c| c == key)
    }
}

impl SparkModel {
    /// Modelled network traffic of running `a` over `db` on this cluster.
    ///
    /// Subqueries contribute their own (recursively modelled) traffic, but
    /// their filtering effect on the outer intermediates is NOT applied —
    /// the outer plan is modelled as if the subquery predicate were checked
    /// after the joins. That matches where Spark typically places
    /// non-pushable subquery filters, but it does mean subquery-heavy
    /// queries are charged somewhat more here than a Spark run that manages
    /// to push the semi-join below an exchange would be; read per-query
    /// numbers on such queries with that bias in mind.
    pub fn run(&self, a: &Analyzed, db: &Database) -> Result<NetStats> {
        assert!(self.machines >= 1, "cluster needs at least one machine");
        let mut net = NetStats::default();

        // Subqueries run first (Spark plans them as separate stages), in
        // their lowered form — e.g. a correlated scalar subquery becomes an
        // aggregate grouped by the correlation key, exactly the shape both
        // real engines execute.
        for sq in &a.subqueries {
            let sub = match lower_subquery(sq) {
                LoweredSubquery::KeySet { sub, .. } => sub,
                LoweredSubquery::ScalarMap { sub, .. } => sub,
            };
            net.absorb(&self.run(&sub, db)?);
        }

        if a.tables.is_empty() {
            return Ok(net);
        }

        // Scan + filter each input below any exchange (predicate pushdown).
        let mut scans: Vec<Inter> = Vec::with_capacity(a.tables.len());
        for (t, binding) in a.tables.iter().enumerate() {
            scans.push(scan(a, db, t, binding)?);
        }

        // Canonical representative per join-equivalence class of columns,
        // so partitioning reuse sees through transitive key equality (after
        // joining on `t1.k = t2.k`, an intermediate partitioned on either
        // column satisfies a later `t2.k = t3.k` shuffle requirement).
        let canon = join_column_classes(&a.joins);

        // Left-deep join order: start at table 0, repeatedly fold in a table
        // connected to the current intermediate by at least one equi-join
        // predicate; disconnected tables come last as cartesian products.
        let mut current = scans.remove(0);
        let mut remaining: Vec<(usize, Inter)> = (1..a.tables.len()).zip(scans).collect();
        let mut residual_applied = vec![false; a.residual.len()];

        while !remaining.is_empty() {
            let pick = remaining
                .iter()
                .position(|(t, _)| {
                    a.joins.iter().any(|j| {
                        (current.tables.contains(&j.left.0) && j.right.0 == *t)
                            || (current.tables.contains(&j.right.0) && j.left.0 == *t)
                    })
                })
                .unwrap_or(0);
            let (t, right) = remaining.remove(pick);

            // All equi-join predicates connecting `t` to the current side,
            // oriented as (current column, right column).
            let mut keys: Vec<((usize, usize), (usize, usize))> = Vec::new();
            for j in &a.joins {
                if current.tables.contains(&j.left.0) && j.right.0 == t {
                    keys.push((j.left, j.right));
                } else if current.tables.contains(&j.right.0) && j.left.0 == t {
                    keys.push((j.right, j.left));
                }
            }
            keys.sort();
            keys.dedup();

            current = self.exchange_and_join(current, right, &keys, &canon, &mut net);

            // Residual predicates whose tables are now all present filter the
            // intermediate (once) before it is shipped again.
            for (e, applied) in a.residual.iter().zip(&mut residual_applied) {
                if *applied {
                    continue;
                }
                if let Some(bound) = bind_if_covered(e, a, &current)? {
                    let mut kept = Vec::with_capacity(current.rows.len());
                    for r in current.rows.drain(..) {
                        if bound.passes(&r)? {
                            kept.push(r);
                        }
                    }
                    current.rows = kept;
                    *applied = true;
                }
            }
        }

        // Final aggregation exchange: partial aggregates are combined by a
        // hash exchange on the group key (or a single-partition exchange for
        // scalar aggregates, whose partials are one tiny row per machine).
        if !a.group_by.is_empty() {
            let key_pos: Vec<usize> =
                a.group_by.iter().filter_map(|&(t, c)| current.pos((t, c))).collect();
            let mut groups: FxHashSet<Vec<Value>> = FxHashSet::default();
            let mut distinct_key_bytes = 0u64;
            for r in &current.rows {
                let key: Vec<Value> = key_pos.iter().map(|&p| r[p].clone()).collect();
                let key_bytes = unsafe_row_bytes(&key);
                if groups.insert(key) {
                    distinct_key_bytes += key_bytes;
                }
            }
            if !groups.is_empty() {
                // Partial aggregation caps the exchange at one partial per
                // (group, machine) — but never more partials than input rows
                // (each machine only has partials for groups it saw).
                let partials =
                    (groups.len() as u64 * self.machines as u64).min(current.rows.len() as u64);
                let partial_bytes =
                    distinct_key_bytes / groups.len() as u64 + 8 * a.items.len() as u64;
                net.record_exchange(
                    self.cross_fraction(partials),
                    self.cross_fraction(partials * partial_bytes),
                );
            }
        } else if a.has_aggregates() {
            // Scalar: one partial row per machine to the driver.
            net.record_exchange(
                self.machines as u64 - 1,
                (self.machines as u64 - 1) * 8 * a.items.len() as u64,
            );
        }

        Ok(net)
    }

    /// Expected share of `bytes` that crosses machines in a hash exchange.
    fn cross_fraction(&self, bytes: u64) -> u64 {
        if self.machines <= 1 {
            return 0;
        }
        bytes * (self.machines as u64 - 1) / self.machines as u64
    }

    /// Charge the exchange for one join and compute its result.
    ///
    /// Partition keys are tracked as canonical join-class representatives
    /// (see [`join_column_classes`]), so an intermediate partitioned on
    /// either side of an earlier equi-join counts as partitioned on both.
    fn exchange_and_join(
        &self,
        left: Inter,
        right: Inter,
        keys: &[EquiKey],
        canon: &FxHashMap<(usize, usize), (usize, usize)>,
        net: &mut NetStats,
    ) -> Inter {
        let (lbytes, rbytes) = (left.bytes(), right.bytes());
        let (lrows, rrows) = (left.rows.len() as u64, right.rows.len() as u64);
        let cross = keys.is_empty();

        let small_enough = |b: u64| self.broadcast_threshold > 0 && b <= self.broadcast_threshold;
        // Cartesian products always broadcast the smaller side (Spark's
        // BroadcastNestedLoopJoin); equi-joins broadcast below the threshold.
        let broadcast_right = (cross || small_enough(rbytes)) && rbytes <= lbytes;
        let broadcast_left = !broadcast_right && (cross || small_enough(lbytes));

        // Both sides of each predicate share a class, so one canonical key
        // describes the exchange requirement for both inputs.
        let canon_of = |col: (usize, usize)| canon.get(&col).copied().unwrap_or(col);
        let join_key: Vec<(usize, usize)> = {
            let mut k: Vec<(usize, usize)> = keys.iter().map(|&(l, _)| canon_of(l)).collect();
            k.sort();
            k.dedup();
            k
        };

        let part_key = if broadcast_right {
            net.record_exchange(
                rrows * (self.machines as u64 - 1),
                rbytes * (self.machines as u64 - 1),
            );
            left.part_key.clone() // big side stays where it is
        } else if broadcast_left {
            net.record_exchange(
                lrows * (self.machines as u64 - 1),
                lbytes * (self.machines as u64 - 1),
            );
            right.part_key.clone()
        } else {
            // Shuffle each side unless it is already partitioned on (a key
            // equivalent to) the join key.
            if left.part_key.as_deref() != Some(&join_key[..]) {
                net.record_exchange(self.cross_fraction(lrows), self.cross_fraction(lbytes));
            }
            if right.part_key.as_deref() != Some(&join_key[..]) {
                net.record_exchange(self.cross_fraction(rrows), self.cross_fraction(rbytes));
            }
            Some(join_key)
        };

        let mut joined = hash_join(&left, &right, keys);
        joined.part_key = part_key;
        joined
    }
}

/// Union-find over the columns of the equi-join predicates: every column is
/// mapped to one canonical representative of its equivalence class, so
/// "partitioned on this key" can be compared across transitively equated
/// columns.
fn join_column_classes(
    joins: &[vcsql_query::JoinPred],
) -> FxHashMap<(usize, usize), (usize, usize)> {
    let mut parent: FxHashMap<(usize, usize), (usize, usize)> = FxHashMap::default();
    fn find(
        parent: &mut FxHashMap<(usize, usize), (usize, usize)>,
        x: (usize, usize),
    ) -> (usize, usize) {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }
    for j in joins {
        let (a, b) = (find(&mut parent, j.left), find(&mut parent, j.right));
        if a != b {
            parent.insert(a.max(b), a.min(b));
        }
    }
    let cols: Vec<(usize, usize)> = parent.keys().copied().collect();
    cols.iter().map(|&c| (c, find(&mut parent, c))).collect()
}

/// Scan one table binding: its relation with single-table filters applied.
fn scan(a: &Analyzed, db: &Database, t: usize, binding: &TableBinding) -> Result<Inter> {
    let rel = db.get(&binding.relation)?;
    let bound: Vec<BoundExpr> = binding
        .filters
        .iter()
        .map(|f| {
            f.bind(&|c: &ColRef| {
                let (tt, cc) = a.resolve(c)?;
                if tt != t {
                    return Err(RelError::Other(format!(
                        "filter for table {t} references table {tt}"
                    )));
                }
                Ok(cc)
            })
        })
        .collect::<Result<_>>()?;
    // Evaluation errors propagate like the real engines' (a query the
    // engines refuse to run must not yield a byte count here).
    let mut rows = Vec::new();
    'tuples: for tup in &rel.tuples {
        for f in &bound {
            if !f.passes(&tup.0)? {
                continue 'tuples;
            }
        }
        rows.push(tup.0.clone());
    }
    Ok(Inter {
        cols: (0..binding.schema.arity()).map(|c| (t, c)).collect(),
        rows,
        tables: std::iter::once(t).collect(),
        part_key: None,
    })
}

/// In-memory hash join (cross product when `keys` is empty). NULL keys never
/// match, per SQL semantics.
fn hash_join(left: &Inter, right: &Inter, keys: &[EquiKey]) -> Inter {
    let out_cols: Vec<(usize, usize)> =
        left.cols.iter().chain(right.cols.iter()).copied().collect();
    let mut out = Inter {
        cols: out_cols,
        rows: Vec::new(),
        tables: left.tables.union(&right.tables).copied().collect(),
        part_key: None,
    };

    if keys.is_empty() {
        for l in &left.rows {
            for r in &right.rows {
                out.rows.push(l.iter().chain(r.iter()).cloned().collect());
            }
        }
        return out;
    }

    let lpos: Vec<usize> =
        keys.iter().map(|&(l, _)| left.pos(l).expect("left key present")).collect();
    let rpos: Vec<usize> =
        keys.iter().map(|&(_, r)| right.pos(r).expect("right key present")).collect();

    let mut index: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    'build: for (i, r) in right.rows.iter().enumerate() {
        let mut key = Vec::with_capacity(rpos.len());
        for &p in &rpos {
            if r[p].is_null() {
                continue 'build;
            }
            key.push(r[p].clone());
        }
        index.entry(key).or_default().push(i);
    }
    'probe: for l in &left.rows {
        let mut key = Vec::with_capacity(lpos.len());
        for &p in &lpos {
            if l[p].is_null() {
                continue 'probe;
            }
            key.push(l[p].clone());
        }
        if let Some(matches) = index.get(&key) {
            for &ri in matches {
                out.rows.push(l.iter().chain(right.rows[ri].iter()).cloned().collect());
            }
        }
    }
    out
}

/// Bind `e` against the intermediate's layout if every column it references
/// is available; `None` otherwise.
fn bind_if_covered(e: &Expr, a: &Analyzed, inter: &Inter) -> Result<Option<BoundExpr>> {
    let mut cols = Vec::new();
    e.columns(&mut cols);
    let mut resolved = Vec::with_capacity(cols.len());
    for c in &cols {
        let (t, cc) = a.resolve(c)?;
        match inter.pos((t, cc)) {
            Some(p) => resolved.push((c.clone(), p)),
            None => return Ok(None),
        }
    }
    let bound = e.bind(&|c: &ColRef| {
        resolved
            .iter()
            .find(|(rc, _)| rc == c)
            .map(|&(_, p)| p)
            .ok_or_else(|| RelError::UnknownColumn(c.name.clone()))
    })?;
    Ok(Some(bound))
}
