//! The SF 0.01 acceptance run for the multi-tenant server: eight tenants
//! with mixed TPC-H / TPC-DS mixes over one shared TAG.
//!
//! Locked in here:
//!
//! * **Arbitrated beats unilateral and static.** The merged-vote policy
//!   ships fewer total bytes (query traffic + migrated vertex state) than
//!   (a) per-tenant unilateral migration, where drifted tenants overwrite
//!   each other's targets and vertices ping-pong, and (b) a static refined
//!   placement that never adapts to the workload at all.
//! * **Per-tenant fairness.** No tenant's spark/tag byte ratio degrades
//!   below its solo-refined baseline by more than 10%. The spark-side
//!   bytes of a fixed mix are a constant, so the ratio condition
//!   `ratio_shared >= 0.9 * ratio_solo` is asserted in its equivalent
//!   tag-side form `shared_bytes <= solo_bytes / 0.9`.
//!
//! Both suites fit one TAG because the table names are disjoint; tenants
//! of even id run TPC-H joins, odd ids run TPC-DS joins, so the consensus
//! really is contested.

use std::sync::Arc;
use vcsql_bsp::EngineConfig;
use vcsql_relation::Database;
use vcsql_server::{Arbitration, QueryServer, ServerConfig, TenantSession};
use vcsql_tag::TagGraph;
use vcsql_workload::{tpcds, tpch};

const TENANTS: usize = 8;
const ROUNDS: usize = 6;

/// TPC-H joins for even tenants, on the labels shape-based refinement
/// sacrifices: the q17-style part–lineitem clash plus the customer–orders–
/// lineitem chain. Refined placement serves these poorly (it co-locates by
/// graph shape, and `lineitem` cannot sit with everyone), so workload
/// placement has something real to win.
const TPCH_MIX: [&str; 2] = [
    "SELECT p.p_name FROM part p, lineitem l WHERE p.p_partkey = l.l_partkey",
    "SELECT o.o_orderkey FROM customer c, orders o, lineitem l \
     WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey",
];

/// TPC-DS joins for odd tenants: all traffic lives on the store-sales side
/// of the graph (`store_sales` torn between `item` and `date_dim`),
/// contesting the TPC-H tenants' preferences for the consensus.
const TPCDS_MIX: [&str; 2] = [
    "SELECT i.i_itemkey FROM item i, store_sales ss WHERE i.i_itemkey = ss.ss_itemkey",
    "SELECT d.d_year FROM store_sales ss, date_dim d WHERE ss.ss_datekey = d.d_datekey",
];

fn tenant_mix(tenant: usize) -> &'static [&'static str] {
    if tenant.is_multiple_of(2) {
        &TPCH_MIX
    } else {
        &TPCDS_MIX
    }
}

/// One database hosting both suites at SF 0.01 (disjoint table names).
fn mixed_tag() -> Arc<TagGraph> {
    let mut db = tpch::generate(0.01, 42);
    for relation in tpcds::generate(0.01, 7).relations() {
        db.add(relation.clone());
    }
    let db: Database = db;
    Arc::new(TagGraph::build(&db))
}

fn server_config(arbitration: Arbitration) -> ServerConfig {
    ServerConfig {
        machines: 4,
        engine: EngineConfig::sequential(),
        arbitration,
        ..ServerConfig::default()
    }
}

/// Serve every tenant's mix for [`ROUNDS`] rounds; return
/// (total bytes shipped — `network_bytes` already includes the itemized
/// migration bytes — and per-tenant *query* bytes with the one-time
/// migration charge separated back out, since fairness is about steady
/// execution efficiency, not about which tenant's query happened to
/// trigger the walk).
fn serve(tag: &Arc<TagGraph>, arbitration: Arbitration) -> (u64, Vec<u64>) {
    let server = QueryServer::start(tag, server_config(arbitration)).unwrap();
    let sessions: Vec<TenantSession> = (0..TENANTS).map(|_| server.open_session()).collect();
    for _ in 0..ROUNDS {
        for session in &sessions {
            for sql in tenant_mix(session.id()) {
                session.run_sql(sql).unwrap();
            }
        }
    }
    let per_tenant = sessions
        .iter()
        .map(|s| {
            let net = s.stats().net;
            net.network_bytes - net.migration_bytes
        })
        .collect();
    (server.stats().net.network_bytes, per_tenant)
}

/// A tenant's solo-refined baseline: the same mix, same rounds, alone on a
/// static refined placement.
fn solo_refined_bytes(tag: &Arc<TagGraph>, mix: &[&str]) -> u64 {
    let server = QueryServer::start(tag, server_config(Arbitration::Static)).unwrap();
    let session = server.open_session();
    for _ in 0..ROUNDS {
        for sql in mix {
            session.run_sql(sql).unwrap();
        }
    }
    session.stats().net.network_bytes
}

#[test]
fn arbitrated_placement_beats_both_baselines_and_stays_fair() {
    let tag = mixed_tag();

    let (merged_total, merged_per_tenant) = serve(&tag, Arbitration::Merged);
    let (unilateral_total, _) = serve(&tag, Arbitration::Unilateral);
    let (static_total, _) = serve(&tag, Arbitration::Static);

    assert!(
        merged_total < unilateral_total,
        "arbitrated serving must ship fewer total bytes than unilateral migration \
         (merged {merged_total} vs unilateral {unilateral_total})"
    );
    assert!(
        merged_total < static_total,
        "arbitrated serving must ship fewer total bytes than static refined placement \
         (merged {merged_total} vs static {static_total})"
    );

    // Fairness: the shared, arbitrated placement may not sacrifice any
    // single tenant. Tenants of one parity share a mix, so two solo
    // baselines cover all eight.
    let solo = [solo_refined_bytes(&tag, &TPCH_MIX), solo_refined_bytes(&tag, &TPCDS_MIX)];
    for (tenant, &shared_bytes) in merged_per_tenant.iter().enumerate() {
        let solo_bytes = solo[tenant % 2];
        assert!(
            shared_bytes as f64 <= solo_bytes as f64 / 0.9,
            "tenant {tenant}: spark/tag ratio degraded more than 10% below its solo-refined \
             baseline (shared {shared_bytes} bytes vs solo {solo_bytes})"
        );
    }
}
