//! Loom model checks for admission-permit release on panic.
//!
//! Compiled only under `RUSTFLAGS="--cfg vcsql_loom"` (the model-checking
//! lane): the server's `sync` shim then re-exports the `loom` compat
//! crate's shadow `Mutex`/`Condvar`/thread, so the whole admission
//! controller — dispatcher thread included — runs under the deterministic
//! scheduler, which explores every preemption-bounded interleaving inside
//! `loom::model`. Checked here:
//!
//! * a permit holder that **panics** releases its slot under every
//!   schedule — the RAII `Drop` runs during the unwind, so
//!   `total_in_flight` returns to zero and the next acquire is granted
//!   (a leaked slot would park that acquire forever, which the model
//!   reports as a deadlock rather than a pass);
//! * a panicking tenant racing a well-behaved one never wedges admission:
//!   with a global bound of one, the bystander can only ever be admitted
//!   because the unwind gave the slot back.
//!
//! The controller is built *inside* the model so its mutex, condvars and
//! dispatcher thread all register with the model's scheduler, and dropped
//! inside it too (drop joins the dispatcher — a leaked dispatcher would
//! fail the model as a leaked thread).
#![cfg(vcsql_loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};
use vcsql_server::AdmissionController;

/// Every explored schedule panics on purpose; without this filter the
/// default hook would print a backtrace header per iteration. Installed
/// once for the whole test binary, forwarding every *other* panic to the
/// previous hook so real failures still print.
fn silence_injected_panics() {
    static SILENCE: Once = Once::new();
    SILENCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected admission panic"));
            if !injected {
                prev(info);
            }
        }));
    });
}

#[test]
fn panicking_holder_releases_its_slot_under_every_schedule() {
    silence_injected_panics();
    let explored = loom::Builder::new().preemptions(2).check(|| {
        let ctrl = AdmissionController::new(1, 1);
        // The permit moves INTO the panicking closure, so the unwind is the
        // only thing that can release it — exactly `run_sql`'s shape, where
        // the RAII permit spans the `catch_unwind` around tenant execution.
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _permit = ctrl.acquire(0);
            panic!("injected admission panic");
        }));
        assert!(r.is_err(), "the injected panic must surface");
        assert_eq!(ctrl.total_in_flight(), 0, "panicked holder leaked its slot");
        // The slot is reusable: with bounds 1/1 this acquire is only
        // grantable because the unwind released the first permit. A leak
        // parks it forever and the model reports a deadlock, not a pass.
        let permit = ctrl.acquire(1);
        assert_eq!(ctrl.total_in_flight(), 1);
        drop(permit);
        assert_eq!(ctrl.total_in_flight(), 0);
        // `ctrl` drops here, joining the dispatcher inside the model.
    });
    assert!(explored.complete, "interleaving space must be fully explored");
    assert!(explored.iterations >= 2, "the unwind must be scheduled more than one way");
}

#[test]
fn panicking_tenant_racing_a_bystander_never_wedges_admission() {
    silence_injected_panics();
    let explored = loom::Builder::new().preemptions(1).check(|| {
        let ctrl = Arc::new(AdmissionController::new(1, 1));
        let panicker = {
            let ctrl = Arc::clone(&ctrl);
            loom::thread::spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    let _permit = ctrl.acquire(0);
                    panic!("injected admission panic");
                }));
                assert!(r.is_err(), "the injected panic must surface");
            })
        };
        // Global bound 1: whichever way the panicker is scheduled, this
        // acquire is granted only after its slot came back — under every
        // interleaving, or the model deadlocks.
        let permit = ctrl.acquire(1);
        drop(permit);
        panicker.join().expect("the panicking tenant caught its own panic");
        assert_eq!(ctrl.total_in_flight(), 0, "some schedule leaked a slot");
        assert_eq!(ctrl.waiting(), 0, "no ticket may be left queued");
    });
    assert!(explored.complete, "interleaving space must be fully explored");
    assert!(explored.iterations >= 2, "the race must have more than one schedule");
}
