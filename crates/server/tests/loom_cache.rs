//! Loom model checks for the sharded plan cache.
//!
//! Compiled only under `RUSTFLAGS="--cfg vcsql_loom"` (the model-checking
//! lane): the server's `sync` shim then re-exports the `loom` compat
//! crate's shadow `RwLock`/`Mutex`, whose deterministic scheduler explores
//! every preemption-bounded interleaving inside `loom::model`. Checked
//! here, at preemption bound 2:
//!
//! * concurrent `get`/`insert` of one statement **linearizes** — every
//!   racer ends up holding the same plan allocation, and the insert is
//!   never lost;
//! * racing inserts beyond capacity keep the per-shard LRU bound;
//! * readers (`contains`/`len`/stats) and writers never deadlock — loom's
//!   scheduler fails the model if any interleaving blocks forever.
//!
//! Plans are prebuilt *outside* the model (planning is pure computation,
//! modelling it would just multiply iterations); the cache itself is built
//! inside, so its locks register with the model's scheduler.
#![cfg(vcsql_loom)]

use std::sync::Arc;
use vcsql_core::QueryPlan;
use vcsql_relation::schema::{Column, Schema};
use vcsql_relation::DataType;
use vcsql_server::ShardedPlanCache;

fn plan(sql: &str) -> Arc<QueryPlan> {
    let schemas = vec![Schema::new(
        "r",
        vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)],
    )];
    Arc::new(QueryPlan::prepare(sql, &schemas).expect("test statement must plan"))
}

#[test]
fn racing_get_insert_of_one_statement_linearizes() {
    const Q: &str = "SELECT r.a FROM r";
    let plan_a = plan(Q);
    let plan_b = plan(Q);
    let explored = loom::Builder::new().preemptions(2).check(move || {
        let cache = Arc::new(ShardedPlanCache::new(1, 2));
        let worker = {
            let cache = Arc::clone(&cache);
            let mine = Arc::clone(&plan_a);
            loom::thread::spawn(move || match cache.get(0, Q) {
                Some(hit) => hit,
                None => cache.insert(Q, mine),
            })
        };
        let ours = match cache.get(1, Q) {
            Some(hit) => hit,
            None => cache.insert(Q, Arc::clone(&plan_b)),
        };
        let theirs = worker.join().expect("model thread must not panic");
        // Linearization: whichever insert won, both racers hold the same
        // allocation, and a later lookup still finds it (no lost insert).
        assert!(Arc::ptr_eq(&ours, &theirs), "racing tenants got different plans");
        let settled = cache.get(0, Q).expect("insert must never be lost");
        assert!(Arc::ptr_eq(&settled, &ours));
        assert_eq!(cache.len(), 1);
        // Three gets happened; each was a hit or a miss, nothing dropped.
        assert_eq!(cache.hits() + cache.misses(), 3);
    });
    assert!(explored.complete, "interleaving space must be fully explored");
    assert!(explored.iterations >= 2, "the race must have more than one schedule");
}

#[test]
fn racing_inserts_beyond_capacity_keep_the_lru_bound() {
    const QA: &str = "SELECT r.a FROM r";
    const QB: &str = "SELECT r.b FROM r";
    const QC: &str = "SELECT r.a, r.b FROM r";
    let (pa, pb, pc) = (plan(QA), plan(QB), plan(QC));
    let explored = loom::Builder::new().preemptions(2).check(move || {
        // Capacity 1: every insert beyond the first must evict, whatever
        // the interleaving.
        let cache = Arc::new(ShardedPlanCache::new(1, 1));
        cache.insert(QA, Arc::clone(&pa));
        let worker = {
            let cache = Arc::clone(&cache);
            let pb = Arc::clone(&pb);
            loom::thread::spawn(move || {
                cache.insert(QB, pb);
            })
        };
        cache.insert(QC, Arc::clone(&pc));
        worker.join().expect("model thread must not panic");
        assert_eq!(cache.len(), 1, "racing evictions must keep the capacity bound");
    });
    assert!(explored.complete);
}

#[test]
fn readers_and_writers_never_deadlock() {
    const Q: &str = "SELECT r.b FROM r";
    let p = plan(Q);
    let explored = loom::Builder::new().preemptions(2).check(move || {
        let cache = Arc::new(ShardedPlanCache::new(2, 2));
        let writer = {
            let cache = Arc::clone(&cache);
            let p = Arc::clone(&p);
            loom::thread::spawn(move || {
                cache.get(0, Q);
                cache.insert(Q, p);
            })
        };
        // Read-side traffic interleaved with the writer: shard read locks,
        // the tenant-stats mutex, and a write-locking get.
        cache.contains(Q);
        let _ = cache.len();
        let _ = cache.tenant_stats(1);
        cache.get(1, Q);
        writer.join().expect("model thread must not panic");
        // Both gets were counted, whatever order they ran in.
        assert_eq!(cache.hits() + cache.misses(), 2);
        assert!(cache.contains(Q));
    });
    // `complete` doubles as the no-deadlock verdict: a blocked interleaving
    // would fail the model, not finish it.
    assert!(explored.complete);
}
