//! Admission control: bounded in-flight executions per tenant and globally,
//! with fair round-robin dequeue across tenants.
//!
//! Every [`TenantSession::run_sql`](crate::TenantSession::run_sql) first
//! acquires an [`AdmissionPermit`]. Requests beyond the per-tenant or global
//! in-flight bound queue up per tenant; a single background dispatcher
//! thread — the only thread this crate spawns — grants tickets in round-
//! robin order over the tenant queues, so a tenant hammering the server
//! cannot starve a quiet one: each admission scan starts at the tenant
//! *after* the last one served.
//!
//! The dispatcher parks on a condvar when nothing is grantable and is woken
//! by submissions and permit drops; waiters park on a second condvar and
//! re-check whether their ticket was granted. Dropping the controller
//! closes the queue and joins the dispatcher.

use crate::lock;
use crate::sync::thread::{Builder, JoinHandle};
use crate::sync::{Condvar, Mutex, MutexGuard};
use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, PoisonError};

/// Lifetime counters of the admission queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionStats {
    /// Permits granted over the controller's lifetime.
    pub admitted: u64,
    /// Most executions ever in flight at once (never exceeds the global
    /// bound).
    pub peak_in_flight: usize,
}

/// Shared between the controller handle, every permit, and the dispatcher.
struct Shared {
    state: Mutex<State>,
    /// The dispatcher parks here; submissions and permit drops notify.
    work: Condvar,
    /// Waiters park here; the dispatcher notifies after granting.
    granted: Condvar,
}

/// Everything the dispatcher arbitrates over, under one lock.
struct State {
    /// Per-tenant FIFO of waiting ticket ids, grown on demand.
    queues: Vec<VecDeque<u64>>,
    /// Per-tenant in-flight execution counts.
    in_flight: Vec<usize>,
    total_in_flight: usize,
    /// Round-robin position: the tenant the next admission scan starts at.
    cursor: usize,
    /// Monotonic ticket ids.
    next_ticket: u64,
    /// Tickets granted but not yet claimed by their waiter.
    granted: HashSet<u64>,
    per_tenant: usize,
    total: usize,
    closed: bool,
    stats: AdmissionStats,
}

impl State {
    fn ensure_tenant(&mut self, tenant: usize) {
        if self.queues.len() <= tenant {
            self.queues.resize_with(tenant + 1, VecDeque::new);
            self.in_flight.resize(tenant + 1, 0);
        }
    }

    /// Grant the next admissible ticket in round-robin order, if any: scan
    /// tenants starting at the cursor, skip tenants with an empty queue or
    /// at their in-flight bound, admit the head ticket of the first
    /// eligible queue, and park the cursor just past it.
    fn grant_next(&mut self) -> bool {
        if self.total_in_flight >= self.total || self.queues.is_empty() {
            return false;
        }
        let n = self.queues.len();
        for i in 0..n {
            let t = (self.cursor + i) % n;
            if self.queues[t].is_empty() || self.in_flight[t] >= self.per_tenant {
                continue;
            }
            let ticket = self.queues[t].pop_front().expect("queue checked non-empty");
            self.in_flight[t] += 1;
            self.total_in_flight += 1;
            self.stats.admitted += 1;
            self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.total_in_flight);
            self.granted.insert(ticket);
            self.cursor = (t + 1) % n;
            return true;
        }
        false
    }
}

fn wait<'a, T>(cond: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cond.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// The admission queue: [`AdmissionController::acquire`] blocks until the
/// caller's tenant is within both bounds, returning a permit whose `Drop`
/// releases the slot.
pub struct AdmissionController {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock(&self.shared.state);
        f.debug_struct("AdmissionController")
            .field("per_tenant", &st.per_tenant)
            .field("total", &st.total)
            .field("total_in_flight", &st.total_in_flight)
            .finish_non_exhaustive()
    }
}

impl AdmissionController {
    /// A controller admitting at most `per_tenant` concurrent executions
    /// per tenant and `total` across all tenants. Panics on zero bounds
    /// (the server validates its configuration first).
    pub fn new(per_tenant: usize, total: usize) -> AdmissionController {
        assert!(per_tenant > 0, "per-tenant admission bound must admit at least one");
        assert!(total > 0, "global admission bound must admit at least one");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: Vec::new(),
                in_flight: Vec::new(),
                total_in_flight: 0,
                cursor: 0,
                next_ticket: 0,
                granted: HashSet::new(),
                per_tenant,
                total,
                closed: false,
                stats: AdmissionStats::default(),
            }),
            work: Condvar::new(),
            granted: Condvar::new(),
        });
        let for_loop = Arc::clone(&shared);
        let dispatcher = Builder::new()
            .name("vcsql-admission".into())
            .spawn(move || dispatch_loop(&for_loop))
            .expect("spawn admission dispatcher");
        AdmissionController { shared, dispatcher: Some(dispatcher) }
    }

    /// Queue `tenant` and block until the dispatcher grants a slot. FIFO
    /// within a tenant, round-robin across tenants.
    pub fn acquire(&self, tenant: usize) -> AdmissionPermit {
        let mut st = lock(&self.shared.state);
        assert!(!st.closed, "admission controller is shut down");
        st.ensure_tenant(tenant);
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queues[tenant].push_back(ticket);
        self.shared.work.notify_all();
        while !st.granted.remove(&ticket) {
            st = wait(&self.shared.granted, st);
        }
        drop(st);
        AdmissionPermit { shared: Arc::clone(&self.shared), tenant }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> AdmissionStats {
        lock(&self.shared.state).stats
    }

    /// Executions in flight right now, across all tenants.
    pub fn total_in_flight(&self) -> usize {
        lock(&self.shared.state).total_in_flight
    }

    /// Executions in flight for one tenant.
    pub fn in_flight(&self, tenant: usize) -> usize {
        lock(&self.shared.state).in_flight.get(tenant).copied().unwrap_or(0)
    }

    /// Requests queued (not yet admitted) across all tenants.
    pub fn waiting(&self) -> usize {
        lock(&self.shared.state).queues.iter().map(VecDeque::len).sum()
    }
}

impl Drop for AdmissionController {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.closed = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

fn dispatch_loop(shared: &Shared) {
    let mut st = lock(&shared.state);
    loop {
        if st.closed {
            return;
        }
        if st.grant_next() {
            shared.granted.notify_all();
            continue;
        }
        st = wait(&shared.work, st);
    }
}

/// An admitted execution slot; dropping it releases the slot and wakes the
/// dispatcher.
pub struct AdmissionPermit {
    shared: Arc<Shared>,
    tenant: usize,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.in_flight[self.tenant] -= 1;
            st.total_in_flight -= 1;
        }
        self.shared.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vcsql_bsp::WorkerPool;

    /// The arbitration core, driven deterministically: a backlogged noisy
    /// tenant and a quiet one alternate, and bounds hold at every step.
    #[test]
    fn round_robin_interleaves_backlogged_tenants() {
        let mut st = State {
            queues: Vec::new(),
            in_flight: Vec::new(),
            total_in_flight: 0,
            cursor: 0,
            next_ticket: 0,
            granted: HashSet::new(),
            per_tenant: 2,
            total: 3,
            closed: false,
            stats: AdmissionStats::default(),
        };
        st.ensure_tenant(1);
        // Tenant 0 floods the queue before tenant 1 shows up at all.
        st.queues[0].extend([10, 11, 12, 13]);
        st.queues[1].extend([20, 21]);
        assert!(st.grant_next() && st.grant_next() && st.grant_next());
        // Round-robin: 0, 1, 0 — not three grants for the flooder.
        assert_eq!(st.in_flight, vec![2, 1]);
        assert_eq!(st.total_in_flight, 3);
        assert!(st.granted.contains(&10) && st.granted.contains(&20) && st.granted.contains(&11));
        // Global bound reached: nothing more grants.
        assert!(!st.grant_next());
        // A release lets the scan continue from the cursor: tenant 1 is
        // next, and tenant 0 is at its per-tenant bound anyway.
        st.in_flight[0] -= 1;
        st.total_in_flight -= 1;
        assert!(st.grant_next());
        assert!(st.granted.contains(&21));
        assert_eq!(st.stats.admitted, 4);
        assert_eq!(st.stats.peak_in_flight, 3);
    }

    #[test]
    fn per_tenant_bound_holds_even_with_global_headroom() {
        let mut st = State {
            queues: Vec::new(),
            in_flight: Vec::new(),
            total_in_flight: 0,
            cursor: 0,
            next_ticket: 0,
            granted: HashSet::new(),
            per_tenant: 1,
            total: 8,
            closed: false,
            stats: AdmissionStats::default(),
        };
        st.ensure_tenant(0);
        st.queues[0].extend([1, 2, 3]);
        assert!(st.grant_next());
        assert!(!st.grant_next(), "sole tenant is at its per-tenant bound");
        assert_eq!(st.total_in_flight, 1);
    }

    /// End-to-end through the dispatcher thread: concurrent acquirers never
    /// exceed the global bound, and everyone is eventually admitted.
    #[test]
    fn concurrent_acquires_respect_the_global_bound() {
        let ctl = AdmissionController::new(1, 2);
        let current = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        pool.run(4, &|w| {
            for _ in 0..5 {
                let permit = ctl.acquire(w); // four distinct tenants
                let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::yield_now();
                current.fetch_sub(1, Ordering::SeqCst);
                drop(permit);
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "global bound breached");
        let stats = ctl.stats();
        assert_eq!(stats.admitted, 20);
        assert!(stats.peak_in_flight <= 2);
        assert_eq!(ctl.total_in_flight(), 0);
        assert_eq!(ctl.waiting(), 0);
    }

    #[test]
    fn uncontended_acquire_is_immediate_and_permit_drop_releases() {
        let ctl = AdmissionController::new(2, 4);
        let a = ctl.acquire(0);
        let b = ctl.acquire(0);
        assert_eq!(ctl.in_flight(0), 2);
        assert_eq!(ctl.total_in_flight(), 2);
        drop(a);
        drop(b);
        assert_eq!(ctl.total_in_flight(), 0);
        // Tenant ids never seen report zero instead of panicking.
        assert_eq!(ctl.in_flight(9), 0);
    }

    #[test]
    #[should_panic]
    fn zero_bound_panics() {
        AdmissionController::new(0, 1);
    }
}
