//! The server-wide shared plan cache: one bounded [`PlanCache`] per shard
//! behind an `RwLock`, keyed by SQL hash, with per-tenant hit/miss counters.
//!
//! Plans depend only on the SQL text and the schemas, so every tenant of a
//! [`QueryServer`](crate::QueryServer) shares one cache: a statement planned
//! for one tenant is a hit for all of them. Sharding keeps the lock
//! fine-grained — two tenants preparing different statements almost never
//! contend — and planning itself always happens *outside* any lock
//! ([`ShardedPlanCache::get_or_prepare`]), so a cold compile stalls no one.
//! Two tenants racing to plan the same SQL both succeed; the first insert
//! wins and both end up holding the same plan allocation
//! ([`PlanCache::insert`]).

use crate::lock;
use crate::sync::{Mutex, RwLock};
use std::hash::Hasher;
use std::sync::{Arc, PoisonError};
use vcsql_core::QueryPlan;
use vcsql_relation::fx::FxHasher;
use vcsql_relation::schema::Schema;
use vcsql_relation::RelError;
use vcsql_session::PlanCache;

/// One tenant's view of the shared cache: how often its lookups were served
/// from plans already cached (by anyone) versus planned from scratch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCacheStats {
    /// Lookups served from the shared cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
}

/// A sharded, concurrently usable [`PlanCache`]: `shards` independent LRU
/// caches, each behind its own `RwLock`, plus per-tenant hit/miss counters.
#[derive(Debug)]
pub struct ShardedPlanCache {
    shards: Vec<RwLock<PlanCache>>,
    /// Per-tenant hit/miss counters, indexed by tenant id and grown on
    /// demand (tenant ids are dense — the server hands them out).
    tenants: Mutex<Vec<TenantCacheStats>>,
}

impl ShardedPlanCache {
    /// A cache of `shards` shards holding at most `capacity_per_shard`
    /// plans each. Panics on zero shards or zero capacity (the server
    /// validates its configuration before building one).
    pub fn new(shards: usize, capacity_per_shard: usize) -> ShardedPlanCache {
        assert!(shards > 0, "plan cache needs at least one shard");
        ShardedPlanCache {
            shards: (0..shards).map(|_| RwLock::new(PlanCache::new(capacity_per_shard))).collect(),
            tenants: Mutex::new(Vec::new()),
        }
    }

    /// The shard serving `sql`.
    fn shard_of(&self, sql: &str) -> usize {
        let mut h = FxHasher::default();
        h.write(sql.as_bytes());
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Look up `sql` for `tenant`: a hit refreshes shard recency and counts
    /// toward the tenant's hit counter, a miss counts toward its misses and
    /// returns `None`. Takes one shard's write lock briefly (recency and
    /// counters mutate even on the hit path).
    pub fn get(&self, tenant: usize, sql: &str) -> Option<Arc<QueryPlan>> {
        let plan = {
            let mut shard = self.write_shard(self.shard_of(sql));
            shard.get(sql)
        };
        let mut tenants = lock(&self.tenants);
        if tenants.len() <= tenant {
            tenants.resize(tenant + 1, TenantCacheStats::default());
        }
        match plan.is_some() {
            true => tenants[tenant].hits += 1,
            false => tenants[tenant].misses += 1,
        }
        plan
    }

    /// Insert a plan built outside any lock. If `sql` is already cached —
    /// two tenants raced to plan the same statement — the first insert wins
    /// and every caller gets the cached allocation back.
    pub fn insert(&self, sql: &str, plan: Arc<QueryPlan>) -> Arc<QueryPlan> {
        self.write_shard(self.shard_of(sql)).insert(sql, plan)
    }

    /// The full lookup path: consult the cache, and on a miss plan `sql`
    /// against `schemas` *outside* every lock before inserting the result.
    /// Planning errors are returned as-is and cache nothing.
    pub fn get_or_prepare(
        &self,
        tenant: usize,
        sql: &str,
        schemas: &[Schema],
    ) -> Result<Arc<QueryPlan>, RelError> {
        if let Some(plan) = self.get(tenant, sql) {
            return Ok(plan);
        }
        let plan = Arc::new(QueryPlan::prepare(sql, schemas)?);
        Ok(self.insert(sql, plan))
    }

    /// True iff `sql` is currently cached (read lock; no recency/stat
    /// effects).
    pub fn contains(&self, sql: &str) -> bool {
        self.read_shard(self.shard_of(sql)).contains(sql)
    }

    /// Cached plans right now, across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|s| self.read_shard(s).len()).sum()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Aggregate hits across all shards (tenant-attributed hits are in
    /// [`ShardedPlanCache::tenant_stats`]).
    pub fn hits(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.read_shard(s).hits()).sum()
    }

    /// Aggregate misses across all shards.
    pub fn misses(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.read_shard(s).misses()).sum()
    }

    /// One tenant's hit/miss counters (zeros for a tenant that never looked
    /// anything up).
    pub fn tenant_stats(&self, tenant: usize) -> TenantCacheStats {
        lock(&self.tenants).get(tenant).copied().unwrap_or_default()
    }

    fn read_shard(&self, s: usize) -> impl std::ops::Deref<Target = PlanCache> + '_ {
        self.shards[s].read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_shard(&self, s: usize) -> impl std::ops::DerefMut<Target = PlanCache> + '_ {
        self.shards[s].write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_relation::schema::Column;
    use vcsql_relation::DataType;

    fn schemas() -> Vec<Schema> {
        vec![Schema::new(
            "r",
            vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)],
        )]
    }

    #[test]
    fn tenants_share_plans_and_keep_private_counters() {
        let cache = ShardedPlanCache::new(4, 8);
        let s = schemas();
        let q = "SELECT r.a FROM r";
        let first = cache.get_or_prepare(0, q, &s).unwrap();
        let second = cache.get_or_prepare(1, q, &s).unwrap();
        // One plan allocation serves both tenants.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.tenant_stats(0), TenantCacheStats { hits: 0, misses: 1 });
        assert_eq!(cache.tenant_stats(1), TenantCacheStats { hits: 1, misses: 0 });
        // A tenant that never looked up reads zeros, not a panic.
        assert_eq!(cache.tenant_stats(7), TenantCacheStats::default());
    }

    #[test]
    fn racing_inserts_agree_on_the_first_plan() {
        let cache = ShardedPlanCache::new(2, 4);
        let s = schemas();
        let q = "SELECT r.b FROM r";
        // Two callers both missed and both planned (get_or_prepare plans
        // outside the lock, so this is the real race shape).
        assert!(cache.get(0, q).is_none());
        assert!(cache.get(1, q).is_none());
        let a = cache.insert(q, Arc::new(QueryPlan::prepare(q, &s).unwrap()));
        let b = cache.insert(q, Arc::new(QueryPlan::prepare(q, &s).unwrap()));
        assert!(Arc::ptr_eq(&a, &b), "first insert must win for every caller");
        assert!(cache.contains(q));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_is_per_shard_and_eviction_stays_local() {
        let cache = ShardedPlanCache::new(1, 2);
        let s = schemas();
        let (a, b, c) = ("SELECT r.a FROM r", "SELECT r.b FROM r", "SELECT r.a, r.b FROM r");
        cache.get_or_prepare(0, a, &s).unwrap();
        cache.get_or_prepare(0, b, &s).unwrap();
        cache.get_or_prepare(0, a, &s).unwrap(); // touch `a`: `b` is now LRU
        cache.get_or_prepare(0, c, &s).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(a) && cache.contains(c) && !cache.contains(b));
    }

    #[test]
    fn planning_errors_cache_nothing() {
        let cache = ShardedPlanCache::new(3, 4);
        assert!(cache.get_or_prepare(0, "SELECT nope FROM nowhere", &schemas()).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.tenant_stats(0).misses, 1);
    }

    #[test]
    #[should_panic]
    fn zero_shards_panic() {
        ShardedPlanCache::new(0, 4);
    }
}
