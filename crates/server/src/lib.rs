//! # vcsql-server — a multi-tenant query server over one shared TAG
//!
//! One process encodes the database once and serves many clients: a
//! [`QueryServer`] owns the shared `Arc<TagGraph>`, a sharded
//! [`ShardedPlanCache`] (a statement planned for one tenant is a hit for
//! all), an [`AdmissionController`] bounding in-flight executions, and —
//! the part a single [`vcsql_session::Session`] cannot model — **one**
//! placement that every tenant's traffic must share.
//!
//! A lone session repartitions unilaterally: when its profile drifts it
//! derives a fresh target and walks there. With several tenants over one
//! graph that policy thrashes — each tenant drags the placement toward its
//! own mix, and vertices ping-pong on every mix switch. The server instead
//! runs a single **arbitrated repartitioning loop**
//! ([`Arbitration::Merged`]): each tenant *votes* with its exponentially
//! decayed [`TrafficProfile`], the votes are merged byte-weighted (a
//! tenant's weight is the traffic it actually generates) into one
//! consensus workload, and only when *that* drifts past the threshold does
//! the server derive one target and migrate toward it under a global
//! budget. [`Arbitration::Unilateral`] (per-tenant targets that overwrite
//! each other) and [`Arbitration::Static`] (never adapt) are kept as
//! baselines for the `repro serve` benchmark.
//!
//! Concurrency model: tenants call [`TenantSession::run_sql`] from any
//! thread. Executions share the server's persistent
//! [`vcsql_bsp::WorkerPool`] (fan-outs are serialized by the
//! pool's own run lock), the plan cache locks per shard, the placement
//! sits behind one `RwLock` (read to execute, write to adapt), and the
//! admission dispatcher is the only thread this crate spawns.

mod admission;
mod cache;
mod sync;

pub use admission::{AdmissionController, AdmissionPermit, AdmissionStats};
pub use cache::{ShardedPlanCache, TenantCacheStats};

use crate::sync::{Mutex, MutexGuard, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, PoisonError};
use vcsql_bsp::{
    balance_cap, migrate_step, EngineConfig, FaultInjector, PartitionStrategy, Partitioning,
    TrafficProfile, WorkerPool, DEFAULT_BALANCE_SLACK,
};
use vcsql_core::{ExecOutput, QueryPlan, TagJoinExecutor};
use vcsql_dist::NetStats;
use vcsql_relation::RelError;
use vcsql_session::{panic_message, vertex_state_bytes};
use vcsql_tag::TagGraph;

type Result<T> = std::result::Result<T, RelError>;

/// Poison-tolerant lock: the protected state is only ever mutated with the
/// lock held and every mutation is panic-atomic at our level, so a poisoned
/// lock just means some other execution panicked — its state is still
/// consistent for everyone else.
pub(crate) fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How the server reconciles tenants' competing placement preferences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arbitration {
    /// The arbitrated loop: merge every tenant's decayed profile
    /// byte-weighted into one consensus workload, derive one target when
    /// the *consensus* drifts, migrate under the global budget.
    #[default]
    Merged,
    /// The naive policy a fleet of independent sessions would apply: the
    /// executing tenant's own profile drives the target, and a drifted
    /// tenant overwrites another tenant's in-flight target. Kept as the
    /// thrashing baseline.
    Unilateral,
    /// Never adapt: the initial placement serves every tenant forever.
    Static,
}

/// Configuration of a [`QueryServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulated machines. `1` serves purely locally (no partitioning, no
    /// network accounting, no arbitration).
    pub machines: usize,
    /// BSP engine tuning, shared by every tenant's executions.
    pub engine: EngineConfig,
    /// Initial placement strategy. A [`PartitionStrategy::Workload`]
    /// strategy also seeds the consensus profile with its calibration
    /// profile.
    pub strategy: PartitionStrategy,
    /// Plan-cache shards (must be at least 1).
    pub cache_shards: usize,
    /// Plan-cache capacity *per shard* (must be at least 1).
    pub plan_cache_capacity: usize,
    /// Arbitration trigger: adapt when the vote's byte-weighted drift from
    /// the placement's profile exceeds this.
    pub drift_threshold: f64,
    /// Global migration budget: most vertices migrated per arbitration
    /// step, across all tenants (must be at least 1).
    pub migration_budget: usize,
    /// Relative headroom over the ideal per-machine load that placement
    /// and migration may use.
    pub balance_slack: f64,
    /// Exponential forgetting of each tenant's traffic profile, as a
    /// half-life in that tenant's executions (see
    /// [`vcsql_session::SessionConfig::profile_half_life`]). The server
    /// defaults this *on*: votes must track what tenants run now, not what
    /// they ran at startup.
    pub profile_half_life: Option<f64>,
    /// How competing tenant preferences are reconciled.
    pub arbitration: Arbitration,
    /// Most in-flight executions per tenant (must be at least 1).
    pub max_in_flight_per_tenant: usize,
    /// Most in-flight executions across all tenants (must be at least 1).
    pub max_in_flight_total: usize,
    /// Deterministic fault injection shared by every tenant's executions
    /// (`None` = fault-free). The injector's fired-once semantics span
    /// queries and tenants, so a planned fault hits exactly one execution.
    pub fault_injector: Option<Arc<FaultInjector>>,
    /// Most *re-executions* of one query after transient injected faults
    /// (dropped deliveries). `0` fails fast; panics never retry.
    pub max_retries: usize,
    /// Base of the exponential retry backoff, in modelled seconds: attempt
    /// `n` (0-based) waits `retry_backoff_secs * 2^n` before re-executing.
    /// Modelled time, like the runtime figures — nothing actually sleeps.
    pub retry_backoff_secs: f64,
    /// Per-query deadline on the modelled clock: backoff waits plus the
    /// successful attempt's modelled runtime (at
    /// [`ServerConfig::bandwidth_bytes_per_sec`]) must fit inside it, or
    /// the query fails with a per-tenant timeout. `None` disables it.
    pub deadline_secs: Option<f64>,
    /// Bandwidth the deadline's modelled runtime is priced at.
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            machines: 1,
            engine: EngineConfig::default(),
            strategy: PartitionStrategy::Refined,
            cache_shards: 8,
            plan_cache_capacity: 64,
            drift_threshold: 0.25,
            migration_budget: 2048,
            balance_slack: DEFAULT_BALANCE_SLACK,
            profile_half_life: Some(8.0),
            arbitration: Arbitration::Merged,
            max_in_flight_per_tenant: 4,
            max_in_flight_total: 16,
            fault_injector: None,
            max_retries: 3,
            retry_backoff_secs: 0.05,
            deadline_secs: None,
            bandwidth_bytes_per_sec: 125_000_000.0,
        }
    }
}

/// Per-tenant (and, aggregated, per-server) failure-isolation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureStats {
    /// Executions that panicked and were caught at the tenant boundary.
    pub panics: u64,
    /// Executions that blew their modelled-clock deadline.
    pub timeouts: u64,
    /// Re-executions after transient faults (each retry counted).
    pub retries: u64,
    /// Machine crashes recovered from a checkpoint *inside* successful
    /// executions (confined recovery; the query still answered).
    pub recoveries: u64,
}

impl FailureStats {
    /// Fold another tenant's (or attempt's) counters into this one.
    pub fn add(&mut self, other: &FailureStats) {
        self.panics += other.panics;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.recoveries += other.recoveries;
    }
}

/// Counters the server accumulates over its lifetime, across all tenants.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Executions served.
    pub queries: u64,
    /// Arbitration targets derived (consensus drift threshold crossings).
    pub adaptations: u64,
    /// Migration steps that moved at least one vertex.
    pub migration_steps: u64,
    /// Vertices migrated across all arbitration steps.
    pub migrated_vertices: u64,
    /// Bytes of migrated vertex state.
    pub migration_bytes: u64,
    /// Cumulative network traffic over every execution, migrations
    /// included.
    pub net: NetStats,
    /// Failure-isolation counters, across all tenants.
    pub failures: FailureStats,
}

/// Counters one tenant accumulates.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Executions this tenant ran.
    pub queries: u64,
    /// This tenant's cumulative network traffic, including the migration
    /// bytes its executions triggered.
    pub net: NetStats,
    /// This tenant's failure-isolation counters: panics caught, deadlines
    /// blown, transient-fault retries, crash recoveries.
    pub failures: FailureStats,
}

/// The placement every tenant shares, plus the in-flight arbitration walk.
#[derive(Debug)]
struct PlacementState {
    /// Current placement (`None` when `machines == 1`). Mid-migration this
    /// is the in-between placement the next execution runs under.
    current: Option<Arc<Partitioning>>,
    /// The profile the current placement was derived from — the standing
    /// consensus.
    profile: TrafficProfile,
    pending: Option<PendingMigration>,
}

/// An in-flight arbitration: the target, the vote it was derived from, and
/// (under [`Arbitration::Unilateral`]) which tenant proposed it.
#[derive(Debug)]
struct PendingMigration {
    target: Partitioning,
    profile: TrafficProfile,
    proposer: Option<usize>,
}

/// One tenant's server-side state.
#[derive(Debug)]
struct TenantState {
    id: usize,
    /// This tenant's decayed traffic profile — its arbitration vote.
    profile: Mutex<TrafficProfile>,
    stats: Mutex<TenantStats>,
}

/// The server: one shared TAG, one shared placement, one plan cache, one
/// admission queue. Open per-client handles with
/// [`QueryServer::open_session`]; everything on the server is `&self` and
/// thread-safe.
pub struct QueryServer {
    tag: Arc<TagGraph>,
    config: ServerConfig,
    cache: ShardedPlanCache,
    placement: RwLock<PlacementState>,
    tenants: Mutex<Vec<Arc<TenantState>>>,
    admission: AdmissionController,
    /// Persistent worker runtime shared by every tenant's executions
    /// (`None` for single-threaded engine configs). The pool's run lock
    /// serializes fan-outs; workers park between queries.
    pool: Option<Arc<WorkerPool>>,
    stats: Mutex<ServerStats>,
}

impl std::fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryServer")
            .field("machines", &self.config.machines)
            .field("arbitration", &self.config.arbitration)
            .field("tenants", &lock(&self.tenants).len())
            .finish_non_exhaustive()
    }
}

impl QueryServer {
    /// Start a server over `tag` (the handle is cloned; the graph itself
    /// is shared). Validates the configuration the same way
    /// [`vcsql_session::Session::open`] does, plus the server-only knobs:
    /// at least one cache shard and positive admission bounds.
    pub fn start(tag: &Arc<TagGraph>, config: ServerConfig) -> Result<Arc<QueryServer>> {
        let invalid = |msg: String| RelError::Other(format!("server config: {msg}"));
        if config.machines == 0 {
            return Err(invalid("at least one machine required".into()));
        }
        if config.machines > u16::MAX as usize {
            return Err(invalid("machine count exceeds u16".into()));
        }
        if config.cache_shards == 0 {
            return Err(invalid("plan cache needs at least one shard".into()));
        }
        if config.plan_cache_capacity == 0 {
            return Err(invalid("plan cache needs capacity for at least one plan".into()));
        }
        if config.migration_budget == 0 {
            return Err(invalid("migration budget must allow at least one vertex".into()));
        }
        if !config.drift_threshold.is_finite() || config.drift_threshold <= 0.0 {
            return Err(invalid(format!(
                "drift threshold must be positive and finite, got {}",
                config.drift_threshold
            )));
        }
        if !config.balance_slack.is_finite() || config.balance_slack < 0.0 {
            return Err(invalid(format!(
                "balance slack must be non-negative, got {}",
                config.balance_slack
            )));
        }
        if let Some(h) = config.profile_half_life {
            if !h.is_finite() || h <= 0.0 {
                return Err(invalid(format!(
                    "profile half-life must be positive and finite, got {h}"
                )));
            }
        }
        if config.max_in_flight_per_tenant == 0 || config.max_in_flight_total == 0 {
            return Err(invalid("admission bounds must admit at least one execution".into()));
        }
        if !config.retry_backoff_secs.is_finite() || config.retry_backoff_secs < 0.0 {
            return Err(invalid(format!(
                "retry backoff must be non-negative and finite, got {}",
                config.retry_backoff_secs
            )));
        }
        if let Some(d) = config.deadline_secs {
            if !d.is_finite() || d <= 0.0 {
                return Err(invalid(format!("deadline must be positive and finite, got {d}")));
            }
        }
        if !config.bandwidth_bytes_per_sec.is_finite() || config.bandwidth_bytes_per_sec <= 0.0 {
            return Err(invalid(format!(
                "bandwidth must be positive and finite, got {}",
                config.bandwidth_bytes_per_sec
            )));
        }
        let current = (config.machines > 1).then(|| {
            Arc::new(vcsql_dist::tag_partitioning(tag, config.machines, &config.strategy))
        });
        let profile = match &config.strategy {
            PartitionStrategy::Workload(p) => p.clone(),
            _ => TrafficProfile::new(),
        };
        let pool =
            (config.engine.threads > 1).then(|| Arc::new(WorkerPool::new(config.engine.threads)));
        Ok(Arc::new(QueryServer {
            tag: Arc::clone(tag),
            cache: ShardedPlanCache::new(config.cache_shards, config.plan_cache_capacity),
            placement: RwLock::new(PlacementState { current, profile, pending: None }),
            tenants: Mutex::new(Vec::new()),
            admission: AdmissionController::new(
                config.max_in_flight_per_tenant,
                config.max_in_flight_total,
            ),
            pool,
            stats: Mutex::new(ServerStats::default()),
            config,
        }))
    }

    /// Register a tenant and hand back its session. Tenant ids are dense,
    /// in registration order.
    pub fn open_session(self: &Arc<Self>) -> TenantSession {
        let mut tenants = lock(&self.tenants);
        let tenant = Arc::new(TenantState {
            id: tenants.len(),
            profile: Mutex::new(TrafficProfile::new()),
            stats: Mutex::new(TenantStats::default()),
        });
        tenants.push(Arc::clone(&tenant));
        TenantSession { server: Arc::clone(self), tenant }
    }

    /// The TAG graph this server serves.
    pub fn tag(&self) -> &TagGraph {
        &self.tag
    }

    /// The shared graph handle.
    pub fn tag_handle(&self) -> &Arc<TagGraph> {
        &self.tag
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared plan cache (aggregate and per-tenant counters).
    pub fn plan_cache(&self) -> &ShardedPlanCache {
        &self.cache
    }

    /// Admission-queue counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Registered tenants.
    pub fn tenant_count(&self) -> usize {
        lock(&self.tenants).len()
    }

    /// The placement every tenant currently runs under (`None` on a single
    /// machine).
    pub fn partitioning(&self) -> Option<Arc<Partitioning>> {
        self.read_placement().current.clone()
    }

    /// The standing consensus profile the current placement was derived
    /// from.
    pub fn placement_profile(&self) -> TrafficProfile {
        self.read_placement().profile.clone()
    }

    /// True iff an arbitration walk is in flight.
    pub fn migration_pending(&self) -> bool {
        self.read_placement().pending.is_some()
    }

    /// Lifetime counters, across all tenants.
    pub fn stats(&self) -> ServerStats {
        lock(&self.stats).clone()
    }

    /// The persistent worker pool (`None` when the engine config is
    /// single-threaded).
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    fn read_placement(&self) -> impl std::ops::Deref<Target = PlacementState> + '_ {
        self.placement.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Merge every tenant's decayed profile into one byte-weighted vote:
    /// `absorb` sums raw counters, so a tenant's weight in the consensus is
    /// exactly the traffic it generates. The second component is the
    /// quorum: `true` iff every registered tenant has voted (executed at
    /// least once). Deriving a target from a partial consensus is how a
    /// fleet of unilateral sessions thrashes — the first tenant to run
    /// would drag the shared placement toward its own mix before anyone
    /// else was heard — so the merged policy refuses to re-shuffle shared
    /// state until every seated tenant has spoken.
    fn merged_vote(&self) -> (TrafficProfile, bool) {
        let tenants: Vec<Arc<TenantState>> = lock(&self.tenants).clone();
        let mut vote = TrafficProfile::new();
        let mut quorum = true;
        for t in &tenants {
            let profile = lock(&t.profile);
            quorum &= !profile.is_empty();
            vote.absorb(&profile);
        }
        (vote, quorum)
    }

    /// The arbitration step run after each execution: form the vote
    /// (consensus or the proposer's own profile, per policy), derive a
    /// target when the vote drifts past the threshold, then walk the
    /// shared placement toward the pending target one bounded migration
    /// step at a time, charging migrated state to `net` (and so to the
    /// execution that triggered the step).
    fn arbitrate(&self, proposer: usize, net: &mut NetStats) {
        if self.config.machines <= 1 || self.config.arbitration == Arbitration::Static {
            return;
        }
        // The vote is formed before the placement write lock: merged votes
        // take the tenant locks, and lock order is tenants → placement.
        let (vote, quorum) = match self.config.arbitration {
            Arbitration::Merged => self.merged_vote(),
            // Unilateral tenants don't wait for anyone — that impatience is
            // the baseline's defining (mis)behaviour.
            Arbitration::Unilateral => {
                let tenants = lock(&self.tenants);
                let profile = lock(&tenants[proposer].profile);
                (profile.clone(), true)
            }
            Arbitration::Static => unreachable!("static arbitration returned above"),
        };
        let mut pl = self.placement.write().unwrap_or_else(PoisonError::into_inner);
        let drifted = || quorum && vote.byte_drift(&pl.profile) > self.config.drift_threshold;
        let need_target = match (&pl.pending, self.config.arbitration) {
            (None, _) => drifted(),
            // Unilateral tenants fight: a drifted tenant overwrites another
            // tenant's in-flight target with its own. This is the thrash
            // the merged policy exists to prevent.
            (Some(p), Arbitration::Unilateral) => p.proposer != Some(proposer) && drifted(),
            (Some(_), _) => false,
        };
        if need_target {
            let target = vcsql_dist::tag_partitioning(
                &self.tag,
                self.config.machines,
                &PartitionStrategy::Workload(vote.clone()),
            );
            pl.pending = Some(PendingMigration { target, profile: vote, proposer: Some(proposer) });
            lock(&self.stats).adaptations += 1;
        }
        let Some(pending) = &pl.pending else { return };
        let current = pl.current.as_deref().expect("machines > 1 implies a placement");
        let cap = balance_cap(
            self.tag.graph().vertex_count(),
            self.config.machines,
            self.config.balance_slack,
        );
        let step = migrate_step(current, &pending.target, self.config.migration_budget, cap);
        if !step.moves.is_empty() {
            let bytes: u64 =
                step.moves.iter().map(|m| vertex_state_bytes(&self.tag, m.vertex)).sum();
            net.record_migration(step.moves.len() as u64, bytes);
            let mut stats = lock(&self.stats);
            stats.migration_steps += 1;
            stats.migrated_vertices += step.moves.len() as u64;
            stats.migration_bytes += bytes;
        }
        let done = step.remaining == 0 || step.moves.is_empty();
        pl.current = Some(Arc::new(step.partitioning));
        if done {
            let finished = pl.pending.take().expect("pending checked above");
            pl.profile = finished.profile;
        }
    }
}

/// One tenant's handle onto the server: cheap to open, safe to use from
/// any thread (`run_sql` takes `&self`).
#[derive(Debug)]
pub struct TenantSession {
    server: Arc<QueryServer>,
    tenant: Arc<TenantState>,
}

impl TenantSession {
    /// This tenant's dense id.
    pub fn id(&self) -> usize {
        self.tenant.id
    }

    /// The server this session belongs to.
    pub fn server(&self) -> &Arc<QueryServer> {
        &self.server
    }

    /// Plan `sql` through the shared cache (planned at most once across
    /// all tenants; the lookup is attributed to this tenant).
    pub fn prepare(&self, sql: &str) -> Result<Arc<QueryPlan>> {
        self.server.cache.get_or_prepare(self.tenant.id, sql, self.server.tag.schemas())
    }

    /// Execute `sql` under the shared placement: admission first, then the
    /// cached plan, then the run, then fold this run's traffic into the
    /// tenant's decayed vote and give arbitration one step. The returned
    /// [`NetStats`] itemizes any migration bytes this execution's
    /// arbitration step shipped, plus checkpoint and recovery traffic when
    /// fault injection is armed.
    ///
    /// Failure isolation: a panicking execution is caught here and becomes
    /// a per-tenant error — the admission permit is released by its RAII
    /// drop on *every* exit path (return, `?`, unwind), so a dying query
    /// never leaks an in-flight slot, and no tenant or server state is
    /// mutated by a failed run except the [`FailureStats`] that record it.
    /// Transient injected faults (dropped deliveries) are retried up to
    /// [`ServerConfig::max_retries`] times with exponential backoff on the
    /// modelled clock; crashes recover from checkpoints inside the engine;
    /// a configured modelled-clock deadline turns slow recoveries into
    /// per-tenant timeouts.
    pub fn run_sql(&self, sql: &str) -> Result<(ExecOutput, NetStats)> {
        // RAII slot: dropped on success, error and unwind alike. Holding it
        // for the whole retry loop means a retrying query occupies one slot,
        // not one per attempt.
        let _permit = self.server.admission.acquire(self.tenant.id);
        let cfg = &self.server.config;
        let mut failures = FailureStats::default();
        // Modelled seconds this query has burned waiting out backoffs.
        let mut waited = 0.0f64;
        let outcome = (|| {
            let plan = self.prepare(sql)?;
            for attempt in 0..=cfg.max_retries {
                let mut exec = TagJoinExecutor::new(&self.server.tag, cfg.engine);
                if let Some(p) = self.server.partitioning() {
                    exec = exec.with_partitioning_shared(p);
                }
                if let Some(pool) = &self.server.pool {
                    exec = exec.with_worker_pool(Arc::clone(pool));
                }
                if let Some(inj) = &cfg.fault_injector {
                    exec = exec.with_fault_injector(Arc::clone(inj));
                }
                // The executor only reads shared server state through Arcs
                // (graph, placement, pool), so unwinding out of it cannot
                // tear anything a later execution observes; the catch just
                // converts the panic into this tenant's error.
                let caught = catch_unwind(AssertUnwindSafe(|| exec.execute_plan(&plan)));
                let err = match caught {
                    Ok(Ok(out)) => return Ok(out),
                    Ok(Err(e)) => e,
                    Err(payload) => {
                        // Panics are never retried: unlike a planned
                        // transient fault, a panic's cause is unknown and
                        // re-running it would just burn the budget.
                        failures.panics += 1;
                        return Err(RelError::Other(format!(
                            "tenant {}: execution panicked: {}",
                            self.tenant.id,
                            panic_message(&*payload)
                        )));
                    }
                };
                let transient = format!("{err}").contains("transient fault");
                if !transient || attempt == cfg.max_retries {
                    return Err(err);
                }
                // Exponential backoff on the modelled clock before the
                // re-execution, bounded by the deadline if one is set.
                waited += cfg.retry_backoff_secs * 2.0f64.powi(attempt as i32);
                if cfg.deadline_secs.is_some_and(|d| waited > d) {
                    failures.timeouts += 1;
                    return Err(RelError::Other(format!(
                        "tenant {}: deadline exceeded after {} retries ({waited:.3}s modelled backoff): {err}",
                        self.tenant.id, attempt + 1
                    )));
                }
                failures.retries += 1;
            }
            unreachable!("retry loop returns on its last attempt")
        })();
        let out = match outcome {
            Ok(out) => out,
            Err(e) => {
                // A failed execution leaves the tenant's profile, the
                // shared placement and the query counters untouched; only
                // the failure record lands.
                lock(&self.tenant.stats).failures.add(&failures);
                lock(&self.server.stats).failures.add(&failures);
                return Err(e);
            }
        };
        failures.recoveries += out.stats.faults.crashes_recovered;
        let mut net = NetStats {
            network_messages: out.stats.totals.network_messages,
            network_bytes: out.stats.totals.network_bytes,
            rounds: out.stats.supersteps,
            ..Default::default()
        };
        // Itemize fault-tolerance traffic the same way `vcsql-session`
        // does: checkpoints to stable storage (outside the totals),
        // recovery re-shipping over the wire (inside them).
        let ft = &out.stats.faults;
        net.record_checkpoint(ft.checkpoint_bytes);
        net.record_recovery(ft.recovered_vertices, ft.recovery_bytes, ft.recovered_rounds);
        // The deadline covers the whole query: modelled backoff waits plus
        // the successful attempt's modelled runtime.
        if let Some(deadline) = cfg.deadline_secs {
            let runtime =
                waited + vcsql_dist::modelled_runtime(0.0, &net, cfg.bandwidth_bytes_per_sec)?;
            if runtime > deadline {
                failures.timeouts += 1;
                lock(&self.tenant.stats).failures.add(&failures);
                lock(&self.server.stats).failures.add(&failures);
                return Err(RelError::Other(format!(
                    "tenant {}: deadline exceeded ({runtime:.3}s modelled > {deadline:.3}s)",
                    self.tenant.id
                )));
            }
        }
        {
            let mut profile = lock(&self.tenant.profile);
            if let Some(h) = self.server.config.profile_half_life {
                profile.decay(0.5f64.powf(1.0 / h));
            }
            profile.absorb(&TrafficProfile::from_run(&out.stats, self.server.tag.graph()));
        }
        self.server.arbitrate(self.tenant.id, &mut net);
        {
            let mut stats = lock(&self.tenant.stats);
            stats.queries += 1;
            stats.net.absorb(&net);
            stats.failures.add(&failures);
        }
        {
            let mut stats = lock(&self.server.stats);
            stats.queries += 1;
            stats.net.absorb(&net);
            stats.failures.add(&failures);
        }
        Ok((out, net))
    }

    /// This tenant's failure-isolation counters.
    pub fn failure_stats(&self) -> FailureStats {
        lock(&self.tenant.stats).failures
    }

    /// This tenant's lifetime counters.
    pub fn stats(&self) -> TenantStats {
        lock(&self.tenant.stats).clone()
    }

    /// This tenant's current (decayed) arbitration vote.
    pub fn profile(&self) -> TrafficProfile {
        lock(&self.tenant.profile).clone()
    }

    /// This tenant's view of the shared plan cache.
    pub fn cache_stats(&self) -> TenantCacheStats {
        self.server.cache.tenant_stats(self.tenant.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsql_bsp::FaultPlan;
    use vcsql_workload::tpch;

    const JOIN_SQL: &str = "SELECT c.c_name FROM customer c, orders o, lineitem l \
                            WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey";
    const Q17_SQL: &str = "SELECT p.p_name FROM part p, lineitem l WHERE p.p_partkey = l.l_partkey";

    fn setup(machines: usize) -> (Arc<TagGraph>, ServerConfig) {
        let db = tpch::generate(0.01, 42);
        let tag = Arc::new(TagGraph::build(&db));
        let config = ServerConfig {
            machines,
            engine: EngineConfig::sequential(),
            ..ServerConfig::default()
        };
        (tag, config)
    }

    #[test]
    fn start_validates_configuration() {
        let (tag, config) = setup(1);
        let bad = [
            ServerConfig { machines: 0, ..config.clone() },
            ServerConfig { cache_shards: 0, ..config.clone() },
            ServerConfig { plan_cache_capacity: 0, ..config.clone() },
            ServerConfig { migration_budget: 0, ..config.clone() },
            ServerConfig { drift_threshold: 0.0, ..config.clone() },
            ServerConfig { drift_threshold: f64::NAN, ..config.clone() },
            ServerConfig { balance_slack: -0.1, ..config.clone() },
            ServerConfig { profile_half_life: Some(0.0), ..config.clone() },
            ServerConfig { profile_half_life: Some(f64::INFINITY), ..config.clone() },
            ServerConfig { max_in_flight_per_tenant: 0, ..config.clone() },
            ServerConfig { max_in_flight_total: 0, ..config.clone() },
            ServerConfig { retry_backoff_secs: -1.0, ..config.clone() },
            ServerConfig { retry_backoff_secs: f64::NAN, ..config.clone() },
            ServerConfig { deadline_secs: Some(0.0), ..config.clone() },
            ServerConfig { deadline_secs: Some(f64::INFINITY), ..config.clone() },
            ServerConfig { bandwidth_bytes_per_sec: 0.0, ..config.clone() },
            ServerConfig { bandwidth_bytes_per_sec: f64::NAN, ..config.clone() },
        ];
        for c in bad {
            assert!(QueryServer::start(&tag, c).is_err());
        }
        assert!(QueryServer::start(&tag, config).is_ok());
    }

    #[test]
    fn tenants_share_plans_and_results_match_a_lone_executor() {
        let (tag, config) = setup(1);
        let server = QueryServer::start(&tag, config).unwrap();
        let alice = server.open_session();
        let bob = server.open_session();
        assert_eq!((alice.id(), bob.id()), (0, 1));
        assert_eq!(server.tenant_count(), 2);
        let lone =
            TagJoinExecutor::new(&tag, EngineConfig::sequential()).run_sql(JOIN_SQL).unwrap();
        let (out_a, net_a) = alice.run_sql(JOIN_SQL).unwrap();
        let (out_b, _) = bob.run_sql(JOIN_SQL).unwrap();
        assert!(out_a.relation.same_bag_approx(&lone.relation, 1e-9));
        assert!(out_b.relation.same_bag_approx(&lone.relation, 1e-9));
        assert_eq!(net_a.network_bytes, 0, "single machine never uses the network");
        // Alice planned, Bob hit the shared cache.
        assert_eq!(alice.cache_stats(), TenantCacheStats { hits: 0, misses: 1 });
        assert_eq!(bob.cache_stats(), TenantCacheStats { hits: 1, misses: 0 });
        assert_eq!(server.plan_cache().len(), 1);
        assert_eq!(server.stats().queries, 2);
        assert_eq!(alice.stats().queries, 1);
        assert_eq!(server.admission_stats().admitted, 2);
    }

    #[test]
    fn merged_arbitration_adapts_once_and_goes_quiet() {
        let (tag, config) = setup(6);
        let server = QueryServer::start(&tag, config).unwrap();
        let t0 = server.open_session();
        let t1 = server.open_session();
        let lone =
            TagJoinExecutor::new(&tag, EngineConfig::sequential()).run_sql(JOIN_SQL).unwrap();
        let mut saw_migration = false;
        for _ in 0..4 {
            for t in [&t0, &t1] {
                let (out, net) = t.run_sql(JOIN_SQL).unwrap();
                assert!(out.relation.same_bag_approx(&lone.relation, 1e-9));
                saw_migration |= net.migration_bytes > 0;
                assert!(net.migration_bytes <= net.network_bytes);
            }
        }
        // The empty consensus drifts maximally against real traffic, so the
        // shared placement must have self-tuned...
        assert!(saw_migration, "arbitrated migration never happened");
        let stats = server.stats();
        assert!(stats.adaptations >= 1);
        assert!(stats.migrated_vertices > 0);
        assert_eq!(stats.net.migration_bytes, stats.migration_bytes);
        // ...and with both tenants running the same mix the consensus is
        // stable: one more round must not migrate again.
        let migrated_before = server.stats().migrated_vertices;
        for t in [&t0, &t1] {
            let (_, net) = t.run_sql(JOIN_SQL).unwrap();
            assert_eq!(net.migration_bytes, 0, "steady consensus must not thrash");
        }
        assert_eq!(server.stats().migrated_vertices, migrated_before);
        // Both tenants' traffic is itemized: the sum of tenant nets equals
        // the server net.
        let total = t0.stats().net.network_bytes + t1.stats().net.network_bytes;
        assert_eq!(total, server.stats().net.network_bytes);
    }

    #[test]
    fn unilateral_tenants_thrash_where_merged_tenants_settle() {
        let (tag, config) = setup(4);
        let run_mixed = |arbitration: Arbitration| -> u64 {
            let server = QueryServer::start(
                &tag,
                ServerConfig { arbitration, migration_budget: 100_000, ..config.clone() },
            )
            .unwrap();
            let a = server.open_session();
            let b = server.open_session();
            // Two tenants with *conflicting* placement preferences: the
            // 3-way join pulls lineitem toward orders, q17 pulls it toward
            // part. Alternate them long enough for each policy to settle
            // (or not).
            for _ in 0..6 {
                a.run_sql(JOIN_SQL).unwrap();
                b.run_sql(Q17_SQL).unwrap();
            }
            server.stats().migration_bytes
        };
        let merged = run_mixed(Arbitration::Merged);
        let unilateral = run_mixed(Arbitration::Unilateral);
        let static_bytes = run_mixed(Arbitration::Static);
        assert_eq!(static_bytes, 0, "static placement never migrates");
        assert!(
            merged < unilateral,
            "arbitration must ship fewer migration bytes than the tenant fight \
             (merged {merged} vs unilateral {unilateral})"
        );
    }

    /// The tentpole's server guarantee: a panicking query releases its
    /// admission slot via the permit's RAII drop, becomes *that tenant's*
    /// error, and every other tenant keeps getting answers.
    #[test]
    fn panicking_tenant_leaks_no_slot_and_others_keep_answering() {
        let (tag, config) = setup(1);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().compute_panic(1), 0));
        let server = QueryServer::start(
            &tag,
            ServerConfig { fault_injector: Some(Arc::clone(&inj)), ..config },
        )
        .unwrap();
        let victim = server.open_session();
        let bystander = server.open_session();
        let err = victim.run_sql(JOIN_SQL).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("tenant 0") && msg.contains("execution panicked"), "{msg}");
        assert_eq!(server.admission.total_in_flight(), 0, "panicked query leaked its slot");
        assert_eq!(victim.failure_stats(), FailureStats { panics: 1, ..Default::default() });
        assert_eq!(victim.stats().queries, 0, "panicked run must not count as served");
        // The bystander — and even the victim, since the fault fired once —
        // still get served through the same admission queue.
        let lone =
            TagJoinExecutor::new(&tag, EngineConfig::sequential()).run_sql(JOIN_SQL).unwrap();
        let (out_b, _) = bystander.run_sql(JOIN_SQL).unwrap();
        let (out_v, _) = victim.run_sql(JOIN_SQL).unwrap();
        assert!(out_b.relation.same_bag_approx(&lone.relation, 1e-9));
        assert!(out_v.relation.same_bag_approx(&lone.relation, 1e-9));
        assert_eq!(bystander.failure_stats(), FailureStats::default());
        assert_eq!(server.stats().failures.panics, 1);
        assert_eq!(server.admission.total_in_flight(), 0);
    }

    /// Concurrent version of the slot-leak regression: tenants hammer the
    /// server while one of them panics mid-flight; bounds hold throughout
    /// and the queue fully drains.
    #[test]
    fn concurrent_panic_does_not_wedge_admission() {
        let (tag, config) = setup(1);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().compute_panic(2), 0));
        let server = QueryServer::start(
            &tag,
            ServerConfig {
                fault_injector: Some(inj),
                max_in_flight_per_tenant: 1,
                max_in_flight_total: 2,
                ..config
            },
        )
        .unwrap();
        let sessions: Vec<TenantSession> = (0..4).map(|_| server.open_session()).collect();
        let driver = WorkerPool::new(4);
        driver.run(4, &|w| {
            for _ in 0..3 {
                // Exactly one of the twelve executions dies; everyone else
                // must still be admitted and answered.
                let _ = sessions[w].run_sql(JOIN_SQL);
            }
        });
        assert_eq!(server.admission.total_in_flight(), 0, "a slot leaked");
        assert_eq!(server.admission_stats().admitted, 12);
        assert_eq!(server.stats().failures.panics, 1);
        assert_eq!(server.stats().queries, 11, "one panicked, eleven served");
    }

    /// Transient injected faults (dropped deliveries) are retried with
    /// modelled backoff and succeed without the client ever seeing them.
    #[test]
    fn transient_faults_retry_to_success() {
        let (tag, config) = setup(4);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().drop_link(0, 2, 1), 0));
        let server = QueryServer::start(
            &tag,
            ServerConfig { fault_injector: Some(Arc::clone(&inj)), ..config },
        )
        .unwrap();
        let tenant = server.open_session();
        let lone =
            TagJoinExecutor::new(&tag, EngineConfig::sequential()).run_sql(JOIN_SQL).unwrap();
        let (out, _) = tenant.run_sql(JOIN_SQL).unwrap();
        assert!(inj.any_fired(), "the planned delivery fault never fired");
        assert!(out.relation.same_bag_approx(&lone.relation, 1e-9));
        let failures = tenant.failure_stats();
        assert_eq!(failures.retries, 1, "one transient fault, one retry");
        assert_eq!(failures.panics, 0);
        assert_eq!(failures.timeouts, 0);
        assert_eq!(tenant.stats().queries, 1);
    }

    /// With retries exhausted (max_retries 0) a transient fault degrades to
    /// a per-tenant error instead of being retried forever.
    #[test]
    fn exhausted_retries_surface_the_transient_fault() {
        let (tag, config) = setup(4);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().drop_link(1, 3, 2), 0));
        let server = QueryServer::start(
            &tag,
            ServerConfig { fault_injector: Some(inj), max_retries: 0, ..config },
        )
        .unwrap();
        let tenant = server.open_session();
        let err = tenant.run_sql(JOIN_SQL).unwrap_err();
        assert!(format!("{err}").contains("transient fault"), "{err}");
        assert_eq!(tenant.stats().queries, 0);
        assert_eq!(server.admission.total_in_flight(), 0);
        // Fired once: the next run is clean.
        assert!(tenant.run_sql(JOIN_SQL).is_ok());
    }

    /// A modelled-clock deadline turns an over-budget query into a
    /// per-tenant timeout — and the failure is itemized as such.
    #[test]
    fn deadline_degrades_to_per_tenant_timeout() {
        let (tag, config) = setup(4);
        // Any multi-machine run ships real bytes, so a vanishing deadline
        // must time out even without faults.
        let server =
            QueryServer::start(&tag, ServerConfig { deadline_secs: Some(1e-12), ..config.clone() })
                .unwrap();
        let tenant = server.open_session();
        let err = tenant.run_sql(JOIN_SQL).unwrap_err();
        assert!(format!("{err}").contains("deadline exceeded"), "{err}");
        assert_eq!(tenant.failure_stats().timeouts, 1);
        assert_eq!(tenant.stats().queries, 0, "timed-out run must not count as served");
        assert_eq!(server.admission.total_in_flight(), 0);
        // A deadline with headroom leaves the same query untouched.
        let roomy =
            QueryServer::start(&tag, ServerConfig { deadline_secs: Some(1e6), ..config }).unwrap();
        let t = roomy.open_session();
        assert!(t.run_sql(JOIN_SQL).is_ok());
        assert_eq!(t.failure_stats(), FailureStats::default());
    }

    /// Machine crashes recover from checkpoints *inside* the execution: the
    /// client sees a normal answer, and the recovery is itemized in both
    /// the per-query net and the tenant's failure counters.
    #[test]
    fn crash_recovery_is_invisible_to_the_client_and_itemized() {
        let (tag, config) = setup(4);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().crash(1, 3), 2));
        let server = QueryServer::start(
            &tag,
            ServerConfig { fault_injector: Some(Arc::clone(&inj)), ..config },
        )
        .unwrap();
        let tenant = server.open_session();
        let lone =
            TagJoinExecutor::new(&tag, EngineConfig::sequential()).run_sql(JOIN_SQL).unwrap();
        let (out, net) = tenant.run_sql(JOIN_SQL).unwrap();
        assert!(inj.any_fired(), "the planned crash never fired");
        assert!(out.relation.same_bag_approx(&lone.relation, 1e-9));
        assert!(net.checkpoint_bytes > 0, "checkpointing run itemized no checkpoint bytes");
        assert!(net.recovery_bytes > 0, "recovered crash itemized no recovery bytes");
        assert!(net.recovery_bytes <= net.network_bytes);
        let failures = tenant.failure_stats();
        assert_eq!(failures.recoveries, 1);
        assert_eq!(failures.retries, 0, "in-engine recovery needs no server retry");
        assert_eq!(tenant.stats().queries, 1);
        assert_eq!(server.stats().failures.recoveries, 1);
        assert_eq!(server.stats().net.recovery_bytes, net.recovery_bytes);
    }

    #[test]
    fn admission_bounds_hold_under_concurrent_tenants() {
        let (tag, config) = setup(1);
        let server = QueryServer::start(
            &tag,
            ServerConfig { max_in_flight_per_tenant: 1, max_in_flight_total: 2, ..config },
        )
        .unwrap();
        let sessions: Vec<TenantSession> = (0..4).map(|_| server.open_session()).collect();
        let driver = WorkerPool::new(4);
        driver.run(4, &|w| {
            for _ in 0..3 {
                sessions[w].run_sql(JOIN_SQL).unwrap();
            }
        });
        let admission = server.admission_stats();
        assert_eq!(admission.admitted, 12);
        assert!(admission.peak_in_flight <= 2, "global admission bound breached");
        assert_eq!(server.stats().queries, 12);
        // Every tenant used the one shared plan: one miss total.
        assert_eq!(server.plan_cache().misses(), 1);
        assert_eq!(server.plan_cache().hits(), 11);
    }
}
