//! Synchronization-primitive shim for the server, mirroring
//! `vcsql-bsp`'s `sync` module.
//!
//! Everything in this crate that locks, waits, or spawns goes through these
//! re-exports instead of naming `std::sync` / `std::thread` directly. In a
//! normal build the re-exports *are* the std types. Under
//! `--cfg vcsql_loom` (the model-checking lane) they swap for the `loom`
//! compat crate's shadow types, so `tests/loom_cache.rs` can explore every
//! preemption-bounded interleaving of the sharded plan cache inside
//! `loom::model`. Outside a model the shadow types degrade to std, so the
//! regular suite runs unchanged in that configuration too.

#[cfg(not(vcsql_loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard, RwLock};

#[cfg(vcsql_loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard, RwLock};

/// Thread spawning: std by default, loom-controlled threads under
/// `--cfg vcsql_loom`. Only the admission dispatcher spawns (see
/// `xtask`'s no-thread-spawn lint allowlist).
pub mod thread {
    #[cfg(not(vcsql_loom))]
    pub use std::thread::{Builder, JoinHandle};

    #[cfg(vcsql_loom)]
    pub use loom::thread::{Builder, JoinHandle};
}
