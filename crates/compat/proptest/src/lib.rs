//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so this local crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies over integers, tuple strategies, [`collection::vec`],
//!   [`option::of`], [`any`] for `bool`,
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//!   [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Differences from upstream: generation is purely random (no shrinking —
//! a failing case panics with its case index; the streams are deterministic
//! per test name, so failures reproduce exactly), and the default case count
//! is smaller. That trades minimality of counterexamples for zero
//! dependencies, which is the right trade for an offline CI.

use std::fmt;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// New generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Stable hash of a test name, used to derive per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------------

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Unused; present so `.. ProptestConfig::default()` update syntax works
    /// with code written against upstream proptest.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// A failed `prop_assert!` (subset of `proptest::test_runner::TestCaseError`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating random values (simplified from upstream: no value
/// trees, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { s: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F, S2>
    where
        Self: Sized,
    {
        FlatMap { s: self, f, _marker: std::marker::PhantomData }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    s: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.s.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F, S2> {
    s: S,
    f: F,
    _marker: std::marker::PhantomData<fn() -> S2>,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F, S2> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.s.generate(rng)).generate(rng)
    }
}

// Strategies compose by reference too (the proptest! macro generates through
// a fresh expression each case, but helpers may hold references).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128) as u128 + 1;
                (s as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// A fixed value as a (degenerate) strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical strategy (subset of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy's type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Canonical strategy for `bool`: a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = core::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// ---------------------------------------------------------------------------
// collection / option
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max_incl: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_incl: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max_incl: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector of values from `elem`, sized within `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_incl - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies (subset of `proptest::option`).

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` roughly three times out of four, like upstream's default
    /// weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < 0.75 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert inside a `proptest!` body; failure aborts the case with a message
/// instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: `{:?}` == `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// The property-test macro: wraps `#[test]` functions whose arguments are
/// drawn from strategies, running each body over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut seeds = $crate::TestRng::new($crate::fnv1a(stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(seeds.next_u64());
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $( let $pat = $crate::Strategy::generate(&$strat, &mut rng); )*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! The `prop::` namespace used by `prop::collection::vec` et al.
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_compose() {
        let mut rng = crate::TestRng::new(1);
        let s = prop::collection::vec((0i64..8, prop::option::of(0i64..8)), 0..25)
            .prop_map(|v| v.len());
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 25);
        }
        let fm = (2usize..7).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..100 {
            let (n, k) = fm.generate(&mut rng);
            assert!(k < n && (2..7).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        #[test]
        fn macro_binds_patterns(x in 0i64..10, (a, b) in (0usize..5, any::<bool>())) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(a < 5);
            let _ = b;
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failure_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(x in 0i64..4) {
                prop_assert!(x < 0, "x was {}", x);
            }
        }
        always_fails();
    }
}
