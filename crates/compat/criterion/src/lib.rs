//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so this local crate
//! implements the subset of criterion the workspace's benches use:
//! `Criterion`, `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is simple wall-clock sampling (median of N samples) printed as
//! one line per benchmark — no statistics, plots, or regression tracking.
//! Good enough to spot order-of-magnitude regressions by eye; the `repro`
//! binary remains the paper-shaped reporting surface.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Things accepted as a benchmark identifier (`&str`, `String`, or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Run `f` repeatedly, recording one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let samples = self.sample_count;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}:");
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, sample_size }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(&id.into_benchmark_id(), sample_size, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &BenchmarkId, sample_size: usize, mut f: F) {
    let sample_count = sample_size.max(1);
    let mut b =
        Bencher { samples: Vec::with_capacity(sample_count), sample_count, iters_per_sample: 1 };
    f(&mut b);
    eprintln!("  {:<40} {:>12.3?} (median of {})", id.name, b.median(), sample_size);
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    #[allow(dead_code)]
    criterion: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this shim does no warm-up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sampling is count-based here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&id.into_benchmark_id(), self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).warm_up_time(Duration::from_millis(1));
            g.bench_function("plain", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &x| {
                b.iter(|| std::hint::black_box(x * 2))
            });
            g.finish();
        }
        c.bench_function("top", |b| b.iter(|| 1 + 1));
        assert!(ran >= 3);
    }
}
