//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this local
//! crate implements exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over integer ranges. The generator is SplitMix64: deterministic,
//! seed-stable across platforms, and of more than sufficient quality for
//! synthetic benchmark data. It intentionally does NOT match upstream
//! `rand`'s value streams — all workload generators in this workspace seed
//! explicitly, so determinism within the workspace is what matters.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 random bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Ranges a value can be uniformly sampled from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample from empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    /// Deterministic 64-bit generator (SplitMix64). Stands in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize =
            (0..100).filter(|_| a.gen_range(0i64..1000) == c.gen_range(0i64..1000)).count();
        assert!(same < 10, "different seeds produced near-identical streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-8i64..-4);
            assert!((-8..-4).contains(&v));
            let u = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 produced {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
