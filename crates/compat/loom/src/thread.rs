//! Shadow of [`std::thread`]: controlled model threads inside a
//! [`crate::model`] execution, plain `std` threads outside one.

use crate::{current_ctx, spawn_controlled, Ctx, Status};
use std::sync::Arc;

/// Result of joining a thread (shadow of [`std::thread::Result`]).
pub type Result<T> = std::thread::Result<T>;

/// Where a spawned thread's outcome is parked until `join`.
type ResultSlot<T> = Arc<std::sync::Mutex<Option<Result<T>>>>;

enum Handle<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        ctx: Ctx,
        /// The spawned thread's model id (what `join` blocks on).
        target: usize,
        slot: ResultSlot<T>,
    },
}

/// Owned permission to join a thread (shadow of [`std::thread::JoinHandle`]).
pub struct JoinHandle<T> {
    inner: Handle<T>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish()
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value (or its panic
    /// payload). In model mode the wait is a forced scheduling switch, so
    /// joining costs no preemption budget.
    pub fn join(self) -> Result<T> {
        match self.inner {
            Handle::Std(h) => h.join(),
            Handle::Model { ctx: spawn_ctx, target, slot } => {
                // The joiner is whoever calls `join` — not necessarily the
                // spawner (the pool spawns workers from one caller thread and
                // joins them from `Drop` on another). Using the spawner's id
                // here would make the scheduler wait for a thread that is not
                // actually at this yield point, wedging the whole execution.
                let ctx = current_ctx()
                    .expect("a model thread handle was joined from outside its model execution");
                assert!(
                    Arc::ptr_eq(&ctx.exec, &spawn_ctx.exec),
                    "a model thread handle leaked across model executions"
                );
                {
                    let st = ctx.exec.lock();
                    if st.abandoned {
                        drop(st);
                        std::panic::panic_any(crate::AbandonToken);
                    }
                    let mut st = ctx.exec.yield_point(st, ctx.tid);
                    if st.status[target] != Status::Finished {
                        st.status[ctx.tid] = Status::BlockedJoin(target);
                        st = ctx.exec.block(st, ctx.tid);
                    }
                    drop(st);
                }
                // The target stored its result before its finish hand-off.
                slot.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("finished model thread left a result")
            }
        }
    }
}

/// Configures a new thread before spawning (shadow of
/// [`std::thread::Builder`]).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// New builder with default settings.
    pub fn new() -> Builder {
        Builder { name: None }
    }

    /// Name the thread (used by the std fallback; model threads are named
    /// by their model id).
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawn a thread running `f`. Inside a model execution the new thread
    /// is a controlled model thread and the spawn is a yield point (the
    /// child may be scheduled before the parent continues).
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current_ctx() {
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(name) = self.name {
                    b = b.name(name);
                }
                b.spawn(f).map(|h| JoinHandle { inner: Handle::Std(h) })
            }
            Some(ctx) => {
                let slot: ResultSlot<T> = Arc::new(std::sync::Mutex::new(None));
                let slot2 = Arc::clone(&slot);
                let target = {
                    let mut st = ctx.exec.lock();
                    if st.abandoned {
                        drop(st);
                        std::panic::panic_any(crate::AbandonToken);
                    }
                    let target = ctx.exec.register(&mut st);
                    let os = spawn_controlled(Arc::clone(&ctx.exec), target, move || {
                        // The controlled wrapper catches panics *outside*
                        // this body; catching here too lets us hand the
                        // payload to `join` exactly like std.
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                        let is_abandon =
                            r.as_ref().err().is_some_and(|p| p.is::<crate::AbandonToken>());
                        *slot2.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
                        if is_abandon {
                            // Keep unwinding so the wrapper knows not to
                            // schedule a hand-off.
                            std::panic::panic_any(crate::AbandonToken);
                        }
                    });
                    st.os_handles[target] = Some(os);
                    // Spawning is a visible operation: give the scheduler
                    // the chance to run the child (or anyone) first.
                    let st = ctx.exec.yield_point(st, ctx.tid);
                    drop(st);
                    target
                };
                Ok(JoinHandle { inner: Handle::Model { ctx, target, slot } })
            }
        }
    }
}

/// Spawn a thread (shadow of [`std::thread::spawn`]).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("thread spawns")
}
