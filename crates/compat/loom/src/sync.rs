//! Shadow synchronization primitives: `std`-compatible API, scheduler-aware
//! inside a [`crate::model`] execution, plain `std` behaviour outside one.
//!
//! Mode is chosen when the primitive is *created*: a `Mutex`/`Condvar` built
//! inside a model execution participates in deterministic scheduling; one
//! built outside delegates to `std` (the fallback that lets the regular test
//! suite run under `--cfg vcsql_loom`). A model-mode primitive must only be
//! touched by that model's threads. Atomics decide per *operation* from the
//! calling thread's context — they are plain `std` atomics either way, the
//! model merely inserts a yield point before each access.
//!
//! Data of a model-mode `Mutex` still lives in a real `std::sync::Mutex`
//! (acquired with `try_lock` once the scheduler has granted model-level
//! ownership), so there is no `unsafe` anywhere in this crate: the scheduler
//! guarantees the `try_lock` cannot contend, and the type system guarantees
//! the rest.

use crate::{current_ctx, Ctx, ExecShared, Status};
use std::sync::Arc;

pub use std::sync::{LockResult, PoisonError};

/// Scheduler registration of a model-mode primitive.
struct ModelHandle {
    exec: Arc<ExecShared>,
    id: usize,
}

impl ModelHandle {
    /// The calling thread's context, which must belong to the same
    /// execution that created the primitive.
    fn ctx(&self) -> Ctx {
        let ctx = current_ctx()
            .expect("a loom-model primitive was used from a thread outside its model execution");
        assert!(
            Arc::ptr_eq(&ctx.exec, &self.exec),
            "a loom-model primitive leaked across model executions"
        );
        ctx
    }
}

/// Register a new mutex with the current execution, if any.
fn model_mutex_handle() -> Option<ModelHandle> {
    current_ctx().map(|ctx| {
        let id = {
            let mut st = ctx.exec.lock();
            st.mutex_owner.push(None);
            st.mutex_owner.len() - 1
        };
        ModelHandle { exec: ctx.exec, id }
    })
}

/// Register a new condvar with the current execution, if any.
fn model_condvar_handle() -> Option<ModelHandle> {
    current_ctx().map(|ctx| {
        let id = {
            let mut st = ctx.exec.lock();
            st.cv_waiters.push(std::collections::VecDeque::new());
            st.cv_waiters.len() - 1
        };
        ModelHandle { exec: ctx.exec, id }
    })
}

/// A mutual-exclusion primitive (shadow of [`std::sync::Mutex`]).
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    model: Option<ModelHandle>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

/// RAII guard for [`Mutex`] (shadow of [`std::sync::MutexGuard`]).
pub struct MutexGuard<'a, T> {
    /// `Some` for the guard's whole life; taken (and the real lock
    /// released) by `Condvar::wait` and by the drop path.
    std: Option<std::sync::MutexGuard<'a, T>>,
    /// The owning mutex, kept so `Condvar::wait` can reacquire.
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex; model-mode iff called from inside a model execution.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value), model: model_mutex_handle() }
    }

    /// Acquire the mutex. In model mode this is a yield point (the
    /// scheduler may run other threads first) and blocks in *model time*
    /// while another model thread holds the lock.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match &self.model {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { std: Some(g), lock: self }),
                Err(p) => {
                    Err(PoisonError::new(MutexGuard { std: Some(p.into_inner()), lock: self }))
                }
            },
            Some(h) => {
                let ctx = h.ctx();
                let st = h.exec.lock();
                if st.abandoned {
                    // Execution being torn down: degrade to real locking so
                    // unwinding drops cannot wedge on the dead scheduler.
                    drop(st);
                    let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    return Ok(MutexGuard { std: Some(g), lock: self });
                }
                let st = h.exec.yield_point(st, ctx.tid);
                let st = h.exec.acquire_mutex(st, ctx.tid, h.id);
                drop(st);
                Ok(MutexGuard { std: Some(self.relock_std()), lock: self })
            }
        }
    }

    /// Take the real lock after the scheduler granted model ownership. The
    /// `try_lock` cannot contend (a parked model thread holding the real
    /// lock would hold model ownership too); poison is recovered because
    /// model threads legitimately unwind through test assertions.
    fn relock_std(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                unreachable!("scheduler-granted mutex contended at std level")
            }
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then the model-level ownership
        // (releasing does not yield; the next yield point hands over).
        drop(self.std.take());
        if let Some(h) = &self.lock.model {
            let mut st = h.exec.lock();
            if !st.abandoned {
                h.exec.release_mutex(&mut st, h.id);
            }
        }
    }
}

/// A condition variable (shadow of [`std::sync::Condvar`]).
pub struct Condvar {
    inner: std::sync::Condvar,
    model: Option<ModelHandle>,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish()
    }
}

impl Condvar {
    /// Create a condvar; model-mode iff called from inside a model
    /// execution.
    pub fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new(), model: model_condvar_handle() }
    }

    /// Atomically release the guard's mutex and park until notified, then
    /// reacquire. Model mode parks in *model time*: a waiter that is never
    /// notified is a deadlock the checker reports.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        match (&self.model, &lock.model) {
            (None, None) => {
                let mut guard = guard;
                let std_guard = guard.std.take().expect("guard holds the lock");
                // The guard now owns nothing; skip its drop entirely so the
                // release stays atomic with the std wait.
                std::mem::forget(guard);
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard { std: Some(g), lock }),
                    Err(p) => Err(PoisonError::new(MutexGuard { std: Some(p.into_inner()), lock })),
                }
            }
            (Some(h), Some(mutex_handle)) => {
                assert!(
                    Arc::ptr_eq(&h.exec, &mutex_handle.exec),
                    "condvar and mutex belong to different model executions"
                );
                let ctx = h.ctx();
                let mid = mutex_handle.id;
                // Dismantle the guard without running its Drop: releasing
                // the mutex must be atomic with parking, in model time.
                let mut guard = guard;
                drop(guard.std.take());
                std::mem::forget(guard);
                {
                    let st = h.exec.lock();
                    if st.abandoned {
                        drop(st);
                        std::panic::panic_any(crate::AbandonToken);
                    }
                    // Yield point *before* the atomic release-and-park: a
                    // real thread can be descheduled (still holding the
                    // mutex) right before calling wait — the window where
                    // an unlocked flag store + notify is lost. Without this
                    // branch the checker could not reach that schedule.
                    let mut st = h.exec.yield_point(st, ctx.tid);
                    h.exec.release_mutex(&mut st, mid);
                    st.cv_waiters[h.id].push_back((ctx.tid, mid));
                    st.status[ctx.tid] = Status::BlockedCondvar(h.id);
                    // Park until notified (a forced switch, costing no
                    // preemption), then reacquire the mutex in model time.
                    let st = h.exec.block(st, ctx.tid);
                    let st = h.exec.acquire_mutex(st, ctx.tid, mid);
                    drop(st);
                }
                Ok(MutexGuard { std: Some(lock.relock_std()), lock })
            }
            _ => panic!("condvar and mutex disagree about being inside a model execution"),
        }
    }

    /// Wake one waiter (the longest-waiting, deterministically). A notify
    /// with no waiters is lost — exactly the std semantics whose misuse the
    /// checker exists to find.
    pub fn notify_one(&self) {
        match &self.model {
            None => self.inner.notify_one(),
            Some(h) => {
                let ctx = h.ctx();
                let st = h.exec.lock();
                if st.abandoned {
                    return;
                }
                let mut st = h.exec.yield_point(st, ctx.tid);
                if let Some((tid, mid)) = st.cv_waiters[h.id].pop_front() {
                    h.exec.wake_waiter(&mut st, tid, mid);
                }
            }
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        match &self.model {
            None => self.inner.notify_all(),
            Some(h) => {
                let ctx = h.ctx();
                let st = h.exec.lock();
                if st.abandoned {
                    return;
                }
                let mut st = h.exec.yield_point(st, ctx.tid);
                while let Some((tid, mid)) = st.cv_waiters[h.id].pop_front() {
                    h.exec.wake_waiter(&mut st, tid, mid);
                }
            }
        }
    }
}

/// Reader/writer bookkeeping of a model-mode [`RwLock`], protected by a
/// shadow [`Mutex`] so every transition is a scheduling point.
#[derive(Debug, Default)]
struct RwState {
    readers: usize,
    writer: bool,
}

/// A readers-writer lock (shadow of [`std::sync::RwLock`]).
///
/// Model mode composes the existing shadow primitives instead of extending
/// the scheduler: admission is a classic `Mutex<RwState>` + [`Condvar`]
/// readers-writer protocol (every acquire/release is a yield point, waits
/// park in model time, so preemption bounding and deadlock detection apply
/// unchanged), and the data still lives in a real [`std::sync::RwLock`]
/// acquired with `try_read`/`try_write` once the protocol has admitted the
/// thread — the same no-`unsafe` construction as the shadow [`Mutex`].
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    state: Mutex<RwState>,
    cond: Condvar,
    /// Chosen at creation, like every shadow primitive.
    model: bool,
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").field("inner", &self.inner).finish()
    }
}

/// RAII shared guard for [`RwLock`] (shadow of
/// [`std::sync::RwLockReadGuard`]).
pub struct RwLockReadGuard<'a, T> {
    std: Option<std::sync::RwLockReadGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

/// RAII exclusive guard for [`RwLock`] (shadow of
/// [`std::sync::RwLockWriteGuard`]).
pub struct RwLockWriteGuard<'a, T> {
    std: Option<std::sync::RwLockWriteGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a readers-writer lock; model-mode iff called from inside a
    /// model execution.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
            state: Mutex::new(RwState::default()),
            cond: Condvar::new(),
            model: current_ctx().is_some(),
        }
    }

    /// Acquire shared access. Model mode parks (in model time) while a
    /// writer holds the lock.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if !self.model {
            return match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard { std: Some(g), lock: self }),
                Err(p) => {
                    Err(PoisonError::new(RwLockReadGuard { std: Some(p.into_inner()), lock: self }))
                }
            };
        }
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while st.writer {
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.readers += 1;
        drop(st);
        Ok(RwLockReadGuard { std: Some(self.try_read_std()), lock: self })
    }

    /// Acquire exclusive access. Model mode parks (in model time) while any
    /// reader or writer holds the lock.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if !self.model {
            return match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard { std: Some(g), lock: self }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    std: Some(p.into_inner()),
                    lock: self,
                })),
            };
        }
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while st.writer || st.readers > 0 {
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.writer = true;
        drop(st);
        Ok(RwLockWriteGuard { std: Some(self.try_write_std()), lock: self })
    }

    /// Take the real read lock after the protocol admitted this reader: no
    /// writer can hold the std lock (the protocol excludes one), so this
    /// cannot contend. Poison is recovered like the shadow mutex does.
    fn try_read_std(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                unreachable!("protocol-admitted read contended at std level")
            }
        }
    }

    /// Take the real write lock after the protocol admitted this writer.
    fn try_write_std(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                unreachable!("protocol-admitted write contended at std level")
            }
        }
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.std.take());
        if self.lock.model {
            let mut st = self.lock.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.readers -= 1;
            let last = st.readers == 0;
            drop(st);
            if last {
                self.lock.cond.notify_all();
            }
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.std.take());
        if self.lock.model {
            let mut st = self.lock.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.writer = false;
            drop(st);
            self.lock.cond.notify_all();
        }
    }
}

/// Shadow of [`std::sync::atomic`]: real atomics with a model yield point
/// before every operation. Orderings are accepted for API compatibility and
/// ignored — the model is sequentially consistent (the runtime only uses
/// `SeqCst`).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    /// Insert a scheduling point if the calling thread is a model thread.
    fn maybe_yield() {
        if let Some(ctx) = crate::current_ctx() {
            let st = ctx.exec.lock();
            if st.abandoned {
                drop(st);
                std::panic::panic_any(crate::AbandonToken);
            }
            let st = ctx.exec.yield_point(st, ctx.tid);
            drop(st);
        }
    }

    /// Shadow of [`std::sync::atomic::AtomicUsize`].
    #[derive(Debug, Default)]
    pub struct AtomicUsize {
        v: std::sync::atomic::AtomicUsize,
    }

    impl AtomicUsize {
        /// Create an atomic with the given initial value.
        pub fn new(v: usize) -> AtomicUsize {
            AtomicUsize { v: std::sync::atomic::AtomicUsize::new(v) }
        }

        /// Atomic load (yield point in model mode).
        pub fn load(&self, order: Ordering) -> usize {
            maybe_yield();
            self.v.load(order)
        }

        /// Atomic store (yield point in model mode).
        pub fn store(&self, val: usize, order: Ordering) {
            maybe_yield();
            self.v.store(val, order)
        }

        /// Atomic add returning the previous value (yield point in model
        /// mode).
        pub fn fetch_add(&self, val: usize, order: Ordering) -> usize {
            maybe_yield();
            self.v.fetch_add(val, order)
        }

        /// Atomic subtract returning the previous value (yield point in
        /// model mode).
        pub fn fetch_sub(&self, val: usize, order: Ordering) -> usize {
            maybe_yield();
            self.v.fetch_sub(val, order)
        }
    }
}
