//! Offline stand-in for the `loom` crate: a deterministic-interleaving model
//! checker for the workspace's concurrency primitives.
//!
//! The build environment has no access to a crates registry, so — in the
//! established `compat/rand` / `compat/proptest` pattern — this local crate
//! implements exactly the surface the workspace needs: shadow
//! [`sync::Mutex`], [`sync::RwLock`], [`sync::Condvar`],
//! [`sync::atomic::AtomicUsize`], and [`thread::spawn`] types plus a
//! [`model`] entry point that runs a closure under **every** schedule a
//! preemption-bounded exhaustive DFS can reach.
//!
//! # How it works
//!
//! Inside [`model`], every "thread" is a real OS thread, but a cooperative
//! scheduler holds a baton: exactly one model thread executes at a time, and
//! it hands the baton back at every *yield point* (each shadow-primitive
//! operation — lock, wait, notify, atomic op, spawn, join). At a yield point
//! with more than one runnable thread the scheduler consults the current
//! schedule: a replayed prefix of recorded choices, then a default
//! (run-on, lowest thread id first). After the execution finishes, the
//! deepest choice point with an unexplored alternative is advanced and the
//! whole execution replays — a depth-first walk of the schedule tree.
//! Executions are deterministic by construction (model bodies must not read
//! real time or OS randomness), so replay is exact.
//!
//! Two bounds keep the walk finite:
//!
//! * **preemption bound** ([`Builder::preemptions`], default 2): switching
//!   away from a thread that could have continued costs one preemption;
//!   schedules beyond the budget are not explored. Forced switches (the
//!   running thread blocked or finished) are free. This is the CHESS
//!   insight: almost all interleaving bugs manifest within two preemptions,
//!   and the bounded tree is polynomial instead of exponential.
//! * **iteration budget** ([`Builder::max_iterations`], default 100 000,
//!   overridable via the `VCSQL_LOOM_MAX_ITERS` environment variable): the
//!   checker fails rather than spin if a model is bigger than its budget,
//!   so a CI lane stays time-bounded.
//!
//! Within those bounds the walk is exhaustive: [`Explored::complete`]
//! reports whether the tree was fully visited.
//!
//! # What it checks
//!
//! * **assertion failures** — a panic in any model thread under any explored
//!   schedule is re-raised from [`model`] with the schedule that caused it;
//! * **deadlocks** — a state where no thread is runnable but not all have
//!   finished (lost condvar wakeups, lock cycles) fails the model;
//! * **leaked threads** — threads still blocked when the main model thread
//!   finishes are reported as deadlocked, so a `Drop`-join protocol that
//!   forgets a worker cannot pass.
//!
//! # Limits (documented, deliberate)
//!
//! * Memory model is **sequential consistency**: `Ordering` arguments are
//!   accepted (API compatibility) and ignored. The workspace's runtime uses
//!   `SeqCst` exclusively, so nothing weaker is modelled.
//! * `Condvar::notify_one` wakes the longest-waiting thread
//!   deterministically (FIFO) instead of branching over every waiter.
//! * No spurious wakeups are generated; the runtime's wait loops tolerate
//!   them, but they add nothing to lost-wakeup detection.
//! * A shadow primitive created inside a model must only be used by that
//!   model's threads; primitives created outside a model degrade to plain
//!   `std` behaviour, which is what lets the whole regular test suite run
//!   unmodified under `--cfg vcsql_loom`.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

pub mod sync;
pub mod thread;

/// Upper bound on model threads per execution — a runaway spawn loop fails
/// fast instead of exhausting the OS.
const MAX_THREADS: usize = 16;

/// Upper bound on yield points in a single execution — a model that loops
/// without converging fails as [`ModelError::Runaway`] instead of hanging.
const MAX_STEPS_PER_EXECUTION: usize = 200_000;

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

/// Why a model thread is not currently runnable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Can be scheduled.
    Runnable,
    /// Waiting to acquire the mutex with this id.
    BlockedMutex(usize),
    /// Parked on the condvar with this id (until a notify).
    BlockedCondvar(usize),
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    /// Done (normally or by panic).
    Finished,
}

/// One scheduling decision: how many legal options existed and which was
/// taken. The DFS backtracks by advancing `chosen` at the deepest point
/// where `chosen + 1 < options`.
#[derive(Clone, Copy, Debug)]
struct ChoicePoint {
    options: u32,
    chosen: u32,
}

/// The severity-ordered outcome of one execution.
#[derive(Debug)]
enum ExecOutcome {
    Ok,
    Deadlock(String),
    Runaway,
}

/// Everything the scheduler tracks for one execution, behind one mutex.
struct ExecState {
    /// Thread allowed to run; `None` before start / after end.
    current: Option<usize>,
    status: Vec<Status>,
    /// Real join handles of the model's OS threads, reaped by the driver.
    os_handles: Vec<Option<std::thread::JoinHandle<()>>>,
    /// Mutex id -> owning thread (model-mode mutexes only).
    mutex_owner: Vec<Option<usize>>,
    /// Condvar id -> FIFO of `(thread, mutex the waiter must reacquire)`.
    cv_waiters: Vec<VecDeque<(usize, usize)>>,
    /// Replayed choice indices for this execution's schedule prefix.
    prefix: Vec<u32>,
    /// Next index into `prefix` to consume.
    pos: usize,
    /// Every choice made this execution (prefix replays included).
    recorded: Vec<ChoicePoint>,
    preemptions_used: u32,
    preemption_bound: u32,
    steps: usize,
    /// Set on deadlock/runaway: blocked threads wake up and unwind.
    abandoned: bool,
    outcome: ExecOutcome,
}

/// Shared between the driver, the model threads, and shadow primitives.
struct ExecShared {
    state: std::sync::Mutex<ExecState>,
    /// Single condvar for every state change: threads wait for their turn,
    /// the driver waits for the end. Broadcast on each transition.
    cv: std::sync::Condvar,
}

type StateGuard<'a> = std::sync::MutexGuard<'a, ExecState>;

/// Thrown through blocked model threads when an execution is abandoned
/// (deadlock / runaway): recognized by the thread wrapper and not treated
/// as a user panic.
struct AbandonToken;

impl ExecShared {
    fn new(prefix: Vec<u32>, preemption_bound: u32) -> ExecShared {
        ExecShared {
            state: std::sync::Mutex::new(ExecState {
                current: None,
                status: Vec::new(),
                os_handles: Vec::new(),
                mutex_owner: Vec::new(),
                cv_waiters: Vec::new(),
                prefix,
                pos: 0,
                recorded: Vec::new(),
                preemptions_used: 0,
                preemption_bound,
                steps: 0,
                abandoned: false,
                outcome: ExecOutcome::Ok,
            }),
            cv: std::sync::Condvar::new(),
        }
    }

    fn lock(&self) -> StateGuard<'_> {
        // A model thread can panic (tests assert inside models) while the
        // state lock is *not* held — the scheduler never holds it across
        // user code — but unwinding drops can still poison it; state stays
        // consistent.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Register a new model thread; returns its id.
    fn register(&self, st: &mut ExecState) -> usize {
        let tid = st.status.len();
        assert!(tid < MAX_THREADS, "model spawned more than {MAX_THREADS} threads");
        st.status.push(Status::Runnable);
        st.os_handles.push(None);
        tid
    }

    /// Pick and install the next thread to run. `me` just updated its own
    /// status. Returns with the choice applied to `st.current`.
    fn pick_next(&self, st: &mut ExecState, me: usize) {
        st.steps += 1;
        if st.steps > MAX_STEPS_PER_EXECUTION && !st.abandoned {
            st.outcome = ExecOutcome::Runaway;
            self.abandon(st);
            return;
        }
        let me_runnable = st.status[me] == Status::Runnable;
        let mut others: Vec<usize> =
            (0..st.status.len()).filter(|&t| t != me && st.status[t] == Status::Runnable).collect();
        // Legal options, deterministically ordered: continuing the current
        // thread is free and listed first; switching away from a runnable
        // thread costs a preemption and is only offered within budget.
        let options: Vec<usize> = if me_runnable {
            let mut v = vec![me];
            if st.preemptions_used < st.preemption_bound {
                v.append(&mut others);
            }
            v
        } else {
            others
        };
        if options.is_empty() {
            if st.status.iter().all(|s| *s == Status::Finished) {
                st.current = None; // normal end; driver notices
            } else if !st.abandoned {
                st.outcome = ExecOutcome::Deadlock(self.describe_stuck(st));
                self.abandon(st);
            }
            self.cv.notify_all();
            return;
        }
        let chosen_idx = if st.pos < st.prefix.len() {
            let i = st.prefix[st.pos] as usize;
            assert!(
                i < options.len(),
                "schedule replay diverged: model is not deterministic \
                 (choice {} of {} at step {})",
                i,
                options.len(),
                st.pos
            );
            i
        } else {
            0
        };
        st.pos += 1;
        st.recorded.push(ChoicePoint { options: options.len() as u32, chosen: chosen_idx as u32 });
        let next = options[chosen_idx];
        if me_runnable && next != me {
            st.preemptions_used += 1;
        }
        st.current = Some(next);
        self.cv.notify_all();
    }

    /// Human-readable list of the stuck threads for deadlock reports.
    fn describe_stuck(&self, st: &ExecState) -> String {
        let stuck: Vec<String> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != Status::Finished)
            .map(|(t, s)| match s {
                Status::BlockedMutex(m) => format!("thread {t} blocked on mutex {m}"),
                Status::BlockedCondvar(c) => format!("thread {t} waiting on condvar {c}"),
                Status::BlockedJoin(j) => format!("thread {t} joining thread {j}"),
                _ => format!("thread {t} in state {s:?}"),
            })
            .collect();
        stuck.join("; ")
    }

    /// Mark the execution abandoned and wake every parked thread so it can
    /// unwind out (via [`AbandonToken`]).
    fn abandon(&self, st: &mut ExecState) {
        st.abandoned = true;
        st.current = None;
        self.cv.notify_all();
    }

    /// Park until it is `me`'s turn. Panics with [`AbandonToken`] if the
    /// execution is abandoned while parked (or already was).
    fn wait_for_turn<'a>(&'a self, mut st: StateGuard<'a>, me: usize) -> StateGuard<'a> {
        while st.current != Some(me) {
            if st.abandoned {
                drop(st);
                std::panic::panic_any(AbandonToken);
            }
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st
    }

    /// A voluntary yield point: give the scheduler a chance to preempt
    /// before the caller's next visible operation.
    fn yield_point<'a>(&'a self, st: StateGuard<'a>, me: usize) -> StateGuard<'a> {
        let mut st = st;
        self.pick_next(&mut st, me);
        self.wait_for_turn(st, me)
    }

    /// Block (`status[me]` must already be a `Blocked*` state) and return
    /// once scheduled again.
    fn block<'a>(&'a self, st: StateGuard<'a>, me: usize) -> StateGuard<'a> {
        let mut st = st;
        self.pick_next(&mut st, me);
        self.wait_for_turn(st, me)
    }

    /// Release a model mutex: clear ownership and make its blocked waiters
    /// runnable. Does not yield — the next yield point hands the baton over.
    fn release_mutex(&self, st: &mut ExecState, mid: usize) {
        st.mutex_owner[mid] = None;
        for t in 0..st.status.len() {
            if st.status[t] == Status::BlockedMutex(mid) {
                st.status[t] = Status::Runnable;
            }
        }
    }

    /// Acquire a model mutex for `me`, blocking (in model time) while held.
    /// The caller must already hold the baton; no initial yield here —
    /// acquisition sites yield first themselves when they want a branch.
    fn acquire_mutex<'a>(
        &'a self,
        mut st: StateGuard<'a>,
        me: usize,
        mid: usize,
    ) -> StateGuard<'a> {
        loop {
            if st.mutex_owner[mid].is_none() {
                st.mutex_owner[mid] = Some(me);
                return st;
            }
            st.status[me] = Status::BlockedMutex(mid);
            st = self.block(st, me);
        }
    }

    /// Move a notified condvar waiter toward reacquiring its mutex.
    fn wake_waiter(&self, st: &mut ExecState, tid: usize, mid: usize) {
        st.status[tid] = if st.mutex_owner[mid].is_some() {
            Status::BlockedMutex(mid)
        } else {
            Status::Runnable
        };
    }
}

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

/// The controlled thread's handle to its execution, stored thread-locally.
#[derive(Clone)]
struct Ctx {
    exec: Arc<ExecShared>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The current thread's model context, if it is a controlled model thread.
fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Exploration statistics returned by a successful check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Number of distinct schedules executed.
    pub iterations: u64,
    /// True iff the preemption-bounded schedule tree was fully explored
    /// within the iteration budget.
    pub complete: bool,
}

/// Why a model failed.
pub enum ModelError {
    /// A schedule was found under which no thread can make progress. The
    /// string lists each stuck thread and what it is blocked on.
    Deadlock {
        /// Which stuck threads were found, and what each was blocked on.
        stuck: String,
        /// 0-based index of the schedule that deadlocked.
        iteration: u64,
    },
    /// One execution exceeded the per-execution step bound (a model thread
    /// loops without converging).
    Runaway {
        /// 0-based index of the runaway schedule.
        iteration: u64,
    },
    /// The iteration budget ran out before the tree was fully explored and
    /// the builder did not allow incomplete exploration.
    BudgetExhausted {
        /// Schedules executed before giving up.
        iterations: u64,
    },
}

impl fmt::Debug for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Deadlock { stuck, iteration } => {
                write!(f, "deadlock at schedule {iteration}: {stuck}")
            }
            ModelError::Runaway { iteration } => {
                write!(f, "runaway execution at schedule {iteration}")
            }
            ModelError::BudgetExhausted { iterations } => {
                write!(f, "iteration budget exhausted after {iterations} schedules")
            }
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::error::Error for ModelError {}

/// Configures and runs a model check. [`model`] is the common-case wrapper.
#[derive(Debug, Clone)]
pub struct Builder {
    preemption_bound: u32,
    max_iterations: u64,
    allow_incomplete: bool,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder::new()
    }
}

impl Builder {
    /// Defaults: preemption bound 2, iteration budget 100 000 (or the
    /// `VCSQL_LOOM_MAX_ITERS` environment variable when set — the CI lane's
    /// time-bound knob), incomplete exploration is an error.
    pub fn new() -> Builder {
        let max_iterations = std::env::var("VCSQL_LOOM_MAX_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000);
        Builder { preemption_bound: 2, max_iterations, allow_incomplete: false }
    }

    /// Maximum preemptive context switches per schedule (forced switches at
    /// blocking operations are free).
    pub fn preemptions(mut self, bound: u32) -> Builder {
        self.preemption_bound = bound;
        self
    }

    /// Maximum number of schedules to execute before giving up.
    pub fn max_iterations(mut self, budget: u64) -> Builder {
        self.max_iterations = budget;
        self
    }

    /// Treat an exhausted iteration budget as a (reported-incomplete)
    /// success instead of an error.
    pub fn allow_incomplete(mut self) -> Builder {
        self.allow_incomplete = true;
        self
    }

    /// Run `f` under every schedule within the bounds; panic on any failure
    /// (assertion, deadlock, runaway, exhausted budget).
    pub fn check<F: Fn() + Send + Sync + 'static>(self, f: F) -> Explored {
        match self.check_result(f) {
            Ok(explored) => explored,
            Err(e) => panic!("model check failed: {e}"),
        }
    }

    /// [`Builder::check`] returning failures as values — the entry point for
    /// tests that assert the checker *catches* a seeded bug.
    ///
    /// Assertion panics from inside the model are still re-raised (they
    /// carry the user's own panic message); scheduler-detected failures
    /// (deadlock, runaway, budget) come back as [`ModelError`].
    pub fn check_result<F: Fn() + Send + Sync + 'static>(
        self,
        f: F,
    ) -> Result<Explored, ModelError> {
        let f = Arc::new(f);
        let mut prefix: Vec<u32> = Vec::new();
        let mut iterations: u64 = 0;
        loop {
            if iterations >= self.max_iterations {
                if self.allow_incomplete {
                    return Ok(Explored { iterations, complete: false });
                }
                return Err(ModelError::BudgetExhausted { iterations });
            }
            let (outcome, recorded, panic0) = run_one(&f, prefix.clone(), self.preemption_bound);
            iterations += 1;
            if let Some(payload) = panic0 {
                // A user assertion failed under this schedule: surface it
                // verbatim (the most informative failure mode).
                resume_unwind(payload);
            }
            match outcome {
                ExecOutcome::Deadlock(stuck) => {
                    return Err(ModelError::Deadlock { stuck, iteration: iterations - 1 });
                }
                ExecOutcome::Runaway => {
                    return Err(ModelError::Runaway { iteration: iterations - 1 });
                }
                ExecOutcome::Ok => {}
            }
            // Depth-first backtrack: advance the deepest choice point with an
            // unexplored alternative; done when none remains.
            let Some(deepest) =
                (0..recorded.len()).rev().find(|&i| recorded[i].chosen + 1 < recorded[i].options)
            else {
                return Ok(Explored { iterations, complete: true });
            };
            prefix = recorded[..deepest].iter().map(|c| c.chosen).collect();
            prefix.push(recorded[deepest].chosen + 1);
        }
    }
}

/// Execute the model once under `prefix`, returning the outcome, the full
/// choice record, and the main model thread's panic payload (if any).
fn run_one<F: Fn() + Send + Sync + 'static>(
    f: &Arc<F>,
    prefix: Vec<u32>,
    preemption_bound: u32,
) -> (ExecOutcome, Vec<ChoicePoint>, Option<Box<dyn Any + Send>>) {
    let exec = Arc::new(ExecShared::new(prefix, preemption_bound));
    let panic0: Arc<std::sync::Mutex<Option<Box<dyn Any + Send>>>> =
        Arc::new(std::sync::Mutex::new(None));
    {
        let mut st = exec.lock();
        let tid = exec.register(&mut st);
        debug_assert_eq!(tid, 0, "main model thread is always 0");
        let body = Arc::clone(f);
        let slot = Arc::clone(&panic0);
        let handle = spawn_controlled(Arc::clone(&exec), tid, move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body())) {
                if !payload.is::<AbandonToken>() {
                    *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(payload);
                }
            }
        });
        st.os_handles[0] = Some(handle);
        st.current = Some(0);
        exec.cv.notify_all();
    }
    // Wait for every model thread to finish (abandoned executions unwind
    // their threads too), then reap the OS threads.
    let handles: Vec<std::thread::JoinHandle<()>> = {
        let mut st = exec.lock();
        loop {
            if st.status.iter().all(|s| *s == Status::Finished) {
                break;
            }
            st = exec.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.os_handles.iter_mut().filter_map(Option::take).collect()
    };
    for h in handles {
        let _ = h.join();
    }
    let mut st = exec.lock();
    let outcome = std::mem::replace(&mut st.outcome, ExecOutcome::Ok);
    let recorded = std::mem::take(&mut st.recorded);
    drop(st);
    let payload = panic0.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    (outcome, recorded, payload)
}

/// Spawn the OS thread backing model thread `tid`: park until scheduled,
/// run the body, then mark finished and hand the baton on.
fn spawn_controlled(
    exec: Arc<ExecShared>,
    tid: usize,
    body: impl FnOnce() + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("loom-model-{tid}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec: Arc::clone(&exec), tid }));
            {
                let st = exec.lock();
                // First scheduling of this thread; abandon unwinds via the
                // catch below.
                let _st = match catch_unwind(AssertUnwindSafe(|| exec.wait_for_turn(st, tid))) {
                    Ok(st) => st,
                    Err(_) => {
                        finish_thread(&exec, tid);
                        return;
                    }
                };
            }
            // Panics (user assertions, AbandonToken) unwind through `body`'s
            // drops — which keep scheduling normally — before landing here.
            let _ = catch_unwind(AssertUnwindSafe(body));
            finish_thread(&exec, tid);
        })
        .expect("model thread spawns")
}

/// Mark `tid` finished, wake joiners, and pick the next thread.
fn finish_thread(exec: &ExecShared, tid: usize) {
    let mut st = exec.lock();
    st.status[tid] = Status::Finished;
    for t in 0..st.status.len() {
        if st.status[t] == Status::BlockedJoin(tid) {
            st.status[t] = Status::Runnable;
        }
    }
    if !st.abandoned {
        exec.pick_next(&mut st, tid);
    } else {
        exec.cv.notify_all();
    }
}

/// Check `f` under every schedule reachable within the default bounds
/// (preemption bound 2); panics on assertion failures, deadlocks, runaway
/// executions, or an exhausted iteration budget. Returns exploration
/// statistics.
///
/// ```
/// use loom::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// loom::model(|| {
///     let n = Arc::new(AtomicUsize::new(0));
///     let n2 = Arc::clone(&n);
///     let t = loom::thread::spawn(move || {
///         n2.fetch_add(1, Ordering::SeqCst);
///     });
///     n.fetch_add(1, Ordering::SeqCst);
///     t.join().unwrap();
///     assert_eq!(n.load(Ordering::SeqCst), 2);
/// });
/// ```
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) -> Explored {
    Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::*;

    #[test]
    fn atomic_increments_are_atomic() {
        let explored = model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = crate::thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
        assert!(explored.complete, "tiny model must be exhaustively explored");
        assert!(explored.iterations >= 2, "spawn must branch: child first or parent first");
    }

    #[test]
    fn load_store_race_is_found() {
        // The classic lost update: read-modify-write without atomicity.
        // Some schedule interleaves the two loads before either store, so
        // the final count is 1 — the model checker must find it.
        let r = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let t = crate::thread::spawn(move || {
                    let v = n2.load(Ordering::SeqCst);
                    n2.store(v + 1, Ordering::SeqCst);
                });
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        }));
        assert!(r.is_err(), "the checker must find the lost-update schedule");
    }

    #[test]
    fn rwlock_outside_model_behaves_like_std() {
        let l = sync::RwLock::new(5usize);
        {
            let a = l.read().unwrap();
            let b = l.read().unwrap();
            assert_eq!((*a, *b), (5, 5), "shared readers coexist");
        }
        *l.write().unwrap() = 7;
        assert_eq!(*l.read().unwrap(), 7);
    }

    #[test]
    fn rwlock_writers_exclude_and_readers_share() {
        let explored = model(|| {
            let l = Arc::new(sync::RwLock::new((0usize, 0usize)));
            let l2 = Arc::clone(&l);
            let t = crate::thread::spawn(move || {
                let mut g = l2.write().unwrap();
                // A writer updates both halves non-atomically; exclusion
                // must keep the tear invisible.
                g.0 += 1;
                g.1 += 1;
            });
            {
                let g = l.read().unwrap();
                assert_eq!(g.0, g.1, "reader saw a torn write");
            }
            t.join().unwrap();
            let g = l.read().unwrap();
            assert_eq!(*g, (1, 1));
        });
        assert!(explored.complete, "rwlock model must be exhaustively explored");
        assert!(explored.iterations >= 2, "reader must be scheduled both before and after");
    }

    #[test]
    fn rwlock_read_then_write_upgrade_race_is_found() {
        // Two threads read a counter under the read lock, release, then
        // write back +1 under the write lock: a non-atomic upgrade. Some
        // schedule interleaves the reads so an update is lost — the checker
        // must reach it through the rwlock protocol.
        let r = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let l = Arc::new(sync::RwLock::new(0usize));
                let l2 = Arc::clone(&l);
                let bump = |l: &sync::RwLock<usize>| {
                    let v = *l.read().unwrap();
                    *l.write().unwrap() = v + 1;
                };
                let t = crate::thread::spawn(move || bump(&l2));
                bump(&l);
                t.join().unwrap();
                assert_eq!(*l.read().unwrap(), 2, "lost update");
            });
        }));
        assert!(r.is_err(), "the checker must find the lost-update schedule");
    }

    #[test]
    fn mutex_protects_read_modify_write() {
        let explored = model(|| {
            let n = Arc::new(Mutex::new(0usize));
            let n2 = Arc::clone(&n);
            let t = crate::thread::spawn(move || {
                let mut g = n2.lock().unwrap();
                *g += 1;
            });
            {
                let mut g = n.lock().unwrap();
                *g += 1;
            }
            t.join().unwrap();
            assert_eq!(*n.lock().unwrap(), 2);
        });
        assert!(explored.complete);
    }

    #[test]
    fn exploration_is_deterministic() {
        let run = || {
            model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let t = crate::thread::spawn(move || {
                    n2.fetch_add(2, Ordering::SeqCst);
                });
                n.fetch_add(3, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(n.load(Ordering::SeqCst), 5);
            })
        };
        assert_eq!(run(), run(), "same model, same bounds => same exploration");
    }

    /// The ISSUE's seeded-known-bad-schedule regression test for the checker
    /// itself: a condvar handoff whose "epoch bump" (the flag store) happens
    /// outside the mutex. In most schedules the waiter never misses the
    /// update, but one preemption — flag checked, *then* store + notify,
    /// *then* wait — loses the wakeup forever. The checker must report the
    /// deadlock rather than pass.
    #[test]
    fn lost_wakeup_from_unlocked_flag_is_detected() {
        let err = Builder::new()
            .check_result(|| {
                let pair = Arc::new((Mutex::new(()), Condvar::new(), AtomicUsize::new(0)));
                let pair2 = Arc::clone(&pair);
                let t = crate::thread::spawn(move || {
                    let (_m, cv, epoch) = &*pair2;
                    // BUG: the epoch bump does not take the mutex, so it can
                    // slot between the waiter's check and its wait.
                    epoch.store(1, Ordering::SeqCst);
                    cv.notify_one();
                });
                {
                    let (m, cv, epoch) = &*pair;
                    let mut g = m.lock().unwrap();
                    while epoch.load(Ordering::SeqCst) == 0 {
                        g = cv.wait(g).unwrap();
                    }
                }
                t.join().unwrap();
            })
            .expect_err("the missed-epoch-bump schedule must be found");
        match err {
            ModelError::Deadlock { stuck, .. } => {
                assert!(stuck.contains("condvar"), "waiter should be stuck on the condvar: {stuck}")
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    /// The fixed protocol — bump under the mutex — passes exhaustively.
    #[test]
    fn locked_epoch_bump_has_no_lost_wakeup() {
        let explored = model(|| {
            let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = crate::thread::spawn(move || {
                let (m, cv) = &*pair2;
                *m.lock().unwrap() = 1;
                cv.notify_one();
            });
            {
                let (m, cv) = &*pair;
                let mut g = m.lock().unwrap();
                while *g == 0 {
                    g = cv.wait(g).unwrap();
                }
            }
            t.join().unwrap();
        });
        assert!(explored.complete);
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let explored = Builder::new().preemptions(1).check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let p = Arc::clone(&pair);
                    crate::thread::spawn(move || {
                        let (m, cv) = &*p;
                        let mut g = m.lock().unwrap();
                        while !*g {
                            g = cv.wait(g).unwrap();
                        }
                    })
                })
                .collect();
            {
                let (m, cv) = &*pair;
                *m.lock().unwrap() = true;
                cv.notify_all();
            }
            for w in waiters {
                w.join().unwrap();
            }
        });
        assert!(explored.complete);
    }

    #[test]
    fn join_returns_the_thread_value() {
        model(|| {
            let t = crate::thread::spawn(|| 41usize);
            assert_eq!(t.join().unwrap() + 1, 42);
        });
    }

    #[test]
    fn budget_exhaustion_is_an_error_by_default() {
        let err = Builder::new()
            .max_iterations(1)
            .check_result(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let t = crate::thread::spawn(move || {
                    n2.fetch_add(1, Ordering::SeqCst);
                });
                n.fetch_add(1, Ordering::SeqCst);
                t.join().unwrap();
            })
            .expect_err("2+ schedules cannot fit a budget of 1");
        assert!(matches!(err, ModelError::BudgetExhausted { iterations: 1 }));
        // ... but is reported as incomplete success when allowed.
        let explored = Builder::new()
            .max_iterations(1)
            .allow_incomplete()
            .check_result(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let t = crate::thread::spawn(move || {
                    n2.fetch_add(1, Ordering::SeqCst);
                });
                n.fetch_add(1, Ordering::SeqCst);
                t.join().unwrap();
            })
            .expect("allow_incomplete turns the budget into a soft stop");
        assert_eq!(explored, Explored { iterations: 1, complete: false });
    }

    #[test]
    fn shadow_primitives_fall_back_to_std_outside_models() {
        // No model context: everything behaves as plain std. This is the
        // mode the regular test suite exercises under --cfg vcsql_loom.
        let n = AtomicUsize::new(1);
        assert_eq!(n.fetch_add(1, Ordering::SeqCst), 1);
        assert_eq!(n.load(Ordering::SeqCst), 2);
        let m = Mutex::new(7usize);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 8);
        let t = crate::thread::spawn(|| 5usize);
        assert_eq!(t.join().unwrap(), 5);
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = crate::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn user_panics_surface_with_their_own_message() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            model(|| panic!("custom model assertion text"));
        }));
        let payload = r.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("custom model assertion text"), "got: {msg}");
    }
}
