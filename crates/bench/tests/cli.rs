//! Integration tests for the `repro` binary's command line: argument errors
//! must print a usage message and exit with status 2 (never panic), and the
//! happy path must keep producing the experiment tables. The binary is
//! spawned for real via the path Cargo exports to integration tests.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro binary spawns")
}

fn assert_usage_exit(args: &[&str], expect_in_stderr: &str) {
    let out = repro(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?}: expected exit 2, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: repro"), "{args:?}: no usage text in\n{stderr}");
    assert!(stderr.contains(expect_in_stderr), "{args:?}: missing `{expect_in_stderr}`\n{stderr}");
    // The panic path this replaces would have tripped Rust's handler.
    assert!(!stderr.contains("panicked"), "{args:?}: CLI panicked\n{stderr}");
}

#[test]
fn bad_sf_value_is_a_usage_error() {
    assert_usage_exit(&["tpch", "--sf", "abc"], "bad --sf value `abc`");
    assert_usage_exit(&["tpch", "--sf", "0.01,nope"], "bad --sf value `nope`");
    assert_usage_exit(&["tpch", "--sf", "-0.5"], "bad --sf value `-0.5`");
    assert_usage_exit(&["tpch", "--sf", "0"], "bad --sf value `0`");
}

#[test]
fn missing_flag_values_are_usage_errors() {
    assert_usage_exit(&["tpch", "--sf"], "--sf needs a value");
    assert_usage_exit(&["distributed", "--partitioning"], "--partitioning needs a value");
    assert_usage_exit(&["distributed", "--profile-from"], "--profile-from needs a value");
    assert_usage_exit(&["distributed", "--bandwidth"], "--bandwidth needs a value");
}

#[test]
fn bad_partitioning_and_unknown_args_are_usage_errors() {
    assert_usage_exit(&["distributed", "--partitioning", "metis"], "bad --partitioning value");
    assert_usage_exit(&["--frobnicate"], "unknown flag");
    assert_usage_exit(&["no-such-mode"], "unknown mode");
    assert_usage_exit(&["tpch", "tpcds"], "unexpected extra argument");
}

#[test]
fn bad_profile_from_and_bandwidth_are_usage_errors() {
    assert_usage_exit(&["distributed", "--profile-from", "mongodb"], "bad --profile-from value");
    // A profile source without a `workload` strategy to consume it would be
    // silently ignored — reject it instead.
    assert_usage_exit(
        &["distributed", "--profile-from", "tpch"],
        "--profile-from requires --partitioning to include `workload`",
    );
    // Likewise the distributed-only flags on a mode that never reads them.
    assert_usage_exit(
        &["tpch", "--bandwidth", "5e8"],
        "--bandwidth only applies to the `distributed`, `serve` (or `all`) modes",
    );
    assert_usage_exit(
        &["loading", "--partitioning", "hash"],
        "--partitioning only applies to the `distributed` (or `all`) mode",
    );
    // Non-positive or unparsable bandwidth must be a usage error, never the
    // panic `modelled_runtime` used to raise deep in the run.
    assert_usage_exit(&["distributed", "--bandwidth", "0"], "bad --bandwidth value");
    assert_usage_exit(&["distributed", "--bandwidth", "-3"], "bad --bandwidth value");
    assert_usage_exit(&["distributed", "--bandwidth", "fast"], "bad --bandwidth value");
    assert_usage_exit(&["distributed", "--bandwidth", "inf"], "bad --bandwidth value");
}

#[test]
fn bad_sessions_and_migration_budget_are_usage_errors() {
    // Zero/negative/non-numeric counts must exit 2, never panic.
    assert_usage_exit(&["distributed", "--sessions", "0"], "bad --sessions value `0`");
    assert_usage_exit(&["distributed", "--sessions", "-3"], "bad --sessions value `-3`");
    assert_usage_exit(&["distributed", "--sessions", "many"], "bad --sessions value `many`");
    assert_usage_exit(&["distributed", "--sessions"], "--sessions needs a value");
    assert_usage_exit(
        &["distributed", "--sessions", "4", "--migration-budget", "0"],
        "bad --migration-budget value `0`",
    );
    assert_usage_exit(
        &["distributed", "--sessions", "4", "--migration-budget", "-5"],
        "bad --migration-budget value `-5`",
    );
    assert_usage_exit(
        &["distributed", "--sessions", "4", "--migration-budget", "x"],
        "bad --migration-budget value `x`",
    );
    // The replay is a `distributed`-only experiment with a fixed drift.
    assert_usage_exit(
        &["tpch", "--sessions", "4"],
        "--sessions only applies to the `distributed` mode",
    );
    assert_usage_exit(
        &["distributed", "--migration-budget", "10"],
        "--migration-budget requires --sessions",
    );
    assert_usage_exit(
        &["distributed", "--sessions", "4", "--partitioning", "workload", "--profile-from", "tpch"],
        "drop --profile-from",
    );
    assert_usage_exit(
        &["distributed", "--sessions", "4", "--partitioning", "hash"],
        "--sessions replay uses the `workload` strategy",
    );
}

#[test]
fn bad_threads_and_json_are_usage_errors() {
    // Thread counts must be positive integers, and both flags are rejected
    // on modes that would silently ignore them.
    assert_usage_exit(&["bench", "--threads", "0"], "bad --threads value `0`");
    assert_usage_exit(&["bench", "--threads", "-2"], "bad --threads value `-2`");
    assert_usage_exit(&["bench", "--threads", "lots"], "bad --threads value `lots`");
    assert_usage_exit(&["bench", "--threads"], "--threads needs a value");
    assert_usage_exit(&["bench", "--json"], "--json needs a path");
    assert_usage_exit(
        &["distributed", "--threads", "4"],
        "--threads only applies to the per-query runtime modes",
    );
    assert_usage_exit(
        &["tpch", "--json", "out.json"],
        "--json only applies to the `bench`, `serve` and `faults` modes",
    );
}

#[test]
fn bad_fault_flags_are_usage_errors() {
    // `--kill` wants machine@superstep: a lone number, non-numeric halves
    // and a dangling `@` must all exit 2, never panic.
    assert_usage_exit(&["faults", "--kill", "2"], "bad --kill value `2`");
    assert_usage_exit(&["faults", "--kill", "x@y"], "bad --kill value `x@y`");
    assert_usage_exit(&["faults", "--kill", "2@"], "bad --kill value `2@`");
    assert_usage_exit(&["faults", "--kill", "@3"], "bad --kill value `@3`");
    assert_usage_exit(&["faults", "--kill", "-1@3"], "bad --kill value `-1@3`");
    assert_usage_exit(&["faults", "--kill"], "--kill needs a value");
    // Interval 0 (checkpointing off) is an arm the sweep always includes;
    // asking for it explicitly is a contradiction, so reject it.
    assert_usage_exit(&["faults", "--checkpoint-every", "0"], "bad --checkpoint-every value `0`");
    assert_usage_exit(&["faults", "--checkpoint-every", "-2"], "bad --checkpoint-every value `-2`");
    assert_usage_exit(
        &["faults", "--checkpoint-every", "often"],
        "bad --checkpoint-every value `often`",
    );
    assert_usage_exit(&["faults", "--checkpoint-every"], "--checkpoint-every needs a value");
    assert_usage_exit(&["faults", "--seed", "abc"], "bad --seed value `abc`");
    assert_usage_exit(&["faults", "--seed", "-7"], "bad --seed value `-7`");
    assert_usage_exit(&["faults", "--seed"], "--seed needs a value");
    // The fault flags steer only the `faults` sweep — reject them anywhere
    // they would be silently ignored.
    assert_usage_exit(&["tpch", "--kill", "2@3"], "--kill only applies to the `faults` mode");
    assert_usage_exit(
        &["bench", "--checkpoint-every", "2"],
        "--checkpoint-every only applies to the `faults` mode",
    );
    assert_usage_exit(&["serve", "--seed", "7"], "--seed only applies to the `faults` mode");
}

#[test]
fn bad_serve_flags_are_usage_errors() {
    // The serving bench's flags: positive counts and rates only, and both
    // are rejected on modes that would silently ignore them.
    assert_usage_exit(&["serve", "--tenants", "0"], "bad --tenants value `0`");
    assert_usage_exit(&["serve", "--tenants", "-2"], "bad --tenants value `-2`");
    assert_usage_exit(&["serve", "--tenants", "crowd"], "bad --tenants value `crowd`");
    assert_usage_exit(&["serve", "--tenants"], "--tenants needs a value");
    assert_usage_exit(&["serve", "--qps", "0"], "bad --qps value `0`");
    assert_usage_exit(&["serve", "--qps", "-1.5"], "bad --qps value `-1.5`");
    assert_usage_exit(&["serve", "--qps", "inf"], "bad --qps value `inf`");
    assert_usage_exit(&["serve", "--qps", "fast"], "bad --qps value `fast`");
    assert_usage_exit(&["serve", "--qps"], "--qps needs a value");
    assert_usage_exit(&["tpch", "--tenants", "4"], "--tenants only applies to the `serve` mode");
    assert_usage_exit(&["bench", "--qps", "8"], "--qps only applies to the `serve` mode");
}

#[test]
fn bad_restart_at_is_a_usage_error() {
    assert_usage_exit(&["distributed", "--sessions", "6", "--restart-at", "0"], "bad --restart-at");
    assert_usage_exit(&["distributed", "--sessions", "6", "--restart-at", "x"], "bad --restart-at");
    assert_usage_exit(&["distributed", "--restart-at", "3"], "--restart-at requires --sessions");
    // Restarting at or past the end leaves nothing to replay — reject it.
    assert_usage_exit(
        &["distributed", "--sessions", "6", "--restart-at", "6"],
        "--restart-at must be less than --sessions",
    );
    assert_usage_exit(
        &["distributed", "--sessions", "6", "--restart-at", "9"],
        "--restart-at must be less than --sessions",
    );
}

#[test]
fn bad_compare_and_tolerance_are_usage_errors() {
    assert_usage_exit(&["bench", "--compare"], "--compare needs a path");
    assert_usage_exit(&["bench", "--tolerance"], "--tolerance needs a value");
    assert_usage_exit(&["bench", "--compare", "b.json", "--tolerance", "2"], "bad --tolerance");
    assert_usage_exit(&["bench", "--compare", "b.json", "--tolerance", "-0.1"], "bad --tolerance");
    assert_usage_exit(&["bench", "--compare", "b.json", "--tolerance", "soft"], "bad --tolerance");
    assert_usage_exit(
        &["tpch", "--compare", "b.json"],
        "--compare only applies to the `bench` mode",
    );
    assert_usage_exit(&["bench", "--tolerance", "0.1"], "--tolerance requires --compare");
}

/// Write a minimal trajectory baseline with the given totals speedups.
fn baseline_file(dir: &std::path::Path, tpch: f64, tpcds: f64) -> std::path::PathBuf {
    let path = dir.join(format!("baseline-{tpch}-{tpcds}.json"));
    let json = format!(
        "{{\n  \"schema\": \"vcsql-bench-trajectory/v1\",\n  \"totals\": {{\n    \
         \"tpch\": {{\"tag_1t_ms\": 1.0, \"tag_mt_ms\": 1.0, \"parallel_speedup\": {tpch}}},\n    \
         \"tpcds\": {{\"tag_1t_ms\": 1.0, \"tag_mt_ms\": 1.0, \"parallel_speedup\": {tpcds}}}\n  }}\n}}\n"
    );
    std::fs::write(&path, json).unwrap();
    path
}

#[test]
fn bench_compare_gates_on_totals_speedup() {
    let dir = std::env::temp_dir().join(format!("repro-compare-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Against a tiny baseline the fresh run can only look better: exit 0.
    let low = baseline_file(&dir, 0.05, 0.05);
    let out =
        repro(&["bench", "--sf", "0.004", "--threads", "2", "--compare", low.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "compare against a low baseline must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Trajectory gate"), "{stdout}");
    assert!(stdout.contains("ok"), "{stdout}");
    // An absurdly high baseline must trip the gate: exit 1 with a clear
    // message (not a usage error, not a panic).
    let high = baseline_file(&dir, 1000.0, 1000.0);
    let out =
        repro(&["bench", "--sf", "0.004", "--threads", "2", "--compare", high.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("regressed beyond tolerance"), "{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));
    // A missing baseline file is a runtime error, exit 1.
    let out = repro(&["bench", "--sf", "0.004", "--compare", "/no/such/baseline.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_smoke_emits_trajectory_json() {
    // End-to-end: the bench mode must run both workloads, print the
    // trajectory tables, and write well-formed JSON with the pinned schema
    // tag. Tiny SF keeps this fast in debug builds.
    let dir = std::env::temp_dir().join(format!("repro-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trajectory.json");
    let out =
        repro(&["bench", "--sf", "0.004", "--threads", "2", "--json", path.to_str().unwrap()]);
    assert!(out.status.success(), "bench smoke failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Perf trajectory"), "{stdout}");
    assert!(stdout.contains("### tpch"), "{stdout}");
    assert!(stdout.contains("### tpcds"), "{stdout}");
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(json.contains("\"schema\": \"vcsql-bench-trajectory/v1\""), "{json}");
    assert!(json.contains("\"threads_multi\": 2"), "{json}");
    assert!(json.contains("\"workload\": \"tpch\""), "{json}");
    assert!(json.contains("\"workload\": \"tpcds\""), "{json}");
    assert!(json.contains("\"tag_mt_ms\""), "{json}");
    // Balanced braces/brackets — the cheap well-formedness check available
    // without a JSON parser in the tree.
    let count = |c: char| json.matches(c).count();
    assert_eq!(count('{'), count('}'), "unbalanced braces:\n{json}");
    assert_eq!(count('['), count(']'), "unbalanced brackets:\n{json}");
}

#[test]
fn sessions_drift_replay_smoke() {
    // A tiny replay end to end: calibrate on TPC-H, drift to TPC-DS, adapt.
    let out = repro(&[
        "distributed",
        "--sf",
        "0.004",
        "--sessions",
        "6",
        "--partitioning",
        "workload",
        "--migration-budget",
        "512",
    ]);
    assert!(
        out.status.success(),
        "drift replay smoke failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Session drift replay"), "{stdout}");
    assert!(stdout.contains("placement calibrated on tpch"), "{stdout}");
    assert!(stdout.contains("migration"), "{stdout}");
    assert!(stdout.contains("self-profiled yardstick"), "{stdout}");
    assert!(stdout.contains("plan cache"), "{stdout}");
}

#[test]
fn restart_replay_races_warm_against_cold() {
    // The durable-profile path end to end: restart mid-replay, warm start
    // reloads the saved profile text, cold start recalibrates.
    let out = repro(&[
        "distributed",
        "--sf",
        "0.004",
        "--sessions",
        "6",
        "--restart-at",
        "4",
        "--partitioning",
        "workload",
        "--migration-budget",
        "512",
    ]);
    assert!(
        out.status.success(),
        "restart replay smoke failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("restart before query 4"), "{stdout}");
    assert!(stdout.contains("warm start (saved profile reloaded"), "{stdout}");
    assert!(stdout.contains("cold start (recalibrated on tpch"), "{stdout}");
    assert!(stdout.contains("session (post-restart)"), "{stdout}");
}

#[test]
fn serve_smoke_emits_report_json() {
    // The multi-tenant serving bench end to end at tiny scale: all three
    // arbitration worlds, the per-tenant fairness table, and a well-formed
    // vcsql-serve-report/v1 document.
    let dir = std::env::temp_dir().join(format!("repro-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.json");
    let out =
        repro(&["serve", "--sf", "0.004", "--tenants", "2", "--json", path.to_str().unwrap()]);
    assert!(out.status.success(), "serve smoke failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Multi-tenant serving"), "{stdout}");
    for world in ["merged", "unilateral", "static"] {
        assert!(stdout.contains(world), "missing world `{world}`:\n{stdout}");
    }
    assert!(stdout.contains("Jain index"), "{stdout}");
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(json.contains("\"schema\": \"vcsql-serve-report/v1\""), "{json}");
    assert!(json.contains("\"tenants\": 2"), "{json}");
    assert!(json.contains("\"worlds\""), "{json}");
    assert!(json.contains("\"merged_tenants\""), "{json}");
    assert!(json.contains("\"fairness_jain\""), "{json}");
    // The failure-isolation counters are part of the report shape (and all
    // zero in a fault-free run).
    assert!(json.contains("\"failures\": {\"panics\": 0, \"timeouts\": 0"), "{json}");
    let count = |c: char| json.matches(c).count();
    assert_eq!(count('{'), count('}'), "unbalanced braces:\n{json}");
    assert_eq!(count('['), count(']'), "unbalanced brackets:\n{json}");
}

#[test]
fn faults_smoke_emits_fault_report_json() {
    // The fault sweep end to end at tiny scale: both workloads, every
    // checkpoint interval, result bags asserted identical to fault-free
    // inside the binary, and a well-formed vcsql-fault-report/v1 document.
    let dir = std::env::temp_dir().join(format!("repro-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("faults.json");
    let out = repro(&[
        "faults",
        "--sf",
        "0.004",
        "--kill",
        "1@2",
        "--checkpoint-every",
        "2",
        "--seed",
        "7",
        "--json",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "faults smoke failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fault-tolerant execution"), "{stdout}");
    assert!(stdout.contains("### tpch"), "{stdout}");
    assert!(stdout.contains("### tpcds"), "{stdout}");
    assert!(stdout.contains("crashes recovered"), "{stdout}");
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(json.contains("\"schema\": \"vcsql-fault-report/v1\""), "{json}");
    assert!(json.contains("\"kill\": {\"machine\": 1, \"superstep\": 2}"), "{json}");
    assert!(json.contains("\"checkpoint_every\": 2"), "{json}");
    assert!(json.contains("\"workload\": \"tpch\""), "{json}");
    assert!(json.contains("\"workload\": \"tpcds\""), "{json}");
    for key in ["checkpoint_bytes", "crashes_recovered", "recovered_rounds", "recovery_bytes"] {
        assert!(json.contains(&format!("\"{key}\"")), "missing `{key}`:\n{json}");
    }
    // Interval 1 checkpoints every superstep: the crash at superstep 2 must
    // actually recover somewhere in the sweep.
    assert!(json.contains("\"interval\": 0"), "{json}");
    assert!(json.contains("\"interval\": 1"), "{json}");
    let count = |c: char| json.matches(c).count();
    assert_eq!(count('{'), count('}'), "unbalanced braces:\n{json}");
    assert_eq!(count('['), count(']'), "unbalanced brackets:\n{json}");
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: repro"));
}

#[test]
fn distributed_smoke_reports_all_strategies() {
    // Tiny scale factor keeps this fast even in debug builds. `workload`
    // adds a calibration phase before the per-strategy table.
    let out = repro(&[
        "distributed",
        "--sf",
        "0.004",
        "--partitioning",
        "hash,colocate,refined,workload",
    ]);
    assert!(
        out.status.success(),
        "distributed smoke failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["tag net (hash)", "tag net (colocate)", "tag net (refined)", "tag net (workload)"]
    {
        assert!(stdout.contains(name), "missing column `{name}`:\n{stdout}");
    }
    assert!(stdout.contains("calibrated on tpch"), "{stdout}");
    assert!(stdout.contains("spark/tag traffic ratio"), "{stdout}");
    assert!(stdout.contains("edge cut"), "{stdout}");
}

#[test]
fn distributed_smoke_cross_profiles_workloads() {
    // Calibrating TPC-H's placement with TPC-DS traffic (and vice versa)
    // must run end to end — the skew-sensitivity demonstration path.
    let out = repro(&[
        "distributed",
        "--sf",
        "0.004",
        "--partitioning",
        "workload",
        "--profile-from",
        "tpcds",
        "--bandwidth",
        "5e8",
    ]);
    assert!(
        out.status.success(),
        "cross-profiled smoke failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("calibrated on tpcds"), "{stdout}");
    assert!(stdout.contains("tag net (workload)"), "{stdout}");
}
